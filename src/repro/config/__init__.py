"""Hardware and manager configuration.

The numbers here are transcribed from the paper: Fig. 1(a) for the 128-Mb
RDRAM chip [37], Fig. 1(b) for the Seagate Barracuda IDE disk [38], and
Table II for the joint manager's parameters.
"""

from repro.config.disk_spec import DiskSpec
from repro.config.machine import MachineConfig
from repro.config.manager import ManagerConfig
from repro.config.memory_spec import MemorySpec

__all__ = ["DiskSpec", "MachineConfig", "ManagerConfig", "MemorySpec"]
