"""Joint-manager parameters (paper Table II).

================================  ==========  =======================
symbol                            value       meaning
================================  ==========  =======================
``T``    period_s                 600 s       adjustment period
``w``    aggregation_window_s     0.1 s       idle-interval filter
``U``    max_utilization          0.10        disk utilisation limit
``D``    max_delayed_ratio        0.001       delayed-access limit
         enumeration_unit_bytes   16 MB       memory resize granule
================================  ==========  =======================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import MB


@dataclass(frozen=True)
class ManagerConfig:
    """Tunable parameters of the joint power manager."""

    #: Length of one adjustment period ``T``, seconds.
    period_s: float = 600.0
    #: Aggregation window ``w``: consecutive disk accesses closer than this
    #: are treated as one busy burst and contribute no idle interval.
    aggregation_window_s: float = 0.1
    #: Performance constraint ``U``: maximum disk bandwidth utilisation.
    max_utilization: float = 0.10
    #: Performance constraint ``D``: maximum ratio of disk-cache accesses
    #: delayed by more than half a second by the disk's turn-on latency.
    max_delayed_ratio: float = 0.001
    #: Latency above which a request counts as user-noticeable (0.5 s).
    long_latency_threshold_s: float = 0.5
    #: Granularity for enumerating candidate memory sizes.
    enumeration_unit_bytes: int = 16 * MB
    #: Smallest memory size the manager will ever select, bytes.  Keeping a
    #: floor avoids the degenerate zero-cache configuration.
    min_memory_bytes: int = 16 * MB
    #: Upper bound on candidate memory sizes evaluated per period.  The paper
    #: enumerates every multiple of the enumeration unit ("within several
    #: thousand" candidates at under 100 ms in C); in Python the manager
    #: spreads at most this many candidates over the same range.  The cost
    #: of the capped grid is bounded by one grid step of memory power
    #: (asserted in ``tests/core/test_enumeration_sensitivity.py``); raise
    #: this value for finer placement at proportional decision cost.
    max_candidates: int = 64

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ConfigError("period must be positive")
        if self.aggregation_window_s < 0:
            raise ConfigError("aggregation window must be non-negative")
        if not 0.0 < self.max_utilization <= 1.0:
            raise ConfigError("utilisation limit must be in (0, 1]")
        if not 0.0 < self.max_delayed_ratio <= 1.0:
            raise ConfigError("delayed-ratio limit must be in (0, 1]")
        if self.long_latency_threshold_s <= 0:
            raise ConfigError("long-latency threshold must be positive")
        if self.enumeration_unit_bytes <= 0:
            raise ConfigError("enumeration unit must be positive")
        if self.min_memory_bytes <= 0:
            raise ConfigError("minimum memory must be positive")
        if self.max_candidates < 2:
            raise ConfigError("need at least two candidate memory sizes")
