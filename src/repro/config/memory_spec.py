"""RDRAM memory parameters (paper Fig. 1(a) and Section V-A).

The paper models a 128-Mb (16-MB) RDRAM chip.  One chip is one *bank*, the
smallest unit with independent power modes, so the bank is the unit by which
the joint manager resizes the disk cache.

Derived constants, with the paper's arithmetic:

* static power        ``10.5 mW / 16 MB = 0.656 mW/MB``        (nap mode)
* dynamic energy      ``1325 mW / (1.6 GB/s) = 0.809 mJ/MB``   (peak rate)
* power-down timeout  ``1325 * 30 / (312 - 3.5) = 129 us``     (2-competitive)
* disable break-even  ``(5 W * 16 MB / 10.4 MB/s) / 10.5 mW = 732 s``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigError
from repro.units import GB, MB, MICROSECONDS, MILLIWATTS, PAGE_SIZE


@dataclass(frozen=True)
class MemorySpec:
    """Power and geometry parameters of the RDRAM main memory.

    All powers are in watts, energies in joules, times in seconds and
    sizes in bytes.  The defaults reproduce the paper's configuration:
    128 GB of installed RDRAM built from 16-MB banks.
    """

    #: Total installed physical memory available to the disk cache.
    installed_bytes: int = 128 * GB
    #: Size of one bank, the resize/power-mode granularity.  The paper's
    #: default bank is one chip; Table V varies this up to 1024 MB (a rank
    #: of chips switched together).
    bank_bytes: int = 16 * MB
    #: Size of the RDRAM chip the per-mode powers are specified for.
    chip_bytes: int = 16 * MB
    #: Operating-system page size.
    page_bytes: int = PAGE_SIZE

    #: Mode powers for one *chip* (``chip_bytes``), from Fig. 1(a).  A
    #: bank larger than a chip draws proportionally more (it gangs
    #: several chips).
    mode_power_watts: Dict[str, float] = field(
        default_factory=lambda: {
            "attention": 312.0 * MILLIWATTS,
            "idle": 110.0 * MILLIWATTS,
            "nap": 10.5 * MILLIWATTS,
            "powerdown": 3.5 * MILLIWATTS,
            "disable": 0.0,
        }
    )
    #: Power of one bank while serving accesses at the peak rate.
    peak_power_watts: float = 1325.0 * MILLIWATTS
    #: Peak bandwidth of one bank.
    peak_bandwidth_bytes_per_s: float = 1.6 * GB

    #: Transition latencies *to the attention mode*, from Fig. 1(a).  The
    #: disable -> attention time is estimated with the power-down value
    #: because the datasheet does not provide it (paper Section III).
    transition_time_s: Dict[str, float] = field(
        default_factory=lambda: {
            "idle": 12.5e-9,
            "nap": 50e-9,
            "powerdown": 9.0 * MICROSECONDS,
            "disable": 9.0 * MICROSECONDS,
        }
    )

    def __post_init__(self) -> None:
        if self.installed_bytes <= 0:
            raise ConfigError("installed memory must be positive")
        if self.bank_bytes <= 0 or self.bank_bytes > self.installed_bytes:
            raise ConfigError(
                f"bank size {self.bank_bytes} must be in (0, installed="
                f"{self.installed_bytes}]"
            )
        if self.installed_bytes % self.bank_bytes:
            raise ConfigError("installed memory must be a whole number of banks")
        if self.bank_bytes % self.page_bytes:
            raise ConfigError("bank size must be a whole number of pages")
        if self.chip_bytes <= 0:
            raise ConfigError("chip size must be positive")

    # --- derived quantities (paper Section V-A arithmetic) -------------------

    @property
    def num_banks(self) -> int:
        """Number of independently power-managed banks."""
        return self.installed_bytes // self.bank_bytes

    @property
    def pages_per_bank(self) -> int:
        """Number of OS pages held by one bank."""
        return self.bank_bytes // self.page_bytes

    @property
    def static_power_per_mb(self) -> float:
        """Static (nap-mode) power per MB of enabled memory, in watts.

        Paper: ``10.5 mW / 16 MB = 0.656 mW/MB``.
        """
        return self.mode_power_watts["nap"] / (self.chip_bytes / MB)

    @property
    def static_power_per_byte(self) -> float:
        """Static (nap-mode) power per byte of enabled memory, in watts."""
        return self.mode_power_watts["nap"] / self.chip_bytes

    @property
    def powerdown_power_per_byte(self) -> float:
        """Power-down-mode power per byte, in watts."""
        return self.mode_power_watts["powerdown"] / self.chip_bytes

    def bank_power(self, mode: str) -> float:
        """Power of one whole bank in ``mode``, in watts."""
        if mode not in self.mode_power_watts:
            raise ConfigError(f"unknown memory mode {mode!r}")
        chips_per_bank = self.bank_bytes / self.chip_bytes
        return self.mode_power_watts[mode] * chips_per_bank

    @property
    def dynamic_energy_per_byte(self) -> float:
        """Energy per byte read or written, in joules.

        Paper: ``1325 mW / 1.6 GB/s = 0.809 mJ/MB``.
        """
        return self.peak_power_watts / self.peak_bandwidth_bytes_per_s

    @property
    def dynamic_energy_per_access(self) -> float:
        """Energy of one page-sized memory access, in joules."""
        return self.dynamic_energy_per_byte * self.page_bytes

    @property
    def powerdown_timeout_s(self) -> float:
        """Two-competitive timeout to power a bank down, in seconds.

        Break-even of the nap -> power-down decision.  The paper charges
        the transition at the bank's *peak* power because the datasheet
        gives no transition energy: ``1325 mW * 30 us / (312 - 3.5) mW
        = 129 us`` (Section V-A).
        """
        round_trip = 30e-6  # power-down <-> attention round trip, paper's value
        saving = (
            self.mode_power_watts["attention"] - self.mode_power_watts["powerdown"]
        )
        return self.peak_power_watts * round_trip / saving
