"""Combined machine configuration and the granularity-scaling model.

The paper simulates 128 GB of RDRAM, multi-GB data sets and billions of
4-kB page accesses.  A pure-Python reproduction keeps **every physical
quantity at its real value** -- powers, energies, times, byte rates and
sizes all stay as the paper gives them -- and coarsens only the *access
granularity*: ``scaled(1024)`` makes one "page" 4 MB instead of 4 kB, so a
100 MB/s workload is 25 page accesses per second instead of 25 600.

What this preserves exactly (asserted in ``tests/config/test_scaling.py``):

* the break-even memory size (6.6 W / 0.656 mW-per-MB = ~10 GB) against
  the 4-64 GB data sets,
* the disk's break-even time (11.7 s), transition time (10 s) and the
  idle-interval time scale,
* disk utilisation: the service model's media rate is calibrated so a
  single-page random read still moves data at the drive's measured
  average rate (10.4 MB/s), hence utilisation = miss byte rate / 10.4 MB/s
  at every granularity,
* all power and energy numbers.

What it coarsens: the resolution of the LRU stack and of file popularity
(one cache decision per 4 MB rather than per 4 kB), and the base latency
of a single miss (~0.4 s of transfer at 4-MB granularity versus ~10 ms at
4 kB).  Long-latency accounting still works because the paper's 0.5-s
threshold is dominated by the 10-s spin-up delay, which is unscaled.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.config.disk_spec import DiskSpec
from repro.config.manager import ManagerConfig
from repro.config.memory_spec import MemorySpec
from repro.errors import ConfigError


@dataclass(frozen=True)
class MachineConfig:
    """A complete simulated machine: memory, disk and manager parameters."""

    memory: MemorySpec = field(default_factory=MemorySpec)
    disk: DiskSpec = field(default_factory=DiskSpec)
    manager: ManagerConfig = field(default_factory=ManagerConfig)
    #: Granularity factor applied so far (1 = the paper's 4-kB pages).
    scale: int = 1

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigError("scale must be positive")
        if self.manager.enumeration_unit_bytes % self.memory.bank_bytes:
            raise ConfigError(
                "enumeration unit must be a whole number of memory banks"
            )

    # --- derived -------------------------------------------------------------

    @property
    def page_bytes(self) -> int:
        """The access granularity (the memory spec owns the page size)."""
        return self.memory.page_bytes

    @property
    def break_even_memory_bytes(self) -> float:
        """Memory whose static power equals the disk's savable static power.

        Paper Section V-B1: 6.6 W / 0.656 mW/MB = about 10 GB.  Above this
        size, extra memory costs more than a permanently-standby disk could
        ever repay.
        """
        return self.disk.static_power_watts / self.memory.static_power_per_byte

    def single_page_service_rate(self) -> float:
        """Effective bytes/second of a one-page random read (sanity hook)."""
        overhead = (
            self.disk.avg_seek_time_s
            + self.disk.avg_rotational_latency_s
            + self.disk.controller_overhead_s
        )
        transfer = self.page_bytes / self.disk.media_transfer_rate
        return self.page_bytes / (overhead + transfer)

    def scaled(self, factor: int) -> "MachineConfig":
        """Return a copy with ``factor``-times coarser pages.

        ``factor`` must be a positive integer.  The bank size grows to at
        least one page (a bank cannot be smaller than the resize unit of
        the cache), and the disk's media transfer rate is recalibrated so
        a one-page random read still achieves the drive's average data
        rate.  Scaling compounds.
        """
        if not isinstance(factor, int) or factor <= 0:
            raise ConfigError("granularity factor must be a positive integer")
        if factor == 1:
            return self

        page = self.memory.page_bytes * factor
        bank = max(self.memory.bank_bytes, page)
        if bank % page:
            raise ConfigError(
                f"bank size {bank} is not a whole number of {page}-byte pages"
            )
        if self.memory.installed_bytes % bank:
            raise ConfigError(
                "installed memory is not a whole number of banks at this scale"
            )
        memory = dataclasses.replace(
            self.memory, page_bytes=page, bank_bytes=bank
        )

        # Calibrate the media rate: one-page random read at the drive's
        # average data rate.  If the page is so small that the overhead
        # alone exceeds the byte budget, keep the real media rate.
        overhead = (
            self.disk.avg_seek_time_s
            + self.disk.avg_rotational_latency_s
            + self.disk.controller_overhead_s
        )
        budget = page / self.disk.average_data_rate
        disk = self.disk
        if budget > overhead:
            media = page / (budget - overhead)
            disk = dataclasses.replace(self.disk, media_transfer_rate=media)

        manager = dataclasses.replace(
            self.manager,
            enumeration_unit_bytes=max(self.manager.enumeration_unit_bytes, bank),
            min_memory_bytes=max(self.manager.min_memory_bytes, bank),
        )
        return MachineConfig(
            memory=memory, disk=disk, manager=manager, scale=self.scale * factor
        )


def paper_machine() -> MachineConfig:
    """The machine exactly as configured in the paper's Section V-A."""
    return MachineConfig()


def scaled_machine(factor: int = 1024) -> MachineConfig:
    """The paper's machine at a tractable granularity (4-MB pages)."""
    return paper_machine().scaled(factor)
