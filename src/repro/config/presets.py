"""Alternative hardware presets.

The paper models RDRAM but notes (Section III) that the method "also
applies to SDRAM, and the only difference is the memory management
granularity" -- SDRAM is power-managed per *rank*, a much coarser unit
than the RDRAM chip.  These presets let experiments swap hardware while
everything else stays identical.
"""

from __future__ import annotations

import dataclasses

from repro.config.disk_spec import DiskSpec
from repro.config.machine import MachineConfig
from repro.config.manager import ManagerConfig
from repro.config.memory_spec import MemorySpec
from repro.units import GB, MB, MILLIWATTS


def sdram_memory(installed_bytes: int = 128 * GB) -> MemorySpec:
    """A DDR-generation SDRAM module managed per 512-MB rank.

    Power numbers follow the same proportions as the RDRAM model scaled
    to the coarser device: per-MB static power matches the paper's
    0.656 mW/MB (so the energy trade-off is hardware-neutral) while the
    management granularity is 32x coarser -- the comparison the paper's
    Table V explores synthetically.
    """
    rank = 512 * MB
    # Same per-MB figures as the RDRAM chip, expressed per 512-MB rank.
    scale = rank / (16 * MB)
    return MemorySpec(
        installed_bytes=installed_bytes,
        bank_bytes=rank,
        chip_bytes=rank,
        mode_power_watts={
            "attention": 312.0 * MILLIWATTS * scale,
            "idle": 110.0 * MILLIWATTS * scale,
            "nap": 10.5 * MILLIWATTS * scale,
            "powerdown": 3.5 * MILLIWATTS * scale,
            "disable": 0.0,
        },
        peak_power_watts=1325.0 * MILLIWATTS * scale,
        peak_bandwidth_bytes_per_s=3.2 * GB,
    )


def sdram_machine(installed_bytes: int = 128 * GB) -> MachineConfig:
    """The paper's machine with SDRAM ranks instead of RDRAM chips."""
    memory = sdram_memory(installed_bytes)
    manager = dataclasses.replace(
        ManagerConfig(),
        enumeration_unit_bytes=memory.bank_bytes,
        min_memory_bytes=memory.bank_bytes,
    )
    return MachineConfig(memory=memory, disk=DiskSpec(), manager=manager)


def laptop_disk() -> DiskSpec:
    """A 2.5-in mobile drive: the classic spin-down target.

    Lower powers and a faster, cheaper spin cycle than the 3.5-in server
    drive -- break-even drops to a few seconds, so timeout policies bite
    much earlier.  Useful for sensitivity studies outside the paper's
    server setting.
    """
    return DiskSpec(
        capacity_bytes=60 * GB,
        mode_power_watts={
            "active": 2.5,
            "idle": 1.8,
            "standby": 0.25,
            "sleep": 0.25,
        },
        transition_energy_joules=9.3,
        transition_time_s=4.0,
        spin_down_time_s=1.0,
        spin_up_time_s=3.0,
        rpm=5400.0,
        avg_seek_time_s=12e-3,
        track_to_track_seek_s=1.5e-3,
        media_transfer_rate=34 * MB,
        sequential_transfer_rate=34 * MB,
        average_data_rate=6.5 * MB,
    )
