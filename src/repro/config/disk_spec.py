"""Hard-disk parameters (paper Fig. 1(b) and Section V-A).

The paper models a Seagate Barracuda 3.5-in 160-GB IDE drive [38].  Derived
constants with the paper's arithmetic:

* static power     ``7.5 - 0.9 = 6.6 W``   (idle minus standby)
* dynamic power    ``12.5 - 7.5 = 5 W``    (active minus idle, at peak rate)
* break-even time  ``77.5 J / 6.6 W = 11.7 s``
* transition time  ``t_tr = 10 s``         (idle -> standby -> idle round trip)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigError
from repro.units import GB, MB


@dataclass(frozen=True)
class DiskSpec:
    """Power and mechanical parameters of the simulated hard disk."""

    #: Drive capacity.
    capacity_bytes: int = 160 * GB

    #: Mode powers, from Fig. 1(b).  ``standby`` and ``sleep`` draw the same
    #: power per the drive's specification, so the manager only ever uses
    #: standby (sleeping costs more to leave and saves nothing extra).
    mode_power_watts: Dict[str, float] = field(
        default_factory=lambda: {
            "active": 12.5,
            "idle": 7.5,
            "standby": 0.9,
            "sleep": 0.9,
        }
    )

    #: Energy of one idle -> standby -> idle round trip, from Fig. 1(b).
    transition_energy_joules: float = 77.5
    #: Duration of that round trip (``t_tr`` in the paper), seconds.
    transition_time_s: float = 10.0
    #: How the round trip splits between spinning down and spinning up.
    #: The split is not in the paper (it only uses the 10-s total); the
    #: 20/80 division follows typical 3.5-in drive behaviour where spin-up
    #: dominates.
    spin_down_time_s: float = 2.0
    spin_up_time_s: float = 8.0

    # --- mechanical / service-time model (for the DiskSim substitute) -------
    #: Rotational speed; 7200 rpm for the Barracuda.
    rpm: float = 7200.0
    #: Average seek time for a random access, seconds.
    avg_seek_time_s: float = 8.5e-3
    #: Seek time between adjacent tracks, seconds.
    track_to_track_seek_s: float = 1.0e-3
    #: Effective transfer rate of *random* requests, bytes/second.  The
    #: granularity-scaled machine calibrates this so a one-page random
    #: read achieves the drive's average data rate (10.4 MB/s).
    media_transfer_rate: float = 58.0 * MB
    #: Sustained media rate of *sequential* continuations, bytes/second --
    #: the platter's real streaming rate, never rescaled.
    sequential_transfer_rate: float = 58.0 * MB
    #: Controller + bus overhead per request, seconds.
    controller_overhead_s: float = 0.3e-3

    #: Average data rate the paper quotes for break-even computations.
    average_data_rate: float = 10.4 * MB

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError("disk capacity must be positive")
        if self.transition_energy_joules < 0:
            raise ConfigError("transition energy must be non-negative")
        if abs(
            self.spin_down_time_s + self.spin_up_time_s - self.transition_time_s
        ) > 1e-9:
            raise ConfigError(
                "spin-down + spin-up must equal the round-trip transition time"
            )
        for mode in ("active", "idle", "standby"):
            if mode not in self.mode_power_watts:
                raise ConfigError(f"missing power for required mode {mode!r}")

    # --- derived quantities (paper Section V-A arithmetic) -------------------

    @property
    def static_power_watts(self) -> float:
        """Power saved by standby: idle minus standby (``p_d`` = 6.6 W)."""
        return self.mode_power_watts["idle"] - self.mode_power_watts["standby"]

    @property
    def dynamic_power_watts(self) -> float:
        """Extra power while transferring at peak rate (12.5 - 7.5 = 5 W)."""
        return self.mode_power_watts["active"] - self.mode_power_watts["idle"]

    @property
    def break_even_time_s(self) -> float:
        """Minimum idle time for standby to pay off (``t_be`` = 11.7 s)."""
        return self.transition_energy_joules / self.static_power_watts

    @property
    def rotation_time_s(self) -> float:
        """Time of one full platter revolution."""
        return 60.0 / self.rpm

    @property
    def avg_rotational_latency_s(self) -> float:
        """Expected rotational delay: half a revolution."""
        return self.rotation_time_s / 2.0
