"""Back-compat shim: :class:`DiskArray` moved to :mod:`repro.fleet.array`."""

from repro.fleet.array import DiskArray  # noqa: F401

__all__ = ["DiskArray"]
