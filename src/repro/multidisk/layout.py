"""Page-to-disk data layouts."""

from __future__ import annotations

from repro.errors import ConfigError


class DataLayout:
    """Maps a page number to the disk that stores it."""

    def __init__(self, num_disks: int) -> None:
        if num_disks < 1:
            raise ConfigError("an array needs at least one disk")
        self.num_disks = num_disks

    def disk_of(self, page: int) -> int:
        """Index of the disk holding ``page``."""
        raise NotImplementedError


class PartitionedLayout(DataLayout):
    """Contiguous page ranges per disk.

    Pages ``[0, pages_per_disk)`` live on disk 0, the next range on disk
    1, and so on; pages beyond the last boundary wrap onto the final
    disk.  With popularity-ordered file sets (hot files first, as this
    repository's generator lays them out), partitioning concentrates the
    hot data on the low-numbered disks.
    """

    def __init__(self, num_disks: int, pages_per_disk: int) -> None:
        super().__init__(num_disks)
        if pages_per_disk < 1:
            raise ConfigError("each disk must hold at least one page")
        self.pages_per_disk = pages_per_disk

    def disk_of(self, page: int) -> int:
        if page < 0:
            raise ConfigError("page numbers are non-negative")
        return min(page // self.pages_per_disk, self.num_disks - 1)


class StripedLayout(DataLayout):
    """Round-robin striping at an extent granularity (RAID-0 style).

    Consecutive extents of ``extent_pages`` pages rotate across the
    disks, spreading every workload -- hot or cold -- over all spindles.
    """

    def __init__(self, num_disks: int, extent_pages: int = 16) -> None:
        super().__init__(num_disks)
        if extent_pages < 1:
            raise ConfigError("an extent covers at least one page")
        self.extent_pages = extent_pages

    def disk_of(self, page: int) -> int:
        if page < 0:
            raise ConfigError("page numbers are non-negative")
        return (page // self.extent_pages) % self.num_disks
