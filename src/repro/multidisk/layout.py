"""Back-compat shim: the layouts moved to :mod:`repro.fleet.layout`.

Kept so existing imports keep working; new code should import from
``repro.fleet``.
"""

from repro.fleet.layout import (  # noqa: F401
    DataLayout,
    MigratingLayout,
    PartitionedLayout,
    StripedLayout,
)

__all__ = [
    "DataLayout",
    "MigratingLayout",
    "PartitionedLayout",
    "StripedLayout",
]
