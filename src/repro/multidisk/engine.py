"""Trace-driven simulation of a shared cache over a disk array.

One memory system (the disk cache) absorbs hits; misses route through
the data layout to per-disk drives, each governed by its own instance of
a disk policy.  Sequential pricing applies per disk (a run that stays on
one spindle streams; a striped run re-positions on every extent switch),
which is exactly why striping hurts spin-down workloads.

This engine is the *static* substrate: no migration, no period hooks.
It is deliberately kept independent of :mod:`repro.fleet.engine` -- the
fleet engine with boundary processing disabled must replay the exact
operation sequence of this loop, and ``CHECKS["fleet"]`` compares the
two bit for bit, so this module doubles as the reference oracle.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.config.machine import MachineConfig
from repro.disk.service import ServiceModel
from repro.errors import SimulationError
from repro.fleet.array import DiskArray
from repro.fleet.engine import MultiDiskResult
from repro.fleet.layout import DataLayout
from repro.memory.system import MemorySystem
from repro.policies.base import NO_CHANGE, DiskPolicy
from repro.sim.engine import SEQUENTIAL_MERGE_WINDOW_S
from repro.sim.metrics import MetricsCollector
from repro.traces.trace import Trace

PolicyFactory = Callable[[], DiskPolicy]


class MultiDiskEngine:
    """Replay a trace against a shared cache and an N-disk array."""

    def __init__(
        self,
        machine: MachineConfig,
        memory: MemorySystem,
        layout: DataLayout,
        policy_factory: PolicyFactory,
        label: str = "multidisk",
    ) -> None:
        self.machine = machine
        self.memory = memory
        self.label = label
        service = ServiceModel(machine.disk, machine.page_bytes)
        self.array = DiskArray(machine.disk, service, layout)
        self.policies = [policy_factory() for _ in range(layout.num_disks)]

    def run(
        self,
        trace: Trace,
        duration_s: Optional[float] = None,
        warmup_s: float = 0.0,
    ) -> MultiDiskResult:
        machine = self.machine
        period = machine.manager.period_s
        if duration_s is None:
            periods = max(int(np.ceil(trace.duration_s / period)), 1)
            duration_s = periods * period
        if warmup_s < 0 or warmup_s >= duration_s:
            raise SimulationError("warm-up must be within the duration")

        if trace.writes is not None and bool(trace.writes.any()):
            raise SimulationError(
                "the multi-disk engine does not model write-back yet; "
                "strip writes or use the single-disk SimulationEngine"
            )
        metrics = MetricsCollector(
            period_s=period,
            long_latency_threshold_s=machine.manager.long_latency_threshold_s,
            aggregation_window_s=machine.manager.aggregation_window_s,
        )
        array = self.array
        memory = self.memory
        for index, policy in enumerate(self.policies):
            array.set_timeout(0.0, index, policy.initial_timeout())

        last_miss_page = [-2] * array.num_disks
        last_miss_time = [-np.inf] * array.num_disks
        mem_mark = memory.energy.snapshot() if warmup_s == 0 else None
        disk_marks = array.snapshots() if warmup_s == 0 else None
        measuring = warmup_s == 0

        for now, page in zip(trace.times.tolist(), trace.pages.tolist()):
            if now >= duration_s:
                break
            if not measuring and now >= warmup_s:
                memory.checkpoint(warmup_s)
                array.checkpoint(warmup_s)
                mem_mark = memory.energy.snapshot()
                disk_marks = array.snapshots()
                metrics = MetricsCollector(
                    period_s=period,
                    long_latency_threshold_s=(
                        machine.manager.long_latency_threshold_s
                    ),
                    aggregation_window_s=machine.manager.aggregation_window_s,
                )
                measuring = True

            hit = memory.access(now, page)
            if hit:
                metrics.on_hit(now)
                continue

            disk_index = array.layout.disk_of(page)
            sequential = (
                page == last_miss_page[disk_index] + 1
                and now - last_miss_time[disk_index] <= SEQUENTIAL_MERGE_WINDOW_S
            )
            last_miss_page[disk_index] = page
            last_miss_time[disk_index] = now

            disk = array.disks[disk_index]
            idle_before = max(now - disk.busy_until, 0.0)
            result = disk.submit(now, 1, sequential=sequential)
            metrics.on_miss(now, result.latency_s, result.wake_delay_s)

            policy = self.policies[disk_index]
            update = policy.on_request(
                now, result.latency_s, result.wake_delay_s, idle_before
            )
            if update is not NO_CHANGE:
                disk.set_timeout(now, update)

        if not measuring:
            memory.checkpoint(warmup_s)
            array.checkpoint(warmup_s)
            mem_mark = memory.energy.snapshot()
            disk_marks = array.snapshots()
        array.finalize(duration_s)
        memory.finalize(duration_s)
        assert mem_mark is not None and disk_marks is not None

        observed = duration_s - warmup_s
        per_disk = [
            disk.energy.minus(mark)
            for disk, mark in zip(array.disks, disk_marks)
        ]
        disk_energy = sum(
            energy.total_joules(machine.disk) for energy in per_disk
        )
        memory_energy = memory.energy.minus(mem_mark)
        standby_fractions = [
            energy.standby_s / observed if observed > 0 else 0.0
            for energy in per_disk
        ]
        return MultiDiskResult(
            label=self.label,
            duration_s=observed,
            num_disks=array.num_disks,
            memory_energy_j=memory_energy.total_j,
            disk_energy_j=disk_energy,
            per_disk=per_disk,
            total_accesses=metrics.total_accesses,
            disk_page_accesses=metrics.total_disk_pages,
            mean_latency_s=metrics.mean_latency_s,
            long_latency=metrics.total_long_latency,
            spin_down_cycles=sum(e.spin_down_cycles for e in per_disk),
            standby_fractions=standby_fractions,
        )
