"""Multi-disk extension (paper Section VI, future work).

The paper defers multiple disks, noting the extension "needs to consider:
1) management of disk cache for multiple disks; 2) multiple-speed disks;
3) data layout across disks; and 4) workload distributions on disks."
This package builds the substrate for points 1, 3 and 4:

* :mod:`repro.multidisk.layout` -- page-to-disk data layouts
  (partitioned ranges vs striping),
* :mod:`repro.multidisk.array` -- an array of independently
  power-managed drives,
* :mod:`repro.multidisk.engine` -- a trace-driven engine running one
  shared disk cache in front of the array, with a per-disk spin-down
  policy.

The headline effect it demonstrates (and tests assert): with per-disk
spin-down, a *partitioned* layout concentrates the hot data on few disks
and lets the cold ones sleep -- the skew exploited by Pinheiro &
Bianchini's disk-array work the paper cites [31] -- while *striping*
spreads every burst across all spindles and keeps them awake.

The joint manager itself remains single-disk, as in the paper; driving
an array with per-disk joint decisions additionally needs per-disk idle
prediction and data migration, which the paper explicitly leaves open.
"""

from repro.multidisk.array import DiskArray
from repro.multidisk.engine import MultiDiskEngine, MultiDiskResult
from repro.multidisk.layout import DataLayout, PartitionedLayout, StripedLayout

__all__ = [
    "DataLayout",
    "DiskArray",
    "MultiDiskEngine",
    "MultiDiskResult",
    "PartitionedLayout",
    "StripedLayout",
]
