"""Multi-disk substrate (superseded by :mod:`repro.fleet`).

The paper defers multiple disks, noting the extension "needs to consider:
1) management of disk cache for multiple disks; 2) multiple-speed disks;
3) data layout across disks; and 4) workload distributions on disks."
This package introduced the static substrate for points 1, 3 and 4; the
layouts and the array now live in :mod:`repro.fleet` (which adds
popularity-driven migration, per-disk per-period timeouts and the
sharded campaign axis) and are re-exported here for compatibility.

What remains native to this package is :class:`MultiDiskEngine`: the
static scalar replay with no period-boundary processing.  It is kept
independent of the fleet engine on purpose -- ``CHECKS["fleet"]`` uses
it as the bit-exactness oracle for the migration-disabled fleet path.

The headline effect it demonstrates (and tests assert): with per-disk
spin-down, a *partitioned* layout concentrates the hot data on few disks
and lets the cold ones sleep -- the skew exploited by Pinheiro &
Bianchini's disk-array work the paper cites [31] -- while *striping*
spreads every burst across all spindles and keeps them awake.
"""

from repro.multidisk.array import DiskArray
from repro.multidisk.engine import MultiDiskEngine, MultiDiskResult
from repro.multidisk.layout import (
    DataLayout,
    MigratingLayout,
    PartitionedLayout,
    StripedLayout,
)

__all__ = [
    "DataLayout",
    "DiskArray",
    "MigratingLayout",
    "MultiDiskEngine",
    "MultiDiskResult",
    "PartitionedLayout",
    "StripedLayout",
]
