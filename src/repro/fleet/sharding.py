"""Sharded fleet decomposition: N disks, M tenants, campaign fan-out.

A fleet hosts many tenants (independent workloads, each a
:class:`~repro.campaign.tasks.WorkloadSpec`) on many disks.  Tenants are
assigned to shards by a *content hash* of their workload spec -- stable
across runs and machines, independent of list order -- and each shard is
an independent slice of the machine: its own disk-cache memory and its
own spindle(s), serving the time-ordered interleave of its tenants'
traces (every tenant's pages offset into a private range, so tenants
never share pages).

Shards never interact, which buys two things:

* **scale-out** -- one :class:`FleetShardTask` per shard fans out
  through the existing campaign executor/cache and replays on the
  vectorized/miss-run kernels, and
* **verifiability** -- :func:`run_fleet_monolithic` replays the very
  same shard traces in one process on the forced-scalar loop, and
  ``CHECKS["fleet"]`` asserts the merged :class:`FleetReport` from the
  fan-out (kernels + payload round trip) is bit-identical to it.

Single-disk shards (``disks_per_shard=1``, the default) run through
:func:`repro.sim.runner.run_method`; multi-disk shards run the
:class:`~repro.fleet.engine.FleetEngine` with a chosen layout, which is
how migration statistics enter campaign telemetry.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.campaign.hashing import digest, task_key
from repro.campaign.plan import CampaignPlan
from repro.campaign.tasks import SimSummary, WorkloadSpec
from repro.config.machine import MachineConfig
from repro.errors import CampaignError, ConfigError, SimulationError
from repro.fleet.engine import FleetResult
from repro.policies.registry import MethodSpec
from repro.traces.trace import Trace
from repro.units import GB

#: File-id offset between tenants, so merged traces keep distinct files.
TENANT_FILE_SPAN = 1 << 32

#: Layout names a multi-disk shard accepts ("sim" = single-disk kernels).
SHARD_LAYOUTS = ("sim", "partitioned", "striped", "migrating")


def shard_of(workload: WorkloadSpec, num_shards: int) -> int:
    """The shard a tenant lands on: a content hash of its spec.

    Uses the campaign hashing canonicalisation, so the assignment is
    stable across processes, Python versions and tenant list order.
    """
    if num_shards < 1:
        raise ConfigError("a fleet needs at least one shard")
    key = digest({"fleet-tenant": dataclasses.asdict(workload)})
    return int(key[:16], 16) % num_shards


def tenant_page_span(tenants: Sequence[WorkloadSpec]) -> int:
    """Pages reserved per tenant: the largest tenant file set, in pages.

    The SPECWeb file-set generator overshoots its byte target (files
    round up), so the span replays each tenant's fileset draw -- the
    same ``default_rng(seed)`` stream ``generate_trace`` consumes first
    -- and takes the worst case.  O(files) per tenant, no trace
    expansion.
    """
    if not tenants:
        raise ConfigError("a fleet needs at least one tenant")
    from repro.traces.fileset import specweb_fileset

    span = 0
    for tenant in tenants:
        fileset = specweb_fileset(
            tenant.dataset_gb * GB,
            page_size=tenant.page_bytes,
            rng=np.random.default_rng(tenant.seed),
            file_scale=tenant.file_scale,
        )
        span = max(span, fileset.total_pages)
    return max(span, 1)


@dataclass(frozen=True)
class FleetSpec:
    """An N-shard, M-tenant fleet: everything that determines its runs."""

    machine: MachineConfig
    method: MethodSpec
    tenants: Tuple[WorkloadSpec, ...]
    num_shards: int
    duration_s: float
    #: Disks per shard; 1 replays on the single-disk kernels.
    disks_per_shard: int = 1
    #: Data layout inside a shard; "sim" is the single-disk fast path.
    layout: str = "sim"
    label: str = "fleet"

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigError("a fleet needs at least one shard")
        if not self.tenants:
            raise ConfigError("a fleet needs at least one tenant")
        if self.duration_s <= 0:
            raise ConfigError("the fleet window must be positive")
        if self.layout not in SHARD_LAYOUTS:
            raise ConfigError(
                f"unknown shard layout {self.layout!r}; "
                f"expected one of {', '.join(SHARD_LAYOUTS)}"
            )
        if self.disks_per_shard < 1:
            raise ConfigError("each shard needs at least one disk")
        if self.layout == "sim" and self.disks_per_shard != 1:
            raise ConfigError(
                "multi-disk shards need an explicit layout "
                "(partitioned, striped or migrating)"
            )
        for tenant in self.tenants:
            if tenant.write_fraction != 0.0:
                raise ConfigError(
                    "fleet shards do not model write-back yet; "
                    "tenants must be read-only"
                )
            if tenant.page_bytes != self.machine.page_bytes:
                raise ConfigError(
                    "tenant page size must match the machine's"
                )

    @property
    def num_disks(self) -> int:
        return self.num_shards * self.disks_per_shard

    @cached_property
    def page_span(self) -> int:
        return tenant_page_span(self.tenants)

    def shard_tenants(self) -> List[List[int]]:
        """Global tenant indices per shard, tenant order preserved."""
        shards: List[List[int]] = [[] for _ in range(self.num_shards)]
        for index, tenant in enumerate(self.tenants):
            shards[shard_of(tenant, self.num_shards)].append(index)
        return shards

    def tasks(self) -> List["FleetShardTask"]:
        """One campaign task per populated shard, shard order."""
        tasks = []
        for shard_index, indices in enumerate(self.shard_tenants()):
            if not indices:
                continue
            tasks.append(
                FleetShardTask(
                    method=self.method,
                    machine=self.machine,
                    tenants=tuple(self.tenants[i] for i in indices),
                    tenant_indices=tuple(indices),
                    page_span=self.page_span,
                    shard_index=shard_index,
                    num_shards=self.num_shards,
                    duration_s=self.duration_s,
                    disks_per_shard=self.disks_per_shard,
                    layout=self.layout,
                )
            )
        return tasks


def merge_tenant_traces(
    tenants: Sequence[WorkloadSpec],
    tenant_indices: Sequence[int],
    page_span: int,
    page_size: int,
) -> Trace:
    """Build and interleave one shard's tenant traces, time-ordered.

    Pages are offset by ``global_index * page_span`` and files by
    ``global_index * TENANT_FILE_SPAN``; ties in time resolve toward the
    lower tenant index (stable argsort over tenant-ordered
    concatenation), so the merged stream is a pure function of the specs
    -- identical in the fan-out worker and the monolithic reference.
    """
    if len(tenants) != len(tenant_indices):
        raise SimulationError("tenant specs and indices must align")
    times_parts: List[np.ndarray] = []
    pages_parts: List[np.ndarray] = []
    files_parts: List[np.ndarray] = []
    has_files = True
    for tenant, global_index in zip(tenants, tenant_indices):
        trace = tenant.build()
        if trace.pages.size and int(trace.pages.max()) >= page_span:
            raise SimulationError(
                f"tenant {global_index} overflows its page span "
                f"({int(trace.pages.max())} >= {page_span})"
            )
        times_parts.append(trace.times)
        pages_parts.append(trace.pages + global_index * page_span)
        if trace.files is None:
            has_files = False
        else:
            files_parts.append(trace.files + global_index * TENANT_FILE_SPAN)
    times = np.concatenate(times_parts)
    pages = np.concatenate(pages_parts)
    order = np.argsort(times, kind="stable")
    return Trace(
        times=times[order],
        pages=pages[order],
        page_size=page_size,
        files=(
            np.concatenate(files_parts)[order]
            if has_files and files_parts
            else None
        ),
        meta={
            "source": "fleet-shard",
            "tenants": len(tenants),
        },
    )


def _shard_pages_per_disk(page_span: int, num_tenants: int, disks: int) -> int:
    """Partition granularity inside a multi-disk shard.

    The shard's page space spans all tenant offsets (the trace is sparse
    in it), so the base partition splits ``page_span * num_tenants``
    evenly across the shard's disks.
    """
    total = page_span * max(num_tenants, 1)
    return max(int(np.ceil(total / disks)), 1)


@dataclass(frozen=True)
class FleetShardTask:
    """One shard of a fleet: a content-hashed campaign task."""

    method: MethodSpec
    machine: MachineConfig
    #: This shard's tenants, in global tenant order.
    tenants: Tuple[WorkloadSpec, ...]
    #: The tenants' global indices (page/file offsets depend on them).
    tenant_indices: Tuple[int, ...]
    page_span: int
    shard_index: int
    num_shards: int
    duration_s: float
    disks_per_shard: int = 1
    layout: str = "sim"

    kind = "fleet-shard"

    def payload(self) -> Dict[str, Any]:
        payload = {
            "kind": self.kind,
            "method": dataclasses.asdict(self.method),
            "machine": dataclasses.asdict(self.machine),
            "tenants": [dataclasses.asdict(t) for t in self.tenants],
            "tenant_indices": list(self.tenant_indices),
            "page_span": self.page_span,
            "shard_index": self.shard_index,
            "num_shards": self.num_shards,
            "duration_s": self.duration_s,
        }
        # Only present off the default, so single-disk keys stay stable
        # if more shard shapes appear later (the SimTask regret pattern).
        if self.layout != "sim" or self.disks_per_shard != 1:
            payload["disks_per_shard"] = self.disks_per_shard
            payload["layout"] = self.layout
        return payload

    @cached_property
    def key(self) -> str:
        return task_key(self.payload())

    def describe(self) -> str:
        return (
            f"fleet-shard:{self.method.label} "
            f"shard {self.shard_index}/{self.num_shards} "
            f"({len(self.tenants)} tenant(s), {self.layout})"
        )

    def build_trace(self) -> Trace:
        return merge_tenant_traces(
            self.tenants,
            self.tenant_indices,
            self.page_span,
            self.machine.page_bytes,
        ).with_meta(shard=self.shard_index)

    def execute(self) -> Dict[str, Any]:
        return self.run(profile="auto")

    def run(self, profile: Any = "auto") -> Dict[str, Any]:
        """Replay this shard; ``profile=None`` forces the scalar loop.

        The monolithic reference calls ``run(profile=None)`` in-process;
        the campaign workers call :meth:`execute` (the kernels path).
        Both return the same payload shape, and ``CHECKS["fleet"]``
        holds them bit-equal.
        """
        trace = self.build_trace()
        base = {
            "kind": self.kind,
            "shard": self.shard_index,
            "tenants": len(self.tenants),
        }
        if self.layout == "sim":
            from repro.sim.runner import run_method

            result = run_method(
                self.method,
                trace,
                self.machine,
                duration_s=self.duration_s,
                profile=profile,
            )
            base["summary"] = SimSummary.from_result(result).to_payload()
            return base

        from repro.fleet.engine import FleetEngine
        from repro.fleet.layout import (
            MigratingLayout,
            PartitionedLayout,
            StripedLayout,
        )

        disks = self.disks_per_shard
        # The shard's (sparse) page space ends at the highest tenant
        # offset plus one span.
        pages_per_disk = _shard_pages_per_disk(
            self.page_span, max(self.tenant_indices) + 1, disks
        )
        if self.layout == "partitioned":
            layout = PartitionedLayout(disks, pages_per_disk)
        elif self.layout == "striped":
            layout = StripedLayout(disks)
        else:
            layout = MigratingLayout(disks, pages_per_disk)
        memory = self.method.build_memory_system(self.machine)
        engine = FleetEngine(
            self.machine,
            memory,
            layout,
            policy_factory=lambda: self.method.build_disk_policy(
                self.machine
            ),
            label=f"{self.method.label}-shard{self.shard_index}",
        )
        result = engine.run(trace, duration_s=self.duration_s)
        base["fleet"] = result.to_payload()
        return base


# --- the merged report -------------------------------------------------------


@dataclass(frozen=True)
class FleetReport:
    """Per-shard results merged into fleet-level figures.

    Built identically (same accumulation order, same floats) whether the
    shard payloads came from the campaign fan-out or the monolithic
    reference -- the merge is a pure function of the payload list.
    """

    label: str
    num_shards: int
    num_tenants: int
    duration_s: float
    #: Tenants per shard, index-aligned (zeros mark unpopulated shards).
    shard_tenants: Tuple[int, ...]
    memory_energy_j: float
    disk_energy_j: float
    total_accesses: int
    disk_page_accesses: int
    #: Miss-weighted mean latency across shards.
    mean_latency_s: float
    long_latency: int
    spin_down_cycles: int
    #: One entry per *disk*, fleet-wide; unpopulated shards count their
    #: drives as fully asleep (an unowned spindle never spins up).
    standby_fractions: Tuple[float, ...]
    #: Replay mode per shard ("idle" for unpopulated, "multidisk" for
    #: in-shard fleet-engine runs).
    replay_modes: Tuple[str, ...]
    pages_migrated: int = 0
    migration_energy_j: float = 0.0

    @property
    def num_disks(self) -> int:
        return len(self.standby_fractions)

    @property
    def total_energy_j(self) -> float:
        return self.memory_energy_j + self.disk_energy_j

    @property
    def sleeping_disks(self) -> int:
        """Disks that spent most of the window spun down."""
        return sum(1 for f in self.standby_fractions if f > 0.5)

    @classmethod
    def merge(
        cls,
        label: str,
        shard_payloads: Sequence[Optional[Dict[str, Any]]],
        shard_tenant_counts: Sequence[int],
        duration_s: float,
        disks_per_shard: int = 1,
    ) -> "FleetReport":
        """Fold per-shard payloads (``None`` = unpopulated) into one report."""
        if len(shard_payloads) != len(shard_tenant_counts):
            raise CampaignError("shard payloads and tenant counts must align")
        memory_j = 0.0
        disk_j = 0.0
        accesses = 0
        misses = 0
        long_latency = 0
        cycles = 0
        latency_mass = 0.0
        standby: List[float] = []
        modes: List[str] = []
        migrated = 0
        migration_j = 0.0
        for count, payload in zip(shard_tenant_counts, shard_payloads):
            if count == 0:
                standby.extend([1.0] * disks_per_shard)
                modes.append("idle")
                continue
            if payload is None:
                raise CampaignError("missing result for a populated shard")
            if "summary" in payload:
                s = SimSummary.from_payload(payload["summary"])
                memory_j += s.memory_energy_j
                disk_j += s.disk_energy_j
                accesses += s.total_accesses
                misses += s.disk_page_accesses
                long_latency += s.long_latency
                cycles += s.spin_down_cycles
                latency_mass += s.mean_latency_s * s.disk_page_accesses
                standby.append(
                    s.disk_standby_s / duration_s if duration_s > 0 else 0.0
                )
                modes.append(s.replay_mode)
            else:
                r = FleetResult.from_payload(payload["fleet"])
                memory_j += r.memory_energy_j
                disk_j += r.disk_energy_j
                accesses += r.total_accesses
                misses += r.disk_page_accesses
                long_latency += r.long_latency
                cycles += r.spin_down_cycles
                latency_mass += r.mean_latency_s * r.disk_page_accesses
                standby.extend(r.standby_fractions)
                modes.append("multidisk")
                migrated += r.pages_migrated
                migration_j += r.migration_energy_j
        return cls(
            label=label,
            num_shards=len(shard_tenant_counts),
            num_tenants=int(sum(shard_tenant_counts)),
            duration_s=duration_s,
            shard_tenants=tuple(int(c) for c in shard_tenant_counts),
            memory_energy_j=memory_j,
            disk_energy_j=disk_j,
            total_accesses=accesses,
            disk_page_accesses=misses,
            mean_latency_s=latency_mass / misses if misses else 0.0,
            long_latency=long_latency,
            spin_down_cycles=cycles,
            standby_fractions=tuple(standby),
            replay_modes=tuple(modes),
            pages_migrated=migrated,
            migration_energy_j=migration_j,
        )

    def to_payload(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["shard_tenants"] = list(self.shard_tenants)
        payload["standby_fractions"] = list(self.standby_fractions)
        payload["replay_modes"] = list(self.replay_modes)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "FleetReport":
        data = dict(payload)
        data["shard_tenants"] = tuple(int(c) for c in data["shard_tenants"])
        data["standby_fractions"] = tuple(
            float(f) for f in data["standby_fractions"]
        )
        data["replay_modes"] = tuple(str(m) for m in data["replay_modes"])
        return cls(**data)

    def render(self) -> str:
        lines = [
            f"fleet {self.label}: {self.num_tenants} tenant(s) on "
            f"{self.num_disks} disk(s) in {self.num_shards} shard(s), "
            f"{self.duration_s:.0f} s window",
            f"  total energy    {self.total_energy_j:,.0f} J "
            f"(memory {self.memory_energy_j:,.0f} J, "
            f"disk {self.disk_energy_j:,.0f} J)",
            f"  sleeping disks  {self.sleeping_disks}/{self.num_disks}",
            f"  accesses        {self.total_accesses:,} "
            f"({self.disk_page_accesses:,} disk misses, "
            f"mean latency {self.mean_latency_s * 1e3:.2f} ms, "
            f"{self.long_latency} long)",
            f"  spin-downs      {self.spin_down_cycles}",
        ]
        if self.pages_migrated or self.migration_energy_j:
            lines.append(
                f"  migration       {self.pages_migrated:,} page(s), "
                f"{self.migration_energy_j:,.1f} J"
            )
        modes: Dict[str, int] = {}
        for mode in self.replay_modes:
            modes[mode] = modes.get(mode, 0) + 1
        detail = " ".join(f"{k}={v}" for k, v in sorted(modes.items()))
        lines.append(f"  shard replay    {detail}")
        return "\n".join(lines)


# --- plan + monolithic reference ---------------------------------------------


def fleet_plan(spec: FleetSpec) -> CampaignPlan:
    """One campaign task per populated shard, assembling a :class:`FleetReport`."""
    tasks = spec.tasks()
    shard_counts = [len(ix) for ix in spec.shard_tenants()]
    populated = [i for i, c in enumerate(shard_counts) if c]

    def assemble(payloads: Sequence[Optional[Dict[str, Any]]]) -> FleetReport:
        if len(payloads) != len(populated):
            raise CampaignError(
                f"fleet shape mismatch: {len(payloads)} payload(s) for "
                f"{len(populated)} shard task(s)"
            )
        slots: List[Optional[Dict[str, Any]]] = [None] * spec.num_shards
        for shard_index, payload in zip(populated, payloads):
            if payload is None:
                raise CampaignError(
                    f"missing result for fleet shard {shard_index}"
                )
            slots[shard_index] = payload
        return FleetReport.merge(
            label=spec.label,
            shard_payloads=slots,
            shard_tenant_counts=shard_counts,
            duration_s=spec.duration_s,
            disks_per_shard=spec.disks_per_shard,
        )

    return CampaignPlan(tasks=tasks, assemble=assemble)


def run_fleet_monolithic(spec: FleetSpec) -> FleetReport:
    """The one-process reference: every shard on the forced-scalar loop.

    Replays the identical shard traces as the campaign fan-out, but
    in-process, serially, with the vectorized kernels disabled -- a
    genuinely different execution path whose merged report
    ``CHECKS["fleet"]`` holds bit-identical to the fan-out's (replay
    modes excepted, which is the point).
    """
    shard_counts = [len(ix) for ix in spec.shard_tenants()]
    slots: List[Optional[Dict[str, Any]]] = [None] * spec.num_shards
    for task in spec.tasks():
        slots[task.shard_index] = task.run(profile=None)
    return FleetReport.merge(
        label=spec.label,
        shard_payloads=slots,
        shard_tenant_counts=shard_counts,
        duration_s=spec.duration_s,
        disks_per_shard=spec.disks_per_shard,
    )
