"""The array-level power manager: shared cache, per-disk policies, migration.

One memory system (the disk cache) absorbs hits; misses route through
the data layout to per-disk drives.  On top of the static substrate the
legacy :class:`~repro.multidisk.engine.MultiDiskEngine` provides, the
:class:`FleetEngine` adds the two period-boundary mechanisms the paper's
Section VI extension needs:

* **per-disk, per-period timeouts** -- every disk owns its own policy
  instance, and policies that implement ``on_period`` (e.g. the Pareto
  refit of :class:`~repro.policies.pareto_timeout.ParetoTimeoutPolicy`)
  are re-consulted at each boundary, so a disk's spin-down timeout
  follows *its own* observed inter-miss gaps;
* **hot-data migration** -- with a
  :class:`~repro.fleet.layout.MigratingLayout`, each boundary packs the
  period's hot set onto few spindles.  The transfer cost is explicit:
  the pages moved are submitted as batched sequential I/O to the source
  (read) *and* destination (write) disks at the boundary time, so the
  normal drive accounting charges the transfer energy, wakes sleeping
  destinations, and delays client requests queued behind the copy.

Bit-exactness contract: when the layout is static *and* no policy
overrides ``on_period``, boundary processing is skipped entirely and the
replay performs the exact operation sequence of ``MultiDiskEngine`` --
the same floats added in the same order -- which ``CHECKS["fleet"]``
verifies field for field.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.config.machine import MachineConfig
from repro.disk.energy import DiskEnergy
from repro.disk.service import ServiceModel
from repro.errors import SimulationError
from repro.fleet.array import DiskArray
from repro.fleet.layout import DataLayout, MigratingLayout, Move
from repro.memory.system import MemorySystem
from repro.policies.base import NO_CHANGE, DiskPolicy
from repro.sim.engine import SEQUENTIAL_MERGE_WINDOW_S
from repro.sim.metrics import MetricsCollector
from repro.traces.trace import Trace

PolicyFactory = Callable[[], DiskPolicy]


@dataclass(frozen=True)
class MultiDiskResult:
    """Outcome of one multi-disk run."""

    label: str
    duration_s: float
    num_disks: int
    memory_energy_j: float
    disk_energy_j: float
    #: Per-disk counters, index-aligned with the array.
    per_disk: List[DiskEnergy]
    total_accesses: int
    disk_page_accesses: int
    mean_latency_s: float
    long_latency: int
    spin_down_cycles: int
    #: Fraction of the window each disk spent in standby.
    standby_fractions: List[float] = field(default_factory=list)

    @property
    def total_energy_j(self) -> float:
        return self.memory_energy_j + self.disk_energy_j

    @property
    def sleeping_disks(self) -> int:
        """Disks that spent most of the window spun down."""
        return sum(1 for f in self.standby_fractions if f > 0.5)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe dict; inverse of :meth:`from_payload`."""
        return {
            "label": self.label,
            "duration_s": self.duration_s,
            "num_disks": self.num_disks,
            "memory_energy_j": self.memory_energy_j,
            "disk_energy_j": self.disk_energy_j,
            "per_disk": [dataclasses.asdict(e) for e in self.per_disk],
            "total_accesses": self.total_accesses,
            "disk_page_accesses": self.disk_page_accesses,
            "mean_latency_s": self.mean_latency_s,
            "long_latency": self.long_latency,
            "spin_down_cycles": self.spin_down_cycles,
            "standby_fractions": list(self.standby_fractions),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "MultiDiskResult":
        data = dict(payload)
        data["per_disk"] = [DiskEnergy(**e) for e in data["per_disk"]]
        data["standby_fractions"] = [
            float(f) for f in data["standby_fractions"]
        ]
        return cls(**data)


@dataclass(frozen=True)
class MigrationRecord:
    """One period boundary's applied migration and its charged cost."""

    time_s: float
    moved_pages: int
    #: ``(disk_index, pages read)`` per source disk, index-sorted.
    src_pages: Tuple[Tuple[int, int], ...]
    #: ``(disk_index, pages written)`` per destination disk, index-sorted.
    dst_pages: Tuple[Tuple[int, int], ...]
    #: Service seconds the transfer submits occupied across the array.
    active_s: float

    def to_payload(self) -> Dict[str, Any]:
        return {
            "time_s": self.time_s,
            "moved_pages": self.moved_pages,
            "src_pages": [list(pair) for pair in self.src_pages],
            "dst_pages": [list(pair) for pair in self.dst_pages],
            "active_s": self.active_s,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "MigrationRecord":
        return cls(
            time_s=float(payload["time_s"]),
            moved_pages=int(payload["moved_pages"]),
            src_pages=tuple(
                (int(d), int(n)) for d, n in payload["src_pages"]
            ),
            dst_pages=tuple(
                (int(d), int(n)) for d, n in payload["dst_pages"]
            ),
            active_s=float(payload["active_s"]),
        )


@dataclass(frozen=True)
class FleetResult(MultiDiskResult):
    """A :class:`MultiDiskResult` plus migration and timeout telemetry."""

    pages_migrated: int = 0
    #: Total service seconds of migration I/O (reads + writes).
    migration_active_s: float = 0.0
    #: Active-power joules of that I/O (``active_s`` x active watts).
    migration_energy_j: float = 0.0
    migrations: Tuple[MigrationRecord, ...] = ()
    #: Per-disk timeout changes applied at period boundaries.
    timeout_updates: int = 0

    def to_payload(self) -> Dict[str, Any]:
        payload = super().to_payload()
        payload.update(
            {
                "pages_migrated": self.pages_migrated,
                "migration_active_s": self.migration_active_s,
                "migration_energy_j": self.migration_energy_j,
                "migrations": [m.to_payload() for m in self.migrations],
                "timeout_updates": self.timeout_updates,
            }
        )
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "FleetResult":
        data = dict(payload)
        data["per_disk"] = [DiskEnergy(**e) for e in data["per_disk"]]
        data["standby_fractions"] = [
            float(f) for f in data["standby_fractions"]
        ]
        data["migrations"] = tuple(
            MigrationRecord.from_payload(m) for m in data["migrations"]
        )
        return cls(**data)


def _charge_migration(
    array: DiskArray, now: float, moves: List[Move]
) -> MigrationRecord:
    """Submit a migration plan's transfer I/O and return its record.

    Each participating disk gets one batched sequential request: the
    sources read the outgoing pages, the destinations write the incoming
    ones.  Both sides are charged -- a destination that was asleep wakes
    (and pays the transition), exactly the interference the cost model
    must capture.  Module-level on purpose: the mutation test in
    ``tests/verify/test_fleet_check.py`` monkeypatches this with a
    version that forgets the destination writes and asserts
    ``CHECKS["fleet"]``'s conservation invariants catch it.
    """
    src_counts: Dict[int, int] = {}
    dst_counts: Dict[int, int] = {}
    for _page, source, destination in moves:
        src_counts[source] = src_counts.get(source, 0) + 1
        dst_counts[destination] = dst_counts.get(destination, 0) + 1
    active_s = 0.0
    for disk_index in sorted(src_counts):
        result = array.disks[disk_index].submit(
            now, src_counts[disk_index], sequential=True
        )
        active_s += result.finish_s - result.start_s
    for disk_index in sorted(dst_counts):
        result = array.disks[disk_index].submit(
            now, dst_counts[disk_index], sequential=True
        )
        active_s += result.finish_s - result.start_s
    return MigrationRecord(
        time_s=now,
        moved_pages=len(moves),
        src_pages=tuple(sorted(src_counts.items())),
        dst_pages=tuple(sorted(dst_counts.items())),
        active_s=active_s,
    )


def _overrides_on_period(policy: DiskPolicy) -> bool:
    """Whether the policy actually implements the period hook."""
    return type(policy).on_period is not DiskPolicy.on_period


class FleetEngine:
    """Replay a trace against a shared cache and a power-managed array."""

    def __init__(
        self,
        machine: MachineConfig,
        memory: MemorySystem,
        layout: DataLayout,
        policy_factory: PolicyFactory,
        label: str = "fleet",
    ) -> None:
        self.machine = machine
        self.memory = memory
        self.label = label
        service = ServiceModel(machine.disk, machine.page_bytes)
        self.array = DiskArray(machine.disk, service, layout)
        self.layout = layout
        self.policies = [policy_factory() for _ in range(layout.num_disks)]
        self.migrating = isinstance(layout, MigratingLayout)
        #: Period boundaries are only processed when something observes
        #: them; otherwise the replay is operation-for-operation the
        #: MultiDiskEngine loop (splitting passive accrual spans at
        #: boundaries would change float addition order).
        self._period_hooks = self.migrating or any(
            _overrides_on_period(policy) for policy in self.policies
        )

    def run(
        self,
        trace: Trace,
        duration_s: Optional[float] = None,
        warmup_s: float = 0.0,
    ) -> FleetResult:
        machine = self.machine
        period = machine.manager.period_s
        if duration_s is None:
            periods = max(int(np.ceil(trace.duration_s / period)), 1)
            duration_s = periods * period
        if warmup_s < 0 or warmup_s >= duration_s:
            raise SimulationError("warm-up must be within the duration")

        if trace.writes is not None and bool(trace.writes.any()):
            raise SimulationError(
                "the fleet engine does not model write-back yet; "
                "strip writes or use the single-disk SimulationEngine"
            )
        metrics = MetricsCollector(
            period_s=period,
            long_latency_threshold_s=machine.manager.long_latency_threshold_s,
            aggregation_window_s=machine.manager.aggregation_window_s,
        )
        array = self.array
        memory = self.memory
        layout = self.layout
        for index, policy in enumerate(self.policies):
            array.set_timeout(0.0, index, policy.initial_timeout())

        last_miss_page = [-2] * array.num_disks
        last_miss_time = [-np.inf] * array.num_disks
        mem_mark = memory.energy.snapshot() if warmup_s == 0 else None
        disk_marks = array.snapshots() if warmup_s == 0 else None
        measuring = warmup_s == 0
        hooks = self._period_hooks
        next_boundary = period
        migrations: List[MigrationRecord] = []
        timeout_updates = 0

        for now, page in zip(trace.times.tolist(), trace.pages.tolist()):
            if now >= duration_s:
                break
            while hooks and next_boundary <= now and next_boundary < duration_s:
                timeout_updates += self._on_boundary(next_boundary, migrations)
                next_boundary += period
            if not measuring and now >= warmup_s:
                memory.checkpoint(warmup_s)
                array.checkpoint(warmup_s)
                mem_mark = memory.energy.snapshot()
                disk_marks = array.snapshots()
                metrics = MetricsCollector(
                    period_s=period,
                    long_latency_threshold_s=(
                        machine.manager.long_latency_threshold_s
                    ),
                    aggregation_window_s=machine.manager.aggregation_window_s,
                )
                measuring = True

            hit = memory.access(now, page)
            if hit:
                metrics.on_hit(now)
                continue

            disk_index = layout.disk_of(page)
            if self.migrating:
                layout.record_access(page)
            sequential = (
                page == last_miss_page[disk_index] + 1
                and now - last_miss_time[disk_index] <= SEQUENTIAL_MERGE_WINDOW_S
            )
            last_miss_page[disk_index] = page
            last_miss_time[disk_index] = now

            disk = array.disks[disk_index]
            idle_before = max(now - disk.busy_until, 0.0)
            result = disk.submit(now, 1, sequential=sequential)
            metrics.on_miss(now, result.latency_s, result.wake_delay_s)

            policy = self.policies[disk_index]
            update = policy.on_request(
                now, result.latency_s, result.wake_delay_s, idle_before
            )
            if update is not NO_CHANGE:
                disk.set_timeout(now, update)

        # Boundaries in the idle tail: timeouts keep refitting (on no new
        # evidence) and a pending migration plan still applies, exactly
        # as a live array would behave after its clients go quiet.
        while hooks and next_boundary < duration_s:
            timeout_updates += self._on_boundary(next_boundary, migrations)
            next_boundary += period

        if not measuring:
            memory.checkpoint(warmup_s)
            array.checkpoint(warmup_s)
            mem_mark = memory.energy.snapshot()
            disk_marks = array.snapshots()
        array.finalize(duration_s)
        memory.finalize(duration_s)
        assert mem_mark is not None and disk_marks is not None

        observed = duration_s - warmup_s
        per_disk = [
            disk.energy.minus(mark)
            for disk, mark in zip(array.disks, disk_marks)
        ]
        disk_energy = sum(
            energy.total_joules(machine.disk) for energy in per_disk
        )
        memory_energy = memory.energy.minus(mem_mark)
        standby_fractions = [
            energy.standby_s / observed if observed > 0 else 0.0
            for energy in per_disk
        ]
        migration_active_s = 0.0
        pages_migrated = 0
        for record in migrations:
            migration_active_s += record.active_s
            pages_migrated += record.moved_pages
        migration_energy_j = (
            migration_active_s * machine.disk.mode_power_watts["active"]
        )
        return FleetResult(
            label=self.label,
            duration_s=observed,
            num_disks=array.num_disks,
            memory_energy_j=memory_energy.total_j,
            disk_energy_j=disk_energy,
            per_disk=per_disk,
            total_accesses=metrics.total_accesses,
            disk_page_accesses=metrics.total_disk_pages,
            mean_latency_s=metrics.mean_latency_s,
            long_latency=metrics.total_long_latency,
            spin_down_cycles=sum(e.spin_down_cycles for e in per_disk),
            standby_fractions=standby_fractions,
            pages_migrated=pages_migrated,
            migration_active_s=migration_active_s,
            migration_energy_j=migration_energy_j,
            migrations=tuple(migrations),
            timeout_updates=timeout_updates,
        )

    def _on_boundary(
        self, now: float, migrations: List[MigrationRecord]
    ) -> int:
        """Process one period boundary; returns timeout changes applied.

        Order matters: spin-down decisions that expired before the
        boundary land first (``advance``), then migration moves the hot
        set (waking destinations *before* their new traffic arrives),
        then each disk's policy refits its timeout on the period it just
        observed.
        """
        array = self.array
        array.advance(now)
        if self.migrating:
            layout = self.layout
            moves = layout.plan_rebalance()
            if moves:
                migrations.append(_charge_migration(array, now, moves))
            layout.apply_moves(moves)
        updates = 0
        for index, policy in enumerate(self.policies):
            update = policy.on_period(now)
            if update is not NO_CHANGE:
                array.set_timeout(now, index, update)
                updates += 1
        return updates
