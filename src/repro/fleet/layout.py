"""Page-to-disk data layouts for the storage fleet.

Static layouts (:class:`PartitionedLayout`, :class:`StripedLayout`) map
each page to a fixed disk.  :class:`MigratingLayout` additionally tracks
per-period page popularity (miss counts recorded by the fleet engine)
and, at each period boundary, plans a rebalance that packs the observed
hot set onto the lowest-numbered spindles -- Pinheiro & Bianchini's
popularity-based migration, the mechanism the paper's Section VI points
at for the multi-disk extension.  The layout only *plans* moves; the
engine charges their transfer cost to the source and destination disks
before :meth:`MigratingLayout.apply_moves` makes them effective.

Construction errors (a zero-disk array, a zero-page partition) are
:class:`~repro.errors.ConfigError`; a negative page number at lookup
time is corrupt *trace* data hitting the simulator mid-replay, so
``disk_of`` raises :class:`~repro.errors.SimulationError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError, SimulationError

#: One planned migration: ``(page, source_disk, destination_disk)``.
Move = Tuple[int, int, int]


class DataLayout:
    """Maps a page number to the disk that stores it."""

    def __init__(self, num_disks: int) -> None:
        if num_disks < 1:
            raise ConfigError("an array needs at least one disk")
        self.num_disks = num_disks

    def disk_of(self, page: int) -> int:
        """Index of the disk holding ``page``."""
        raise NotImplementedError

    def _check_page(self, page: int) -> None:
        if page < 0:
            raise SimulationError(
                f"negative page number {page} in replayed trace"
            )


class PartitionedLayout(DataLayout):
    """Contiguous page ranges per disk.

    Pages ``[0, pages_per_disk)`` live on disk 0, the next range on disk
    1, and so on; pages beyond the last boundary wrap onto the final
    disk.  With popularity-ordered file sets (hot files first, as this
    repository's generator lays them out), partitioning concentrates the
    hot data on the low-numbered disks.
    """

    def __init__(self, num_disks: int, pages_per_disk: int) -> None:
        super().__init__(num_disks)
        if pages_per_disk < 1:
            raise ConfigError("each disk must hold at least one page")
        self.pages_per_disk = pages_per_disk

    def disk_of(self, page: int) -> int:
        self._check_page(page)
        return min(page // self.pages_per_disk, self.num_disks - 1)


class StripedLayout(DataLayout):
    """Round-robin striping at an extent granularity (RAID-0 style).

    Consecutive extents of ``extent_pages`` pages rotate across the
    disks, spreading every workload -- hot or cold -- over all spindles.
    """

    def __init__(self, num_disks: int, extent_pages: int = 16) -> None:
        super().__init__(num_disks)
        if extent_pages < 1:
            raise ConfigError("an extent covers at least one page")
        self.extent_pages = extent_pages

    def disk_of(self, page: int) -> int:
        self._check_page(page)
        return (page // self.extent_pages) % self.num_disks


class MigratingLayout(DataLayout):
    """Partitioned base layout plus popularity-driven page migration.

    The engine records one popularity tick per *disk miss* (cache hits
    never reach a spindle, so they cannot keep one awake).  At a period
    boundary :meth:`plan_rebalance` ranks the pages observed during the
    period by miss count (ties broken toward the lower page number, so
    the plan is deterministic) and assigns rank ``r`` to disk
    ``r // pages_per_disk``: the hottest ``pages_per_disk`` pages
    concentrate on disk 0, the next tranche on disk 1, and so on.  Pages
    not observed in the period keep their current placement.  Placement
    is stable between rebalances -- ``disk_of`` never mutates state.

    ``max_moves_per_period`` caps migration traffic per boundary (the
    knob Pinheiro & Bianchini use to bound reorganisation overhead);
    ``None`` leaves it unbounded.
    """

    def __init__(
        self,
        num_disks: int,
        pages_per_disk: int,
        max_moves_per_period: Optional[int] = None,
    ) -> None:
        super().__init__(num_disks)
        if pages_per_disk < 1:
            raise ConfigError("each disk must hold at least one page")
        if max_moves_per_period is not None and max_moves_per_period < 0:
            raise ConfigError("the migration cap must be non-negative")
        self.pages_per_disk = pages_per_disk
        self.max_moves_per_period = max_moves_per_period
        #: Pages moved off their base partition; page -> current disk.
        self._placement: Dict[int, int] = {}
        #: Miss counts observed in the current period.
        self._counts: Dict[int, int] = {}

    def disk_of(self, page: int) -> int:
        self._check_page(page)
        placed = self._placement.get(page)
        if placed is not None:
            return placed
        return min(page // self.pages_per_disk, self.num_disks - 1)

    # --- popularity ----------------------------------------------------------

    def record_access(self, page: int) -> None:
        """One popularity tick for ``page`` (the engine calls this per miss)."""
        self._check_page(page)
        self._counts[page] = self._counts.get(page, 0) + 1

    @property
    def observed_pages(self) -> int:
        """Distinct pages seen since the last rebalance."""
        return len(self._counts)

    # --- rebalancing ---------------------------------------------------------

    def plan_rebalance(self) -> List[Move]:
        """Moves that pack this period's hot set onto the lowest disks.

        Does not change the layout; the engine applies the plan with
        :meth:`apply_moves` after charging the transfer cost.
        """
        if not self._counts:
            return []
        ranked = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        moves: List[Move] = []
        limit = self.max_moves_per_period
        for rank, (page, _count) in enumerate(ranked):
            target = min(rank // self.pages_per_disk, self.num_disks - 1)
            source = self.disk_of(page)
            if source != target:
                moves.append((page, source, target))
                if limit is not None and len(moves) >= limit:
                    break
        return moves

    def apply_moves(self, moves: List[Move]) -> None:
        """Make a planned rebalance effective and start a fresh period."""
        for page, _source, destination in moves:
            if not 0 <= destination < self.num_disks:
                raise SimulationError(
                    f"migration target disk {destination} out of range"
                )
            self._placement[page] = destination
        self._counts.clear()
