"""The storage fleet: array-level power management at scale.

The paper manages one disk and one memory (Section VI defers arrays);
ROADMAP item 2 names the "millions of users" scale-out.  This package
is that subsystem, in three layers:

* :mod:`repro.fleet.layout` / :mod:`repro.fleet.array` -- page-to-disk
  data layouts (partitioned, striped, and popularity-driven
  *migrating*) over an array of independently power-managed drives;
* :mod:`repro.fleet.engine` -- the array-level manager: per-disk
  per-period spin-down timeouts (reusing the adaptive/Pareto machinery
  in :mod:`repro.policies`) and hot-data migration with an explicit
  transfer cost charged to source and destination disks;
* :mod:`repro.fleet.sharding` -- the campaign axis: an N-disk,
  M-tenant fleet decomposes into content-hashed per-shard tasks that
  fan out through :func:`repro.campaign.executor.run_campaign` and
  replay on the vectorized kernels, merged back into a
  :class:`FleetReport`.

Verification: ``CHECKS["fleet"]`` (:mod:`repro.verify.fleet`) holds the
sharded fan-out bit-equal to the monolithic reference, the
migration-disabled engine bit-equal to the legacy
:class:`~repro.multidisk.engine.MultiDiskEngine`, and the migration
accounting to exact conservation invariants.  See ``docs/FLEET.md``.
"""

from repro.fleet.array import DiskArray
from repro.fleet.engine import (
    FleetEngine,
    FleetResult,
    MigrationRecord,
    MultiDiskResult,
)
from repro.fleet.layout import (
    DataLayout,
    MigratingLayout,
    PartitionedLayout,
    StripedLayout,
)
from repro.fleet.sharding import (
    FleetReport,
    FleetShardTask,
    FleetSpec,
    fleet_plan,
    merge_tenant_traces,
    run_fleet_monolithic,
    shard_of,
    tenant_page_span,
)

__all__ = [
    "DataLayout",
    "DiskArray",
    "FleetEngine",
    "FleetReport",
    "FleetResult",
    "FleetShardTask",
    "FleetSpec",
    "MigratingLayout",
    "MigrationRecord",
    "MultiDiskResult",
    "PartitionedLayout",
    "StripedLayout",
    "fleet_plan",
    "merge_tenant_traces",
    "run_fleet_monolithic",
    "shard_of",
    "tenant_page_span",
]
