"""An array of independently power-managed drives."""

from __future__ import annotations

from typing import List, Optional

from repro.config.disk_spec import DiskSpec
from repro.disk.drive import RequestResult, SimDisk
from repro.disk.energy import DiskEnergy
from repro.disk.service import ServiceModel
from repro.errors import SimulationError
from repro.fleet.layout import DataLayout


class DiskArray:
    """N drives behind one data layout; each spins down on its own."""

    def __init__(
        self,
        spec: DiskSpec,
        service: ServiceModel,
        layout: DataLayout,
    ) -> None:
        self.spec = spec
        self.service = service
        self.layout = layout
        self.disks: List[SimDisk] = [
            SimDisk(spec, service) for _ in range(layout.num_disks)
        ]

    @property
    def num_disks(self) -> int:
        return len(self.disks)

    def disk_for_page(self, page: int) -> SimDisk:
        return self.disks[self.layout.disk_of(page)]

    # --- control -----------------------------------------------------------------

    def set_timeout(self, now: float, disk_index: int, timeout_s: Optional[float]) -> None:
        """Install a timeout on one drive."""
        if not 0 <= disk_index < self.num_disks:
            raise SimulationError(f"no disk {disk_index} in a {self.num_disks}-disk array")
        self.disks[disk_index].set_timeout(now, timeout_s)

    def set_all_timeouts(self, now: float, timeout_s: Optional[float]) -> None:
        for disk in self.disks:
            disk.set_timeout(now, timeout_s)

    def advance(self, now: float) -> None:
        for disk in self.disks:
            disk.advance(now)

    # --- requests ------------------------------------------------------------------

    def submit(
        self, now: float, page: int, sequential: bool = False
    ) -> RequestResult:
        """Route one page miss to its disk; returns that disk's timing."""
        return self.disk_for_page(page).submit(now, 1, sequential=sequential)

    # --- accounting ------------------------------------------------------------------

    def checkpoint(self, now: float) -> None:
        for disk in self.disks:
            disk.checkpoint(now)

    def finalize(self, end_time: float) -> None:
        for disk in self.disks:
            disk.finalize(end_time)

    def aggregate_energy(self) -> DiskEnergy:
        """Sum of all drives' counters (times add across spindles)."""
        total = DiskEnergy()
        for disk in self.disks:
            e = disk.energy
            total.active_s += e.active_s
            total.idle_s += e.idle_s
            total.standby_s += e.standby_s
            total.transition_s += e.transition_s
            total.spin_down_cycles += e.spin_down_cycles
            total.requests += e.requests
            total.bytes_transferred += e.bytes_transferred
        return total

    def total_joules(self) -> float:
        return sum(d.energy.total_joules(self.spec) for d in self.disks)

    def snapshots(self) -> List[DiskEnergy]:
        return [d.energy.snapshot() for d in self.disks]
