"""repro: Joint Power Management of Memory and Disk (Cai & Lu, DATE 2005).

A full reproduction of the paper's system: SPECWeb99-class workload
synthesis, a Linux-style LRU disk cache with extended-LRU resize
prediction, an RDRAM memory power model, a DiskSim-substitute drive with
power modes, the 15 comparison power-management methods and the joint
memory/disk power manager, plus the benchmark harness regenerating every
table and figure of the evaluation.

Quick start::

    from repro import generate_trace, run_method, scaled_machine
    from repro.units import GB, MB

    machine = scaled_machine(1024)          # 4-MB pages, everything else real
    trace = generate_trace(
        dataset_bytes=16 * GB, data_rate=100 * MB, duration_s=3600,
        page_size=machine.page_bytes, file_scale=machine.scale, seed=7,
    )
    joint = run_method("JOINT", trace, machine)
    base = run_method("ALWAYS-ON", trace, machine)
    print(joint.total_energy_j / base.total_energy_j)
"""

from repro.config import DiskSpec, MachineConfig, ManagerConfig, MemorySpec
from repro.config.machine import paper_machine, scaled_machine
from repro.core import JointPowerManager
from repro.policies import parse_method, standard_methods
from repro.sim import SimResult, compare_methods, run_method
from repro.stats import ParetoDistribution, fit_moments, optimal_timeout
from repro.traces import Trace, generate_trace

__version__ = "1.0.0"

__all__ = [
    "DiskSpec",
    "JointPowerManager",
    "MachineConfig",
    "ManagerConfig",
    "MemorySpec",
    "ParetoDistribution",
    "SimResult",
    "Trace",
    "compare_methods",
    "fit_moments",
    "generate_trace",
    "optimal_timeout",
    "paper_machine",
    "parse_method",
    "run_method",
    "scaled_machine",
    "standard_methods",
]
