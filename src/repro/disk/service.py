"""Disk service-time model and the bandwidth table.

The paper uses DiskSim to obtain "a bandwidth table indexed by request
sizes" (Section V-A).  This analytic model produces the same artefact:
a request of ``n`` pages costs controller overhead, a seek (full average
for random requests, track-to-track for sequential ones), half a rotation,
and the media transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.config.disk_spec import DiskSpec
from repro.errors import SimulationError


@dataclass(frozen=True)
class ServiceModel:
    """Analytic single-request service times for a :class:`DiskSpec`."""

    spec: DiskSpec
    page_bytes: int

    def __post_init__(self) -> None:
        if self.page_bytes <= 0:
            raise SimulationError("page size must be positive")

    @property
    def random_overhead_s(self) -> float:
        """Positioning cost of a random request (seek + rotation + controller)."""
        return (
            self.spec.avg_seek_time_s
            + self.spec.avg_rotational_latency_s
            + self.spec.controller_overhead_s
        )

    def first_page_time(self) -> float:
        """Service time of a random one-page read (seek + rotate + transfer)."""
        return (
            self.random_overhead_s
            + self.page_bytes / self.spec.media_transfer_rate
        )

    def continuation_time(self) -> float:
        """Marginal cost of streaming one more sequential page.

        Pure media time: the head is already positioned and the
        controller overhead was paid by the request's first page.
        """
        return self.page_bytes / self.spec.sequential_transfer_rate

    def service_time(self, num_pages: int, sequential: bool = False) -> float:
        """Total service time of one request, seconds.

        A request positions once (unless it continues the previous
        request's sequential run, ``sequential=True``) and streams the
        remaining pages at the platter's sequential rate -- this is what
        produces the paper's size-dependent bandwidth table.
        """
        if num_pages <= 0:
            raise SimulationError("a request covers at least one page")
        if sequential:
            return num_pages * self.continuation_time()
        return self.first_page_time() + (num_pages - 1) * self.continuation_time()

    def effective_rate(self, num_pages: int, sequential: bool = False) -> float:
        """Bytes/second achieved by requests of this size (bandwidth table entry)."""
        return (
            num_pages * self.page_bytes / self.service_time(num_pages, sequential)
        )

    def bandwidth_table(
        self, request_pages: Sequence[int], sequential: bool = False
    ) -> Dict[int, float]:
        """The paper's bandwidth table: request size (pages) -> bytes/second."""
        return {
            int(n): self.effective_rate(int(n), sequential) for n in request_pages
        }
