"""Zoned platter geometry: LBA <-> physical location.

The analytic service model (:mod:`repro.disk.service`) prices requests
from calibrated averages, which is what the paper consumes.  This module
provides the DiskSim-fidelity alternative underneath it: a zoned drive
where outer cylinders hold more sectors than inner ones (zone-bit
recording), so both the media rate and the seek distance of a request
depend on *where* the data lives.

The sectors-per-track profile falls linearly from the outermost to the
innermost cylinder, the standard first-order model of zoned recording;
cumulative capacity is then quadratic in the cylinder index and can be
inverted in closed form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

SECTOR_BYTES = 512


@dataclass(frozen=True)
class DiskGeometry:
    """Physical layout of a zoned drive.

    Defaults approximate the paper's 160-GB 7200-rpm Barracuda:
    ~90 k cylinders x 4 heads, with outer tracks holding roughly twice
    the sectors of inner ones.
    """

    num_cylinders: int = 90_000
    num_heads: int = 4
    sectors_outer: int = 1170
    sectors_inner: int = 585
    sector_bytes: int = SECTOR_BYTES

    def __post_init__(self) -> None:
        if self.num_cylinders < 2:
            raise ConfigError("need at least two cylinders")
        if self.num_heads < 1:
            raise ConfigError("need at least one head")
        if not 0 < self.sectors_inner <= self.sectors_outer:
            raise ConfigError("sector counts must satisfy 0 < inner <= outer")
        if self.sector_bytes <= 0:
            raise ConfigError("sector size must be positive")

    # --- per-cylinder profile ---------------------------------------------------

    def sectors_per_track(self, cylinder: int) -> float:
        """Linearly interpolated sectors on one track of ``cylinder``."""
        self._check_cylinder(cylinder)
        fraction = cylinder / (self.num_cylinders - 1)
        return self.sectors_outer - fraction * (
            self.sectors_outer - self.sectors_inner
        )

    def cylinder_sectors(self, cylinder: int) -> float:
        """Sectors on all tracks of one cylinder."""
        return self.sectors_per_track(cylinder) * self.num_heads

    def cylinder_bytes(self, cylinder: int) -> float:
        return self.cylinder_sectors(cylinder) * self.sector_bytes

    # --- cumulative capacity ------------------------------------------------------

    @property
    def total_sectors(self) -> int:
        """Whole-drive sector count (exact sum of the linear profile)."""
        mean_track = (self.sectors_outer + self.sectors_inner) / 2.0
        return int(mean_track * self.num_heads * self.num_cylinders)

    @property
    def capacity_bytes(self) -> int:
        return self.total_sectors * self.sector_bytes

    def sectors_before(self, cylinder: int) -> float:
        """Sectors on all cylinders strictly outside ``cylinder``.

        Closed form of the arithmetic series: with per-cylinder count
        ``s(c) = s0 - d*c`` (``d`` the per-cylinder decline),
        ``sum_{c<k} s(c) = k*s0 - d*k*(k-1)/2``.
        """
        self._check_cylinder(cylinder)
        s0 = self.sectors_outer * self.num_heads
        decline = (
            (self.sectors_outer - self.sectors_inner)
            * self.num_heads
            / (self.num_cylinders - 1)
        )
        k = cylinder
        return k * s0 - decline * k * (k - 1) / 2.0

    def cylinder_of_lba(self, lba: int) -> int:
        """Cylinder holding logical block ``lba`` (outside-in numbering).

        Inverts the quadratic cumulative-capacity curve, then corrects
        for rounding at the boundary.
        """
        if not 0 <= lba < self.total_sectors:
            raise ConfigError(f"LBA {lba} outside the drive")
        s0 = self.sectors_outer * self.num_heads
        decline = (
            (self.sectors_outer - self.sectors_inner)
            * self.num_heads
            / (self.num_cylinders - 1)
        )
        if decline == 0:
            cylinder = int(lba // s0)
        else:
            # Solve k*s0 - d*k*(k-1)/2 = lba for k.
            a = -decline / 2.0
            b = s0 + decline / 2.0
            c = -float(lba)
            discriminant = b * b - 4 * a * c
            k = (-b + math.sqrt(max(discriminant, 0.0))) / (2 * a)
            cylinder = int(k)
        cylinder = min(max(cylinder, 0), self.num_cylinders - 1)
        # Boundary correction (float error): walk to the owning cylinder.
        while cylinder > 0 and self.sectors_before(cylinder) > lba:
            cylinder -= 1
        while (
            cylinder < self.num_cylinders - 1
            and self.sectors_before(cylinder + 1) <= lba
        ):
            cylinder += 1
        return cylinder

    def lba_of_byte(self, offset: int) -> int:
        """LBA holding byte ``offset``."""
        if offset < 0 or offset >= self.capacity_bytes:
            raise ConfigError(f"byte offset {offset} outside the drive")
        return offset // self.sector_bytes

    def media_rate_at(self, cylinder: int, rpm: float) -> float:
        """Sustained bytes/second while streaming at ``cylinder``."""
        if rpm <= 0:
            raise ConfigError("rpm must be positive")
        revolutions_per_s = rpm / 60.0
        # One head transfers at a time: a revolution moves one track.
        return self.sectors_per_track(cylinder) * self.sector_bytes * revolutions_per_s

    def _check_cylinder(self, cylinder: int) -> None:
        if not 0 <= cylinder < self.num_cylinders:
            raise ConfigError(
                f"cylinder {cylinder} outside [0, {self.num_cylinders})"
            )
