"""Position-aware request pricing: geometry + seek curve + head state.

The DiskSim-fidelity alternative to the calibrated analytic model: each
request is priced from where the head actually is -- seek over the real
cylinder distance, rotational latency only when the head moved, media
rate of the *zone* the data lives in.  Sequentiality is not a flag here;
it emerges from addresses.

Pages map linearly onto the drive (page ``p`` starts at byte
``p * page_bytes``), matching how the file set lays data out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config.disk_spec import DiskSpec
from repro.disk.geometry import DiskGeometry
from repro.disk.seek import SeekModel
from repro.errors import ConfigError, SimulationError


@dataclass(frozen=True)
class RequestCost:
    """Breakdown of one positioned request."""

    seek_s: float
    rotation_s: float
    transfer_s: float
    cylinder: int

    @property
    def total_s(self) -> float:
        return self.seek_s + self.rotation_s + self.transfer_s


class PositionedServiceModel:
    """Stateful per-request pricing from head position and zone."""

    def __init__(
        self,
        spec: DiskSpec,
        page_bytes: int,
        geometry: Optional[DiskGeometry] = None,
        seek: Optional[SeekModel] = None,
        full_stroke_s: Optional[float] = None,
    ) -> None:
        if page_bytes <= 0:
            raise ConfigError("page size must be positive")
        self.spec = spec
        self.page_bytes = page_bytes
        self.geometry = geometry or DiskGeometry()
        if seek is None:
            # Full stroke defaults to roughly twice the average seek,
            # the usual datasheet relationship.
            stroke = full_stroke_s or 2.1 * spec.avg_seek_time_s
            seek = SeekModel.calibrated(
                track_to_track_s=spec.track_to_track_seek_s,
                average_s=spec.avg_seek_time_s,
                full_stroke_s=stroke,
                num_cylinders=self.geometry.num_cylinders,
            )
        self.seek = seek
        self._cylinder = 0

    # --- state -----------------------------------------------------------------

    @property
    def head_cylinder(self) -> int:
        return self._cylinder

    def reset_head(self, cylinder: int = 0) -> None:
        if not 0 <= cylinder < self.geometry.num_cylinders:
            raise SimulationError("head parked outside the drive")
        self._cylinder = cylinder

    # --- pricing ----------------------------------------------------------------

    def cylinder_of_page(self, page: int) -> int:
        if page < 0:
            raise SimulationError("page numbers are non-negative")
        offset = page * self.page_bytes
        capacity = self.geometry.capacity_bytes
        # Large data sets at coarse granularity can exceed the modelled
        # platter; wrap rather than fail (the analytic model has no
        # notion of capacity either).
        offset %= capacity
        return self.geometry.cylinder_of_lba(self.geometry.lba_of_byte(offset))

    def price(self, page: int, num_pages: int = 1) -> RequestCost:
        """Cost of reading ``num_pages`` starting at ``page``; moves the head."""
        if num_pages < 1:
            raise SimulationError("a request covers at least one page")
        target = self.cylinder_of_page(page)
        distance = abs(target - self._cylinder)
        seek_s = self.seek.seek_time(distance)
        if distance == 0 and seek_s == 0.0:
            # Same cylinder: at most a short rotational nudge.
            rotation_s = 0.0
        else:
            rotation_s = self.spec.avg_rotational_latency_s
        rate = self.geometry.media_rate_at(target, self.spec.rpm)
        transfer_s = num_pages * self.page_bytes / rate
        cost = RequestCost(
            seek_s=seek_s + self.spec.controller_overhead_s,
            rotation_s=rotation_s,
            transfer_s=transfer_s,
            cylinder=target,
        )
        self._cylinder = target
        return cost

    def service_time(self, page: int, num_pages: int = 1) -> float:
        """Convenience wrapper returning only the total."""
        return self.price(page, num_pages).total_s
