"""State-transition log of the simulated drive.

:class:`~repro.disk.drive.SimDisk` can record every externally visible
state change -- request service, spin-down initiation, timeout changes and
passive-time checkpoints -- into a :class:`DiskEventLog`.  The log is the
ground truth the differential verifier integrates energy from
(:mod:`repro.verify.oracles`): a second, event-by-event derivation of the
active/idle/standby/transition split that must agree with the drive's own
incremental accounting.

Recording is off by default and costs nothing when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: Event kinds, in the order the drive emits them.
SUBMIT = "submit"
SPIN_DOWN = "spin_down"
SET_TIMEOUT = "set_timeout"
CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class DiskEvent:
    """One drive state transition.

    The payload fields depend on ``kind``:

    * ``submit`` -- ``arrival_s``/``start_s``/``finish_s``/``wake_delay_s``
      and ``service_s`` are set; ``woke`` tells whether this request found
      the drive spun down and paid the spin-up.
    * ``spin_down`` -- ``time_s`` is the instant the spin-down begins.
    * ``set_timeout`` -- ``timeout_s`` is the new timeout (None = never).
    * ``checkpoint`` -- passive time up to ``time_s`` was accounted.
    """

    kind: str
    time_s: float
    arrival_s: float = 0.0
    start_s: float = 0.0
    finish_s: float = 0.0
    wake_delay_s: float = 0.0
    service_s: float = 0.0
    woke: bool = False
    timeout_s: Optional[float] = None


@dataclass
class DiskEventLog:
    """Append-only sequence of :class:`DiskEvent` from one drive."""

    events: List[DiskEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def record_submit(
        self,
        arrival_s: float,
        start_s: float,
        finish_s: float,
        wake_delay_s: float,
        service_s: float,
        woke: bool,
    ) -> None:
        self.events.append(
            DiskEvent(
                kind=SUBMIT,
                time_s=arrival_s,
                arrival_s=arrival_s,
                start_s=start_s,
                finish_s=finish_s,
                wake_delay_s=wake_delay_s,
                service_s=service_s,
                woke=woke,
            )
        )

    def record_submit_run(self, submissions) -> None:
        """Batch append: one ``submit`` event per tuple.

        ``submissions`` is a sequence of ``(arrival_s, start_s, finish_s,
        wake_delay_s, service_s, woke)`` tuples, appended in order --
        exactly the events ``len(submissions)`` :meth:`record_submit`
        calls would have produced.  :meth:`SimDisk.submit_run` buffers
        its per-request tuples and flushes them here before every
        interleaved spin-down so the log order stays event-exact.
        """
        self.events.extend(
            DiskEvent(
                kind=SUBMIT,
                time_s=arrival_s,
                arrival_s=arrival_s,
                start_s=start_s,
                finish_s=finish_s,
                wake_delay_s=wake_delay_s,
                service_s=service_s,
                woke=woke,
            )
            for arrival_s, start_s, finish_s, wake_delay_s, service_s, woke
            in submissions
        )

    def record_spin_down(self, time_s: float) -> None:
        self.events.append(DiskEvent(kind=SPIN_DOWN, time_s=time_s))

    def record_set_timeout(self, time_s: float, timeout_s: Optional[float]) -> None:
        self.events.append(
            DiskEvent(kind=SET_TIMEOUT, time_s=time_s, timeout_s=timeout_s)
        )

    def record_checkpoint(self, time_s: float) -> None:
        self.events.append(DiskEvent(kind=CHECKPOINT, time_s=time_s))

    def of_kind(self, kind: str) -> List[DiskEvent]:
        return [e for e in self.events if e.kind == kind]
