"""The simulated drive: power states, wake latency and FCFS queueing.

Requests are submitted in time order.  The drive keeps the absolute time
its queued work completes (``busy_until``); a request arriving earlier
waits FCFS.  Spin-down is governed by a timeout that the owning policy
sets (and may change at any event); spin-up is on demand, delaying the
waking request by the spin-up time plus any spin-down still in flight
(paper Section IV-D).

Accounting is lump-based: service time is charged as active when the
request is accepted, each spin-down round trip is charged the spec's
transition energy when initiated, standby time accrues between the end of
a spin-down and the start of the next spin-up, and idle time is the
remainder at :meth:`finalize`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from typing import TYPE_CHECKING

from repro.config.disk_spec import DiskSpec
from repro.disk.energy import DiskEnergy
from repro.disk.events import DiskEventLog
from repro.disk.service import ServiceModel
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.disk.positioned import PositionedServiceModel


@dataclass(frozen=True)
class RequestResult:
    """Timing of one served disk request."""

    arrival_s: float
    start_s: float
    finish_s: float
    #: Portion of the wait caused by spin-down/spin-up (0 when spinning).
    wake_delay_s: float

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s

    @property
    def queue_delay_s(self) -> float:
        return self.start_s - self.arrival_s - self.wake_delay_s


class SimDisk:
    """Power-managed drive fed time-ordered requests."""

    def __init__(
        self,
        spec: DiskSpec,
        service: ServiceModel,
        positioned: Optional["PositionedServiceModel"] = None,
        events: Optional[DiskEventLog] = None,
    ) -> None:
        if service.spec is not spec and service.spec != spec:
            raise SimulationError("service model was built for a different spec")
        self.spec = spec
        self.service = service
        #: Optional geometry-backed pricing; used when a request carries
        #: its page address (see :mod:`repro.disk.positioned`).
        self.positioned = positioned
        #: Optional state-transition log (see :mod:`repro.disk.events`);
        #: the verification oracle re-integrates energy from it.
        self.events = events
        self.energy = DiskEnergy()
        self._now = 0.0
        self._busy_until = 0.0
        self._timeout: Optional[float] = None  # None = never spin down
        self._timeout_since = 0.0
        self._spun_down = False
        self._spin_down_start = 0.0
        #: Count of spin-downs whose wake had not happened by finalize.
        self._pending_wake = False
        #: Passive (idle/standby) time before this point is already
        #: accounted -- set by :meth:`checkpoint`.
        self._passive_mark = 0.0

    # --- inspection -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def busy_until(self) -> float:
        return self._busy_until

    @property
    def is_spun_down(self) -> bool:
        return self._spun_down

    @property
    def timeout_s(self) -> Optional[float]:
        return self._timeout

    @property
    def spin_down_end(self) -> float:
        return self._spin_down_start + self.spec.spin_down_time_s

    # --- control ----------------------------------------------------------------

    def set_timeout(self, now: float, timeout_s: Optional[float]) -> None:
        """Install a new spin-down timeout, effective from ``now``.

        ``None`` (or infinity) disables spin-down.  The timeout applies to
        the idle period in progress too: if the disk has already been idle
        longer than the new timeout, it spins down at ``now``.
        """
        self.advance(now)
        if timeout_s is not None and timeout_s < 0:
            raise SimulationError("timeout must be non-negative")
        if timeout_s is not None and math.isinf(timeout_s):
            timeout_s = None
        self._timeout = timeout_s
        self._timeout_since = now
        if self.events is not None:
            self.events.record_set_timeout(now, timeout_s)

    def advance(self, now: float) -> None:
        """Move the clock to ``now``, spinning down if the timeout expired."""
        if now < self._now - 1e-9:
            raise SimulationError(f"disk time went backwards: {now} < {self._now}")
        self._now = max(self._now, now)
        if self._spun_down or self._timeout is None:
            return
        idle_start = self._busy_until
        candidate = max(idle_start + self._timeout, self._timeout_since)
        if candidate < self._now:
            self._initiate_spin_down(candidate)

    def _initiate_spin_down(self, at_time: float) -> None:
        self._spun_down = True
        self._spin_down_start = at_time
        self._pending_wake = True
        # Idle time from end of work to the spin-down decision.
        idle_from = max(self._busy_until, self._passive_mark)
        if at_time > idle_from:
            self.energy.add_time("idle", at_time - idle_from)
        # Spin-down time now; spin-up time is added when a request wakes
        # the drive.  The lump round-trip energy is charged per cycle here
        # (a cycle still spun down at finalize is slightly overcharged).
        self.energy.add_time("transition", self.spec.spin_down_time_s)
        self.energy.spin_down_cycles += 1
        if self.events is not None:
            self.events.record_spin_down(at_time)

    # --- requests ------------------------------------------------------------------

    def submit(
        self,
        now: float,
        num_pages: int,
        sequential: bool = False,
        page: Optional[int] = None,
    ) -> RequestResult:
        """Serve one request arriving at ``now``; returns its timing.

        With a positioned service model installed and ``page`` given, the
        request is priced from the head's actual position; otherwise the
        calibrated analytic model (and the ``sequential`` flag) applies.
        """
        self.advance(now)
        if self.positioned is not None and page is not None:
            service_time = self.positioned.service_time(page, num_pages)
        else:
            service_time = self.service.service_time(num_pages, sequential)
        woke = self._spun_down
        if self._spun_down:
            spin_done = self.spin_down_end
            wake_start = max(now, spin_done)
            standby_from = max(spin_done, self._passive_mark)
            if wake_start > standby_from:
                self.energy.add_time("standby", wake_start - standby_from)
            ready = wake_start + self.spec.spin_up_time_s
            self.energy.add_time("transition", self.spec.spin_up_time_s)
            wake_delay = ready - now
            start = ready
            self._spun_down = False
            self._pending_wake = False
        else:
            # Idle stretch (if any) between the end of previous work and
            # this arrival counts as idle time.
            idle_from = max(self._busy_until, self._passive_mark)
            if now > idle_from:
                self.energy.add_time("idle", now - idle_from)
            wake_delay = 0.0
            start = max(now, self._busy_until)
        finish = start + service_time
        self._busy_until = finish
        self.energy.add_time("active", service_time)
        self.energy.requests += 1
        self.energy.bytes_transferred += num_pages * self.service.page_bytes
        if self.events is not None:
            self.events.record_submit(
                arrival_s=now,
                start_s=start,
                finish_s=finish,
                wake_delay_s=wake_delay,
                service_s=service_time,
                woke=woke,
            )
        return RequestResult(
            arrival_s=now, start_s=start, finish_s=finish, wake_delay_s=wake_delay
        )

    def submit_run(self, times, services):
        """Serve a time-ordered run of single-page requests in one pass.

        ``times`` and ``services`` are equal-length Python lists: arrival
        times and precomputed service times (the caller resolves the
        sequential-merge pricing, see
        :func:`repro.sim.kernels._miss_run_services`).  Equivalent to one
        :meth:`submit` call per element with ``num_pages=1`` -- the same
        spin-down decisions, the same energy-bucket additions in the same
        floating-point order -- but with the drive state and the
        :class:`DiskEnergy` time buckets held in local accumulators for
        the whole run and written back once.  The caller must guarantee
        no timeout change, checkpoint or external :meth:`advance` falls
        inside the run (the miss-run kernel splits at those).

        Returns ``(latencies, wake_delays)`` as equal-length lists.
        """
        n = len(times)
        if n == 0:
            return [], []
        energy = self.energy
        events = self.events
        timeout = self._timeout
        timeout_since = self._timeout_since
        passive = self._passive_mark
        spin_down_time = self.spec.spin_down_time_s
        spin_up_time = self.spec.spin_up_time_s
        # add_time clamps at zero; the constants are validated non-negative
        # once here so the unguarded inline adds below stay identical.
        spin_down_add = max(spin_down_time, 0.0)
        spin_up_add = max(spin_up_time, 0.0)
        now_clock = self._now
        busy_until = self._busy_until
        spun_down = self._spun_down
        spin_down_start = self._spin_down_start
        pending_wake = self._pending_wake
        active = energy.active_s
        idle = energy.idle_s
        standby = energy.standby_s
        transition = energy.transition_s
        cycles = energy.spin_down_cycles
        latencies = [0.0] * n
        wake_delays = [0.0] * n
        has_timeout = timeout is not None
        pending_submits = [] if events is not None else None
        # The conditional expressions below are builtin max() spelled out
        # (identical values for the non-NaN inputs this loop sees); the
        # hot loop avoids ~5 function calls per element this way.
        for i in range(n):
            now = times[i]
            service_time = services[i]
            # advance(now): ratchet the clock, spin down on expiry.
            if now < now_clock - 1e-9:
                raise SimulationError(
                    f"disk time went backwards: {now} < {now_clock}"
                )
            if now > now_clock:
                now_clock = now
            if has_timeout and not spun_down:
                candidate = busy_until + timeout
                if candidate < timeout_since:
                    candidate = timeout_since
                if candidate < now_clock:
                    spun_down = True
                    spin_down_start = candidate
                    pending_wake = True
                    idle_from = busy_until if busy_until >= passive else passive
                    if candidate > idle_from:
                        idle += candidate - idle_from
                    transition += spin_down_add
                    cycles += 1
                    if events is not None:
                        if pending_submits:
                            events.record_submit_run(pending_submits)
                            pending_submits = []
                        events.record_spin_down(candidate)
            # submit(now, 1): wake or idle path, then service.
            if spun_down:
                woke = True
                spin_done = spin_down_start + spin_down_time
                wake_start = now if now >= spin_done else spin_done
                standby_from = spin_done if spin_done >= passive else passive
                if wake_start > standby_from:
                    standby += wake_start - standby_from
                ready = wake_start + spin_up_time
                transition += spin_up_add
                wake_delay = ready - now
                start = ready
                spun_down = False
                pending_wake = False
            else:
                woke = False
                idle_from = busy_until if busy_until >= passive else passive
                if now > idle_from:
                    idle += now - idle_from
                wake_delay = 0.0
                start = now if now >= busy_until else busy_until
            finish = start + service_time
            busy_until = finish
            active += service_time
            latencies[i] = finish - now
            wake_delays[i] = wake_delay
            if pending_submits is not None:
                pending_submits.append(
                    (now, start, finish, wake_delay, service_time, woke)
                )

        if events is not None and pending_submits:
            events.record_submit_run(pending_submits)
        self._now = now_clock
        self._busy_until = busy_until
        self._spun_down = spun_down
        self._spin_down_start = spin_down_start
        self._pending_wake = pending_wake
        energy.active_s = active
        energy.idle_s = idle
        energy.standby_s = standby
        energy.transition_s = transition
        energy.spin_down_cycles = cycles
        energy.add_requests(n, n * self.service.page_bytes)
        return latencies, wake_delays

    # --- shutdown ---------------------------------------------------------------------

    def checkpoint(self, now: float) -> None:
        """Account all passive (idle/standby) time up to ``now``.

        Lets a caller snapshot the energy counters mid-run (e.g. at the
        end of a warm-up window) without double counting later.
        """
        self.advance(now)
        if self._spun_down:
            spin_done = self.spin_down_end
            standby_from = max(spin_done, self._passive_mark)
            if now > standby_from:
                self.energy.add_time("standby", now - standby_from)
        else:
            idle_from = max(self._busy_until, self._passive_mark)
            if now > idle_from:
                self.energy.add_time("idle", now - idle_from)
        self._passive_mark = max(self._passive_mark, now)
        if self.events is not None:
            self.events.record_checkpoint(now)

    def finalize(self, end_time: float) -> None:
        """Account the tail of the timeline up to ``end_time``."""
        self.checkpoint(end_time)
        self._now = max(self._now, end_time)
