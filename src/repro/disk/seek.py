"""Seek-time curve: travel time as a function of cylinder distance.

The standard piecewise model behind DiskSim-class simulators: short
seeks are dominated by arm acceleration and scale with the square root
of the distance; long seeks reach coast velocity and scale linearly.

``SeekModel.calibrated`` fits the curve's three coefficients to the
three numbers drive datasheets actually publish -- track-to-track time,
average (random) seek time and full-stroke time -- using the classic
identity that a random seek covers one third of the stroke on average.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class SeekModel:
    """``seek(d) = a + b*sqrt(d) + c*d`` for distance ``d >= 1`` cylinders."""

    a: float
    b: float
    c: float
    num_cylinders: int

    def __post_init__(self) -> None:
        if self.num_cylinders < 2:
            raise ConfigError("need at least two cylinders")
        if self.seek_time(1) < 0 or self.seek_time(self.num_cylinders - 1) < 0:
            raise ConfigError("seek curve produces negative times")

    def seek_time(self, distance: int) -> float:
        """Travel time over ``distance`` cylinders (0 = already there)."""
        if distance < 0:
            raise ConfigError("seek distance must be non-negative")
        if distance == 0:
            return 0.0
        return self.a + self.b * math.sqrt(distance) + self.c * distance

    @classmethod
    def calibrated(
        cls,
        track_to_track_s: float,
        average_s: float,
        full_stroke_s: float,
        num_cylinders: int,
    ) -> "SeekModel":
        """Fit ``a, b, c`` to the three datasheet points.

        Anchors: ``seek(1) = track_to_track``, ``seek(C/3) = average``
        (the mean random-seek distance) and ``seek(C-1) = full_stroke``.
        """
        if not 0 < track_to_track_s <= average_s <= full_stroke_s:
            raise ConfigError(
                "need 0 < track-to-track <= average <= full-stroke"
            )
        if num_cylinders < 9:
            raise ConfigError("too few cylinders to calibrate a curve")
        d1, d2, d3 = 1.0, num_cylinders / 3.0, float(num_cylinders - 1)
        t1, t2, t3 = track_to_track_s, average_s, full_stroke_s
        # Solve the 3x3 linear system [1 sqrt(d) d][a b c]' = t.
        rows = [
            (1.0, math.sqrt(d1), d1, t1),
            (1.0, math.sqrt(d2), d2, t2),
            (1.0, math.sqrt(d3), d3, t3),
        ]
        # Gaussian elimination, explicit for three unknowns.
        (a11, a12, a13, b1), (a21, a22, a23, b2), (a31, a32, a33, b3) = rows
        # Eliminate first column.
        f2 = a21 / a11
        f3 = a31 / a11
        a22, a23, b2 = a22 - f2 * a12, a23 - f2 * a13, b2 - f2 * b1
        a32, a33, b3 = a32 - f3 * a12, a33 - f3 * a13, b3 - f3 * b1
        if abs(a22) < 1e-15:
            raise ConfigError("degenerate calibration points")
        f3 = a32 / a22
        a33, b3 = a33 - f3 * a23, b3 - f3 * b2
        if abs(a33) < 1e-15:
            raise ConfigError("degenerate calibration points")
        c = b3 / a33
        b = (b2 - a23 * c) / a22
        a = (b1 - a12 * b - a13 * c) / a11
        return cls(a=a, b=b, c=c, num_cylinders=num_cylinders)

    def average_random_seek(self, samples: int = 0) -> float:
        """Expected seek over uniform random endpoints.

        With the calibration anchor at distance C/3 this is close to the
        datasheet average by construction; the exact expectation uses the
        distance density ``p(d) = 2(C-d)/C^2``.
        """
        del samples
        total = 0.0
        weight = 0.0
        c = self.num_cylinders
        steps = min(c - 1, 4096)
        for i in range(1, steps + 1):
            d = i * (c - 1) / steps
            p = 2.0 * (c - d) / (c * c)
            total += self.seek_time(int(max(d, 1))) * p
            weight += p
        return total / weight
