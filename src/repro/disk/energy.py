"""Disk energy and time bookkeeping.

Time is split into four exclusive categories -- active (serving), idle
(spinning, no work), standby (spun down) and transition (spinning down or
up).  Transition *time* carries no per-second power; each round trip is
charged the spec's lump transition energy (77.5 J), matching how the paper
derives the break-even time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.disk_spec import DiskSpec
from repro.errors import SimulationError


@dataclass
class DiskEnergy:
    """Accumulated disk time and energy by category."""

    active_s: float = 0.0
    idle_s: float = 0.0
    standby_s: float = 0.0
    transition_s: float = 0.0
    #: Completed (or started) spin-down round trips.
    spin_down_cycles: int = 0
    #: Requests served.
    requests: int = 0
    #: Bytes transferred.
    bytes_transferred: int = 0

    def add_time(self, category: str, duration_s: float) -> None:
        if duration_s < -1e-9:
            raise SimulationError(f"negative {category} duration {duration_s}")
        duration_s = max(duration_s, 0.0)
        if category == "active":
            self.active_s += duration_s
        elif category == "idle":
            self.idle_s += duration_s
        elif category == "standby":
            self.standby_s += duration_s
        elif category == "transition":
            self.transition_s += duration_s
        else:
            raise SimulationError(f"unknown time category {category!r}")

    def add_requests(self, count: int, bytes_transferred: int) -> None:
        """Account ``count`` served requests moving ``bytes_transferred``.

        The integer side of a batched submission
        (:meth:`repro.disk.drive.SimDisk.submit_run`): request and byte
        counters are plain sums, so one batched addition is exactly
        ``count`` single increments.  The float time buckets are *not*
        batchable this way -- addition order matters -- so the miss-run
        kernel accumulates them element by element and writes the fields
        back directly.
        """
        if count < 0 or bytes_transferred < 0:
            raise SimulationError("request and byte counts must be non-negative")
        self.requests += count
        self.bytes_transferred += bytes_transferred

    @property
    def accounted_s(self) -> float:
        return self.active_s + self.idle_s + self.standby_s + self.transition_s

    def total_joules(self, spec: DiskSpec) -> float:
        """Total energy under the given power model."""
        return (
            self.active_s * spec.mode_power_watts["active"]
            + self.idle_s * spec.mode_power_watts["idle"]
            + self.standby_s * spec.mode_power_watts["standby"]
            + self.spin_down_cycles * spec.transition_energy_joules
        )

    def breakdown_joules(self, spec: DiskSpec) -> dict:
        """Per-category joules, for the experiment tables."""
        return {
            "active": self.active_s * spec.mode_power_watts["active"],
            "idle": self.idle_s * spec.mode_power_watts["idle"],
            "standby": self.standby_s * spec.mode_power_watts["standby"],
            "transition": self.spin_down_cycles * spec.transition_energy_joules,
        }

    def snapshot(self) -> "DiskEnergy":
        """A frozen copy of the current counters."""
        return DiskEnergy(
            active_s=self.active_s,
            idle_s=self.idle_s,
            standby_s=self.standby_s,
            transition_s=self.transition_s,
            spin_down_cycles=self.spin_down_cycles,
            requests=self.requests,
            bytes_transferred=self.bytes_transferred,
        )

    def minus(self, earlier: "DiskEnergy") -> "DiskEnergy":
        """Counters accumulated since an earlier snapshot."""
        return DiskEnergy(
            active_s=self.active_s - earlier.active_s,
            idle_s=self.idle_s - earlier.idle_s,
            standby_s=self.standby_s - earlier.standby_s,
            transition_s=self.transition_s - earlier.transition_s,
            spin_down_cycles=self.spin_down_cycles - earlier.spin_down_cycles,
            requests=self.requests - earlier.requests,
            bytes_transferred=self.bytes_transferred - earlier.bytes_transferred,
        )

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of elapsed time spent serving requests."""
        if elapsed_s <= 0:
            return 0.0
        return self.active_s / elapsed_s
