"""Hard-disk simulation: service times, power modes and energy.

The DiskSim substitute (DESIGN.md Section 2): a single-drive model exposing
exactly what the paper consumes -- a bandwidth table indexed by request
size, per-request latencies, and the four power modes of Fig. 1(b) with
their transition costs.  Two pricing levels are available: the calibrated
analytic :class:`~repro.disk.service.ServiceModel` (the default; matched
to the drive's measured average data rate) and the geometry-backed
:class:`~repro.disk.positioned.PositionedServiceModel` (zoned platters,
a datasheet-calibrated seek curve and real head movement).
"""

from repro.disk.drive import SimDisk
from repro.disk.energy import DiskEnergy
from repro.disk.events import DiskEvent, DiskEventLog
from repro.disk.geometry import DiskGeometry
from repro.disk.modes import DiskMode
from repro.disk.positioned import PositionedServiceModel
from repro.disk.seek import SeekModel
from repro.disk.service import ServiceModel

__all__ = [
    "DiskEnergy",
    "DiskEvent",
    "DiskEventLog",
    "DiskGeometry",
    "DiskMode",
    "PositionedServiceModel",
    "SeekModel",
    "ServiceModel",
    "SimDisk",
]
