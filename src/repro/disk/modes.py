"""Disk power modes (paper Fig. 1(b))."""

from __future__ import annotations

import enum


class DiskMode(enum.Enum):
    """Power modes of the simulated drive.

    The paper's manager only ever moves between IDLE and STANDBY ("when we
    mention turning off a disk ... it means switching the disk to the
    standby mode"); SLEEP exists in the spec but saves nothing over STANDBY
    and costs more to leave.
    """

    ACTIVE = "active"
    IDLE = "idle"
    STANDBY = "standby"
    SLEEP = "sleep"
