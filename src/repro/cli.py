"""Command-line interface: ``repro <command> ...`` or ``python -m repro``.

Commands:

* ``experiment <name>`` -- run a paper table/figure reproduction and print
  its rows (``fig5 fig7 fig8rate fig8pop fig9 table3 table4 table5``).
* ``simulate`` -- run one method on a generated workload.
* ``report`` -- run one method and print the full analysis report
  (energy breakdowns, disk timeline, per-period decisions), normalised
  against an always-on run of the same workload.
* ``trace`` -- generate or import a workload and print its measured
  characteristics (rate, footprint, popularity, miss-ratio curve).
* ``verify`` -- differentially test the fast paths against brute-force
  oracles over fuzzed workloads (see docs/VERIFICATION.md).
* ``list`` -- list experiments and method names.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.base import full_config, quick_config
from repro.experiments.registry import get_experiment, list_experiments
from repro.policies.registry import standard_methods
from repro.sim.runner import run_method
from repro.units import GB, MB


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Joint Power Management of Memory and Disk (DATE 2005) -- "
            "reproduction harness"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="run a table/figure reproduction")
    exp.add_argument(
        "name", help="experiment name (see `repro list`), or `all`"
    )
    exp.add_argument(
        "--profile",
        choices=["full", "quick"],
        default="full",
        help="full approximates the paper; quick is a fast smoke profile",
    )

    simulate = sub.add_parser("simulate", help="run one method on a workload")
    simulate.add_argument("method", help="method name, e.g. JOINT or 2TFM-8GB")
    simulate.add_argument(
        "--suite",
        help="named workload (see repro.traces.suites) instead of the knobs below",
    )
    simulate.add_argument("--dataset-gb", type=float, default=16.0)
    simulate.add_argument("--rate-mb", type=float, default=100.0)
    simulate.add_argument("--popularity", type=float, default=0.1)
    simulate.add_argument("--periods", type=int, default=5)
    simulate.add_argument("--warmup-periods", type=int, default=1)
    simulate.add_argument("--scale", type=int, default=1024)
    simulate.add_argument("--seed", type=int, default=42)

    report = sub.add_parser(
        "report", help="run one method and print the analysis report"
    )
    report.add_argument("method", help="method name, e.g. JOINT or 2TDS-128GB")
    report.add_argument(
        "--suite",
        help="named workload (see repro.traces.suites) instead of the knobs below",
    )
    report.add_argument("--dataset-gb", type=float, default=16.0)
    report.add_argument("--rate-mb", type=float, default=100.0)
    report.add_argument("--popularity", type=float, default=0.1)
    report.add_argument("--periods", type=int, default=5)
    report.add_argument("--warmup-periods", type=int, default=1)
    report.add_argument("--scale", type=int, default=1024)
    report.add_argument("--seed", type=int, default=42)

    trace = sub.add_parser(
        "trace", help="generate or import a workload and characterise it"
    )
    trace.add_argument(
        "--block-csv",
        help="import a time,offset,size block trace instead of generating",
    )
    trace.add_argument("--dataset-gb", type=float, default=16.0)
    trace.add_argument("--rate-mb", type=float, default=100.0)
    trace.add_argument("--popularity", type=float, default=0.1)
    trace.add_argument("--duration-s", type=float, default=1800.0)
    trace.add_argument("--scale", type=int, default=1024)
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument("--save", help="write the trace to this .npz path")

    verify = sub.add_parser(
        "verify",
        help="differentially test fast paths against brute-force oracles",
    )
    verify.add_argument(
        "--seeds", type=int, default=50, help="fuzzed workloads per check"
    )
    verify.add_argument("--first-seed", type=int, default=0)
    verify.add_argument(
        "--checks",
        help="comma-separated subset (stack,intervals,predictor,joint,energy)",
    )
    verify.add_argument(
        "--max-accesses",
        type=int,
        default=300,
        help="upper bound on accesses per fuzzed workload",
    )
    verify.add_argument(
        "--progress", action="store_true", help="print each (check, seed) pair"
    )

    sub.add_parser("list", help="list experiments and method names")
    return parser


def _cmd_experiment(args: argparse.Namespace) -> int:
    config = quick_config() if args.profile == "quick" else full_config()
    if args.name.strip().lower() == "all":
        from repro.experiments.registry import EXPERIMENTS

        for name in sorted(EXPERIMENTS):
            print(EXPERIMENTS[name](config).render())
            print()
        return 0
    runner = get_experiment(args.name)
    result = runner(config)
    print(result.render())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    machine, trace, duration, warmup = _make_workload(args)
    result = run_method(
        args.method,
        trace,
        machine,
        duration_s=duration,
        warmup_s=warmup,
    )
    print(f"method             {result.label}")
    print(f"measured window    {result.duration_s:.0f} s")
    print(f"total energy       {result.total_energy_j / 1e3:.2f} kJ")
    print(f"  memory           {result.memory_energy_j / 1e3:.2f} kJ")
    print(f"  disk             {result.disk_energy_j / 1e3:.2f} kJ")
    print(f"mean latency       {result.mean_latency_s * 1e3:.3f} ms")
    print(f"disk utilisation   {result.utilization:.4f}")
    print(f"long-latency/s     {result.long_latency_per_s:.4f}")
    print(f"spin-down cycles   {result.spin_down_cycles}")
    print(f"miss ratio         {result.miss_ratio:.4f}")
    return 0


def _make_workload(args: argparse.Namespace):
    from repro.config.machine import scaled_machine
    from repro.traces.specweb import generate_trace

    machine = scaled_machine(args.scale)
    period = machine.manager.period_s
    duration = (args.periods + args.warmup_periods) * period
    if getattr(args, "suite", None):
        from repro.traces import suites

        trace = suites.build(args.suite, machine, duration, seed=args.seed)
    else:
        trace = generate_trace(
            dataset_bytes=args.dataset_gb * GB,
            data_rate=args.rate_mb * MB,
            duration_s=duration,
            popularity=args.popularity,
            page_size=machine.page_bytes,
            seed=args.seed,
            file_scale=machine.scale,
        )
    return machine, trace, duration, args.warmup_periods * period


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_report

    machine, trace, duration, warmup = _make_workload(args)
    result = run_method(
        args.method, trace, machine, duration_s=duration, warmup_s=warmup
    )
    baseline = None
    if args.method.strip().upper() != "ALWAYS-ON":
        baseline = run_method(
            "ALWAYS-ON", trace, machine, duration_s=duration, warmup_s=warmup
        )
    print(format_report(result, machine, baseline=baseline))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.config.machine import scaled_machine
    from repro.experiments.formatting import render_table
    from repro.traces.characterize import characterize

    machine = scaled_machine(args.scale)
    if args.block_csv:
        from repro.traces.block_trace import load_block_csv

        trace = load_block_csv(args.block_csv, page_size=machine.page_bytes)
        source = args.block_csv
    else:
        from repro.traces.specweb import generate_trace

        trace = generate_trace(
            dataset_bytes=args.dataset_gb * GB,
            data_rate=args.rate_mb * MB,
            duration_s=args.duration_s,
            popularity=args.popularity,
            page_size=machine.page_bytes,
            seed=args.seed,
            file_scale=machine.scale,
        )
        source = "generated (SPECWeb99-class)"
    profile = characterize(trace)
    print(render_table(profile.summary_rows(), title=f"workload: {source}"))
    if args.save:
        from repro.traces.trace_io import save_npz

        save_npz(trace, args.save)
        print(f"saved to {args.save}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify.differential import run_differential

    checks = None
    if args.checks:
        checks = [name.strip() for name in args.checks.split(",") if name.strip()]
    on_progress = None
    if args.progress:
        on_progress = lambda name, seed: print(f"  {name}: seed {seed}")  # noqa: E731
    report = run_differential(
        seeds=args.seeds,
        checks=checks,
        first_seed=args.first_seed,
        max_accesses=args.max_accesses,
        on_progress=on_progress,
    )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_list(args: argparse.Namespace) -> int:
    del args
    print("experiments:")
    for name in list_experiments():
        print(f"  {name}")
    print("methods:")
    for spec in standard_methods():
        print(f"  {spec.label}")
    print("  JOINT-NC / JOINT-MEM / JOINT-TO (ablation variants)")
    print("  OR/PT/EA + FM/PD/DS[-<size>GB] (extension disk policies)")
    from repro.traces.suites import suite_names

    print("workload suites (simulate/report --suite):")
    for name in suite_names():
        print(f"  {name}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "experiment": _cmd_experiment,
        "simulate": _cmd_simulate,
        "report": _cmd_report,
        "trace": _cmd_trace,
        "verify": _cmd_verify,
        "list": _cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
