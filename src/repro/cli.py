"""Command-line interface: ``repro <command> ...`` or ``python -m repro``.

Commands:

* ``experiment <name>`` -- run a paper table/figure reproduction and print
  its rows (``fig5 fig7 fig8rate fig8pop fig9 table3 table4 table5``).
* ``campaign [name ...]`` -- run experiments as one batch of independent
  tasks: parallel over ``--jobs`` workers, results content-addressed in
  an on-disk cache, the run journaled and resumable (``--resume RUN_ID``).
* ``simulate`` -- run one method on a generated workload.
* ``report`` -- run one method and print the full analysis report
  (energy breakdowns, disk timeline, per-period decisions), normalised
  against an always-on run of the same workload.
* ``trace`` -- generate or import a workload and print its measured
  characteristics (rate, footprint, popularity, miss-ratio curve).
* ``regret`` -- run one method and score it against the offline
  optimality oracles: Belady/OPT misses under the run's own capacity
  schedule, the clairvoyant disk schedule, and a provable energy lower
  bound (see :mod:`repro.analysis.regret`).
* ``verify`` -- differentially test the fast paths against brute-force
  oracles over fuzzed workloads (see docs/VERIFICATION.md); ``--quick``
  shrinks the corpus for smoke jobs.
* ``bench`` -- run the performance benchmark suites, write
  ``BENCH_<suite>.json`` documents, and optionally gate against the
  committed baselines (see docs/PERFORMANCE.md).
* ``serve`` -- run the multi-tenant streaming daemon: tenant sessions
  feed access batches over a line-delimited-JSON socket protocol and
  receive period decisions online (see docs/SERVICE.md).
* ``fleet`` -- simulate an N-disk, M-tenant fleet: tenants are
  content-hashed onto shards, each shard fans out as one campaign task
  (cached, parallel), and the merged :class:`FleetReport` is printed
  (see docs/FLEET.md).
* ``list`` -- list experiments and method names.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.base import full_config, quick_config
from repro.experiments.registry import get_experiment, list_experiments
from repro.policies.registry import standard_methods
from repro.sim.runner import run_method
from repro.units import GB, MB

#: Shared help for the --scale knob: the page-granularity divisor.
_SCALE_HELP = (
    "page-granularity divisor: pages are scale x 4 kB, shrinking the "
    "per-access arrays by the same factor; 1 = full paper resolution "
    "(~10^7 accesses per 400 s at 100 MB/s -- see docs/PERFORMANCE.md), "
    "default 1024 keeps quick runs in milliseconds"
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Joint Power Management of Memory and Disk (DATE 2005) -- "
            "reproduction harness"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="run a table/figure reproduction")
    exp.add_argument(
        "name", help="experiment name (see `repro list`), or `all`"
    )
    exp.add_argument(
        "--profile",
        choices=["full", "quick"],
        default="full",
        help="full approximates the paper; quick is a fast smoke profile",
    )
    _add_campaign_options(exp, default_cache=False)

    campaign = sub.add_parser(
        "campaign",
        help="run experiments as parallel, cached, resumable campaign tasks",
    )
    campaign.add_argument(
        "names",
        nargs="*",
        help="experiment names (see `repro list`); default: all of them",
    )
    campaign.add_argument(
        "--profile",
        choices=["full", "quick"],
        default="full",
        help="full approximates the paper; quick is a fast smoke profile",
    )
    _add_campaign_options(campaign, default_cache=True)
    campaign.add_argument(
        "--run-id", help="name this run's journal directory (default: timestamp)"
    )
    campaign.add_argument(
        "--resume",
        metavar="RUN_ID",
        help="reuse completed tasks from this earlier run's journal",
    )
    campaign.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra attempts per task after a crash (default 2)",
    )
    campaign.add_argument(
        "--progress", action="store_true", help="print each finished task"
    )
    campaign.add_argument(
        "--out", help="also write the machine-readable summary JSON here"
    )

    simulate = sub.add_parser("simulate", help="run one method on a workload")
    simulate.add_argument("method", help="method name, e.g. JOINT or 2TFM-8GB")
    simulate.add_argument(
        "--suite",
        help="named workload (see repro.traces.suites) instead of the knobs below",
    )
    simulate.add_argument("--dataset-gb", type=float, default=16.0)
    simulate.add_argument("--rate-mb", type=float, default=100.0)
    simulate.add_argument("--popularity", type=float, default=0.1)
    simulate.add_argument("--periods", type=int, default=5)
    simulate.add_argument("--warmup-periods", type=int, default=1)
    simulate.add_argument(
        "--scale", type=int, default=1024, help=_SCALE_HELP
    )
    simulate.add_argument("--seed", type=int, default=42)

    regret = sub.add_parser(
        "regret",
        help="run one method and score it against the offline optimum",
    )
    regret.add_argument("method", help="method name, e.g. JOINT or 2TFM-8GB")
    regret.add_argument(
        "--suite",
        help="named workload (see repro.traces.suites) instead of the knobs below",
    )
    regret.add_argument("--dataset-gb", type=float, default=16.0)
    regret.add_argument("--rate-mb", type=float, default=100.0)
    regret.add_argument("--popularity", type=float, default=0.1)
    regret.add_argument("--periods", type=int, default=5)
    # The oracle aligns the capacity schedule with the trace from t=0, so
    # regret runs record the whole run: no warmup window.
    regret.add_argument(
        "--warmup-periods", type=int, default=0, help=argparse.SUPPRESS
    )
    regret.add_argument("--scale", type=int, default=1024, help=_SCALE_HELP)
    regret.add_argument("--seed", type=int, default=42)

    report = sub.add_parser(
        "report", help="run one method and print the analysis report"
    )
    report.add_argument("method", help="method name, e.g. JOINT or 2TDS-128GB")
    report.add_argument(
        "--suite",
        help="named workload (see repro.traces.suites) instead of the knobs below",
    )
    report.add_argument("--dataset-gb", type=float, default=16.0)
    report.add_argument("--rate-mb", type=float, default=100.0)
    report.add_argument("--popularity", type=float, default=0.1)
    report.add_argument("--periods", type=int, default=5)
    report.add_argument("--warmup-periods", type=int, default=1)
    report.add_argument("--scale", type=int, default=1024, help=_SCALE_HELP)
    report.add_argument("--seed", type=int, default=42)

    trace = sub.add_parser(
        "trace", help="generate or import a workload and characterise it"
    )
    trace.add_argument(
        "--block-csv",
        help="import a time,offset,size block trace instead of generating",
    )
    trace.add_argument("--dataset-gb", type=float, default=16.0)
    trace.add_argument("--rate-mb", type=float, default=100.0)
    trace.add_argument("--popularity", type=float, default=0.1)
    trace.add_argument("--duration-s", type=float, default=1800.0)
    trace.add_argument("--scale", type=int, default=1024, help=_SCALE_HELP)
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument("--save", help="write the trace to this .npz path")

    verify = sub.add_parser(
        "verify",
        help="differentially test fast paths against brute-force oracles",
    )
    verify.add_argument(
        "--seeds",
        type=int,
        default=None,
        help="fuzzed workloads per check (default 50, 15 with --quick)",
    )
    verify.add_argument("--first-seed", type=int, default=0)
    verify.add_argument(
        "--checks",
        help=(
            "comma-separated subset (stack,intervals,predictor,joint,"
            "energy,kernels,missrun,writes,epoch,optimal,stream,fleet)"
        ),
    )
    verify.add_argument(
        "--max-accesses",
        type=int,
        default=None,
        help=(
            "upper bound on accesses per fuzzed workload "
            "(default 300, 150 with --quick)"
        ),
    )
    verify.add_argument(
        "--quick",
        action="store_true",
        help="smoke-test corpus: fewer seeds, shorter streams (CI)",
    )
    verify.add_argument(
        "--progress", action="store_true", help="print each (check, seed) pair"
    )
    _add_campaign_options(verify, default_cache=False)
    verify.add_argument(
        "--chunk",
        type=int,
        help="seeds per campaign task (default: seeds / (4 * jobs))",
    )

    bench = sub.add_parser(
        "bench", help="run the performance benchmark suites"
    )
    bench.add_argument(
        "--suite",
        choices=[
            "micro", "sweep", "joint", "missrun", "service", "fullres",
            "fleet", "all",
        ],
        default="all",
        help="which suite(s) to run (default: all)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="shorter workloads and fewer repeats (CI smoke profile)",
    )
    bench.add_argument(
        "--out-dir",
        default=".",
        help="where BENCH_<suite>.json documents are written (default: .)",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="compare against committed baselines; exit 1 on regression",
    )
    bench.add_argument(
        "--baseline-dir",
        default="benchmarks/baselines",
        help="committed baseline documents (default: benchmarks/baselines)",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop of gated entries (default 0.30)",
    )
    bench.add_argument(
        "--update-baselines",
        action="store_true",
        help="write this run's documents into --baseline-dir",
    )

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant streaming power-manager daemon",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default: 0 = ephemeral; the bound port is printed)",
    )
    serve.add_argument(
        "--idle-timeout-s",
        type=float,
        default=None,
        help="evict tenant sessions idle longer than this (default: never)",
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=1024,
        help="cap on concurrently open sessions (default 1024)",
    )

    fleet = sub.add_parser(
        "fleet",
        help="simulate an N-disk, M-tenant fleet as sharded campaign tasks",
    )
    fleet.add_argument(
        "--method",
        default="PTNAP",
        help="per-shard method, e.g. PTNAP or 2TNAP (default PTNAP)",
    )
    fleet.add_argument(
        "--tenants", type=int, default=6, help="tenant workloads (default 6)"
    )
    fleet.add_argument(
        "--shards",
        type=int,
        default=3,
        help="independent shards tenants hash onto (default 3)",
    )
    fleet.add_argument(
        "--disks-per-shard",
        type=int,
        default=2,
        help="spindles per shard (default 2; layout `sim` requires 1)",
    )
    fleet.add_argument(
        "--layout",
        choices=["sim", "partitioned", "striped", "migrating"],
        default="migrating",
        help=(
            "in-shard data layout (default migrating; `sim` replays each "
            "shard on the single-disk kernels)"
        ),
    )
    fleet.add_argument("--dataset-gb", type=float, default=1.0)
    fleet.add_argument("--rate-mb", type=float, default=2.0)
    fleet.add_argument("--popularity", type=float, default=0.8)
    fleet.add_argument("--periods", type=int, default=4)
    fleet.add_argument("--scale", type=int, default=1024, help=_SCALE_HELP)
    fleet.add_argument(
        "--seed", type=int, default=42, help="tenant i draws seed+i"
    )
    fleet.add_argument(
        "--monolithic",
        action="store_true",
        help="serial in-process reference (forced-scalar, no fan-out)",
    )
    _add_campaign_options(fleet, default_cache=False)
    fleet.add_argument(
        "--out", help="also write the campaign telemetry JSON here"
    )

    sub.add_parser("list", help="list experiments and method names")
    return parser


def _add_campaign_options(
    parser: argparse.ArgumentParser, default_cache: bool
) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = serial, in this process)",
    )
    parser.add_argument(
        "--cache-dir",
        help=(
            "content-addressed result cache directory"
            + (
                " (default: $REPRO_CACHE_DIR or ~/.cache/repro)"
                if default_cache
                else " (default: no cache)"
            )
        ),
    )
    if default_cache:
        parser.add_argument(
            "--no-cache",
            action="store_true",
            help="recompute everything; do not read or write the cache",
        )


def _make_cache(args: argparse.Namespace, default_cache: bool):
    """The ResultCache the flags ask for, or None."""
    from repro.campaign.cache import ResultCache, default_cache_root

    if getattr(args, "no_cache", False):
        return None
    if args.cache_dir:
        return ResultCache(args.cache_dir)
    if default_cache:
        return ResultCache(default_cache_root())
    return None


def _cmd_experiment(args: argparse.Namespace) -> int:
    config = quick_config() if args.profile == "quick" else full_config()
    cache = _make_cache(args, default_cache=False)
    if args.name.strip().lower() == "all":
        names = list_experiments()
    else:
        names = [args.name]
    if args.jobs <= 1 and cache is None:
        # The legacy direct path: no pool, no cache, no journal.
        for name in names:
            print(get_experiment(name)(config).render())
            if len(names) > 1:
                print()
        return 0
    return _run_campaign_plans(
        names, config, jobs=args.jobs, cache=cache
    )


def _run_campaign_plans(
    names: List[str],
    config,
    *,
    jobs: int,
    cache,
    run_id: Optional[str] = None,
    resume: Optional[str] = None,
    retries: int = 2,
    progress: bool = False,
    out: Optional[str] = None,
) -> int:
    """Concatenate the experiments' plans into one campaign, run, print."""
    from repro.campaign.executor import run_campaign
    from repro.experiments.registry import get_plan

    plans = [(name, get_plan(name, config)) for name in names]
    tasks = [task for _, plan in plans for task in plan.tasks]
    on_progress = None
    if progress:

        def on_progress(record, done, total):
            print(f"  [{done}/{total}] {record.source:<8} {record.label}")

    report = run_campaign(
        tasks,
        jobs=jobs,
        cache=cache,
        run_id=run_id,
        resume=resume,
        retries=retries,
        on_progress=on_progress,
    )
    if out is not None:
        import json

        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report.telemetry(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    payloads = report.payloads()
    offset = 0
    failed_names = []
    for name, plan in plans:
        part = payloads[offset : offset + len(plan.tasks)]
        offset += len(plan.tasks)
        if any(p is None for p in part):
            failed_names.append(name)
            continue
        print(plan.assemble(part).render())
        print()
    print(report.render_summary())
    if failed_names:
        print(f"FAILED experiments: {', '.join(failed_names)}")
        for record in report.failures():
            print(f"  {record.label}: {record.error}")
        return 1
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    config = quick_config() if args.profile == "quick" else full_config()
    names = [name.strip().lower() for name in args.names] or list_experiments()
    for name in names:
        get_experiment(name)  # fail fast on unknown names
    return _run_campaign_plans(
        names,
        config,
        jobs=args.jobs,
        cache=_make_cache(args, default_cache=True),
        run_id=args.run_id,
        resume=args.resume,
        retries=args.retries,
        progress=args.progress,
        out=args.out,
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    machine, trace, duration, warmup = _make_workload(args)
    result = run_method(
        args.method,
        trace,
        machine,
        duration_s=duration,
        warmup_s=warmup,
    )
    print(f"method             {result.label}")
    print(f"measured window    {result.duration_s:.0f} s")
    print(f"total energy       {result.total_energy_j / 1e3:.2f} kJ")
    print(f"  memory           {result.memory_energy_j / 1e3:.2f} kJ")
    print(f"  disk             {result.disk_energy_j / 1e3:.2f} kJ")
    print(f"mean latency       {result.mean_latency_s * 1e3:.3f} ms")
    print(f"disk utilisation   {result.utilization:.4f}")
    print(f"long-latency/s     {result.long_latency_per_s:.4f}")
    print(f"spin-down cycles   {result.spin_down_cycles}")
    print(f"miss ratio         {result.miss_ratio:.4f}")
    return 0


def _make_workload(args: argparse.Namespace):
    from repro.config.machine import scaled_machine
    from repro.traces.specweb import generate_trace

    machine = scaled_machine(args.scale)
    period = machine.manager.period_s
    duration = (args.periods + args.warmup_periods) * period
    if getattr(args, "suite", None):
        from repro.traces import suites

        trace = suites.build(args.suite, machine, duration, seed=args.seed)
    else:
        trace = generate_trace(
            dataset_bytes=args.dataset_gb * GB,
            data_rate=args.rate_mb * MB,
            duration_s=duration,
            popularity=args.popularity,
            page_size=machine.page_bytes,
            seed=args.seed,
            file_scale=machine.scale,
        )
    return machine, trace, duration, args.warmup_periods * period


def _cmd_regret(args: argparse.Namespace) -> int:
    from repro.analysis.regret import compute_regret

    machine, trace, duration, warmup = _make_workload(args)
    result = run_method(
        args.method,
        trace,
        machine,
        duration_s=duration,
        warmup_s=warmup,
    )
    report = compute_regret(result, trace, machine)
    print(report.render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_report

    machine, trace, duration, warmup = _make_workload(args)
    result = run_method(
        args.method, trace, machine, duration_s=duration, warmup_s=warmup
    )
    baseline = None
    if args.method.strip().upper() != "ALWAYS-ON":
        baseline = run_method(
            "ALWAYS-ON", trace, machine, duration_s=duration, warmup_s=warmup
        )
    print(format_report(result, machine, baseline=baseline))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.config.machine import scaled_machine
    from repro.experiments.formatting import render_table
    from repro.traces.characterize import characterize

    machine = scaled_machine(args.scale)
    if args.block_csv:
        from repro.traces.block_trace import load_block_csv

        trace = load_block_csv(args.block_csv, page_size=machine.page_bytes)
        source = args.block_csv
    else:
        from repro.traces.specweb import generate_trace

        trace = generate_trace(
            dataset_bytes=args.dataset_gb * GB,
            data_rate=args.rate_mb * MB,
            duration_s=args.duration_s,
            popularity=args.popularity,
            page_size=machine.page_bytes,
            seed=args.seed,
            file_scale=machine.scale,
        )
        source = "generated (SPECWeb99-class)"
    profile = characterize(trace)
    print(render_table(profile.summary_rows(), title=f"workload: {source}"))
    if args.save:
        from repro.traces.trace_io import save_npz

        save_npz(trace, args.save)
        print(f"saved to {args.save}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    checks = None
    if args.checks:
        checks = [name.strip() for name in args.checks.split(",") if name.strip()]
    # --quick shrinks the defaults; explicit --seeds/--max-accesses win.
    if args.seeds is None:
        args.seeds = 15 if args.quick else 50
    if args.max_accesses is None:
        args.max_accesses = 150 if args.quick else 300
    cache = _make_cache(args, default_cache=False)
    if args.jobs <= 1 and cache is None and args.chunk is None:
        from repro.verify.differential import run_differential

        on_progress = None
        if args.progress:
            on_progress = lambda name, seed: print(f"  {name}: seed {seed}")  # noqa: E731
        report = run_differential(
            seeds=args.seeds,
            checks=checks,
            first_seed=args.first_seed,
            max_accesses=args.max_accesses,
            on_progress=on_progress,
        )
    else:
        from repro.verify.parallel import run_differential_campaign

        report = run_differential_campaign(
            seeds=args.seeds,
            checks=checks,
            first_seed=args.first_seed,
            max_accesses=args.max_accesses,
            jobs=args.jobs,
            cache=cache,
            chunk=args.chunk,
        )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf import compare, load_baseline, run_suite, write_suite
    from repro.perf.suite import SUITE_NAMES, render_suite

    suites = list(SUITE_NAMES) if args.suite == "all" else [args.suite]
    failed = False
    for suite in suites:
        doc = run_suite(suite, quick=args.quick)
        path = write_suite(doc, args.out_dir)
        print(render_suite(doc))
        print(f"  wrote {path}")
        if args.update_baselines:
            base_path = write_suite(doc, args.baseline_dir)
            print(f"  baseline updated: {base_path}")
        if args.check:
            baseline = load_baseline(args.baseline_dir, suite)
            if baseline is None:
                print(f"  no baseline for {suite} in {args.baseline_dir}; skipped")
            else:
                report = compare(doc, baseline, tolerance=args.tolerance)
                print(report.render())
                failed = failed or not report.ok
        print()
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.daemon import ServiceDaemon
    from repro.service.sessions import SessionRegistry

    registry = SessionRegistry(
        idle_timeout_s=args.idle_timeout_s, max_sessions=args.max_sessions
    )
    daemon = ServiceDaemon(args.host, args.port, registry=registry)
    # The smoke drivers parse this line to find the ephemeral port.
    print(f"repro serve listening on {daemon.host}:{daemon.port}", flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        daemon.stop()
    stats = registry.stats()
    print(
        f"served {stats['closed_sessions']} session(s), "
        f"{stats['accesses_fed']} access(es), "
        f"{stats['decisions']} decision(s)"
    )
    return 0


def _fleet_spec(args: argparse.Namespace):
    from repro.campaign.tasks import WorkloadSpec
    from repro.config.machine import scaled_machine
    from repro.fleet.sharding import FleetSpec
    from repro.policies.registry import parse_method

    machine = scaled_machine(args.scale)
    duration = args.periods * machine.manager.period_s
    tenants = tuple(
        WorkloadSpec.for_machine(
            machine,
            dataset_gb=args.dataset_gb,
            rate_mb=args.rate_mb,
            popularity=args.popularity,
            duration_s=duration,
            seed=args.seed + i,
        )
        for i in range(args.tenants)
    )
    return FleetSpec(
        machine=machine,
        method=parse_method(args.method),
        tenants=tenants,
        num_shards=args.shards,
        duration_s=duration,
        disks_per_shard=args.disks_per_shard,
        layout=args.layout,
    )


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet.sharding import fleet_plan, run_fleet_monolithic

    spec = _fleet_spec(args)
    if args.monolithic:
        print(run_fleet_monolithic(spec).render())
        return 0
    from repro.campaign.executor import run_campaign

    plan = fleet_plan(spec)
    report = run_campaign(
        plan.tasks,
        jobs=args.jobs,
        cache=_make_cache(args, default_cache=False),
    )
    if args.out is not None:
        import json

        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.telemetry(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if not report.ok:
        print(report.render_summary())
        for record in report.failures():
            print(f"  FAILED {record.label}: {record.error}")
        return 1
    print(plan.assemble(report.payloads()).render())
    print()
    print(report.render_summary())
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    del args
    print("experiments:")
    for name in list_experiments():
        print(f"  {name}")
    print("methods:")
    for spec in standard_methods():
        print(f"  {spec.label}")
    print("  JOINT-NC / JOINT-MEM / JOINT-TO (ablation variants)")
    print("  OR/PT/EA + FM/PD/DS[-<size>GB] (extension disk policies)")
    from repro.traces.suites import suite_names

    print("workload suites (simulate/report --suite):")
    for name in suite_names():
        print(f"  {name}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "experiment": _cmd_experiment,
        "campaign": _cmd_campaign,
        "simulate": _cmd_simulate,
        "regret": _cmd_regret,
        "report": _cmd_report,
        "trace": _cmd_trace,
        "verify": _cmd_verify,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
        "fleet": _cmd_fleet,
        "list": _cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
