"""Write-traffic extension: what write-back does to spin-down savings.

Not a paper artefact -- the paper's SPECWeb99 workload is read-dominated
and its model only notes that "read, write, or seek requests" keep the
disk active.  This experiment supplies the missing axis: sweep the write
fraction and watch the periodic flusher (a 30-s pdflush-style sweep)
erode disk idleness.  Every flush is a disk request, so a single dirty
page per window caps the longest possible idle interval at the flush
interval -- well above the drive's 11.7-s break-even, but enough to
multiply spin-down cycles and wake delays for aggressive policies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.sim.compare import compare_methods

DEFAULT_WRITE_FRACTIONS: Sequence[float] = (0.0, 0.05, 0.2)
METHODS: Sequence[str] = ("JOINT", "2TFM-16GB", "ADFM-16GB", "ALWAYS-ON")
RATE_MB: float = 20.0


def run(
    config: ExperimentConfig,
    write_fractions: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """One row per (write fraction, method)."""
    fractions = list(write_fractions or DEFAULT_WRITE_FRACTIONS)
    machine = config.machine()
    rows: List[Dict[str, object]] = []
    for index, fraction in enumerate(fractions):
        trace = config.make_trace(
            machine,
            data_rate_mb=RATE_MB,
            seed_offset=700 + index,
        )
        if fraction > 0.0:
            # Regenerate with writes (the generator marks whole requests).
            from repro.traces.specweb import generate_trace
            from repro.units import GB, MB

            trace = generate_trace(
                dataset_bytes=config.dataset_gb * GB,
                data_rate=RATE_MB * MB,
                duration_s=config.duration_s,
                popularity=config.popularity,
                page_size=machine.page_bytes,
                seed=config.seed + 700 + index,
                file_scale=machine.scale,
                write_fraction=fraction,
            )
        comparison = compare_methods(
            trace,
            machine,
            methods=list(METHODS),
            duration_s=config.duration_s,
            warmup_s=config.warmup_s,
        )
        normalized = comparison.normalized_by_label()
        for label in METHODS:
            result = comparison[label]
            rows.append(
                {
                    "write_fraction": fraction,
                    "method": label,
                    "total_energy": round(normalized[label].total_energy, 4),
                    "disk_energy": round(normalized[label].disk_energy, 4),
                    "writeback_pages": result.disk_write_pages,
                    "spin_downs": result.spin_down_cycles,
                    "wake_long_latency": result.wake_long_latency,
                }
            )
    return ExperimentResult(
        name="writes",
        title=(
            "Write-traffic extension -- energy and spin-down behaviour "
            "vs write fraction (16-GB set, 20 MB/s)"
        ),
        notes=(
            "Expected: write-back pages grow with the write fraction; "
            "the flusher keeps breaking idleness, so spin-down-happy "
            "policies cycle more; normalised savings shrink as writes "
            "grow."
        ),
        rows=rows,
    )
