"""Write-traffic extension: what write-back does to spin-down savings.

Not a paper artefact -- the paper's SPECWeb99 workload is read-dominated
and its model only notes that "read, write, or seek requests" keep the
disk active.  This experiment supplies the missing axis: sweep the write
fraction and watch the periodic flusher (a 30-s pdflush-style sweep)
erode disk idleness.  Every flush is a disk request, so a single dirty
page per window caps the longest possible idle interval at the flush
interval -- well above the drive's 11.7-s break-even, but enough to
multiply spin-down cycles and wake delays for aggressive policies.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.campaign.plan import (
    CampaignPlan,
    GridPoint,
    grid_tasks,
    resolve_methods,
    run_plan,
    split_by_point,
)
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.sim.compare import BASELINE_LABEL

DEFAULT_WRITE_FRACTIONS: Sequence[float] = (0.0, 0.05, 0.2)
METHODS: Sequence[str] = ("JOINT", "2TFM-16GB", "ADFM-16GB", "ALWAYS-ON")
RATE_MB: float = 20.0


def plan(
    config: ExperimentConfig,
    write_fractions: Optional[Sequence[float]] = None,
) -> CampaignPlan:
    """The write sweep as independent (write fraction, method) tasks."""
    fractions = list(write_fractions or DEFAULT_WRITE_FRACTIONS)
    machine = config.machine()
    methods = resolve_methods(list(METHODS))
    points = [
        GridPoint(
            machine=machine,
            workload=config.workload(
                machine,
                data_rate_mb=RATE_MB,
                seed_offset=700 + index,
                write_fraction=fraction,
            ),
            methods=methods,
            duration_s=config.duration_s,
            warmup_s=config.warmup_s,
            meta=(("write_fraction", fraction),),
        )
        for index, fraction in enumerate(fractions)
    ]
    return CampaignPlan(
        tasks=grid_tasks(points), assemble=lambda p: _assemble(points, p)
    )


def run(
    config: ExperimentConfig,
    write_fractions: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """One row per (write fraction, method)."""
    return run_plan(plan(config, write_fractions))


def _assemble(
    points: Sequence[GridPoint], payloads: Sequence[Mapping[str, object]]
) -> ExperimentResult:
    rows: List[Dict[str, object]] = []
    for point, by_label in split_by_point(points, payloads):
        baseline = by_label[BASELINE_LABEL]
        for label in METHODS:
            result = by_label[label]
            norm = result.normalized_to(baseline)
            rows.append(
                {
                    "write_fraction": dict(point.meta)["write_fraction"],
                    "method": label,
                    "total_energy": round(norm.total_energy, 4),
                    "disk_energy": round(norm.disk_energy, 4),
                    "writeback_pages": result.disk_write_pages,
                    "spin_downs": result.spin_down_cycles,
                    "wake_long_latency": result.wake_long_latency,
                }
            )
    return ExperimentResult(
        name="writes",
        title=(
            "Write-traffic extension -- energy and spin-down behaviour "
            "vs write fraction (16-GB set, 20 MB/s)"
        ),
        notes=(
            "Expected: write-back pages grow with the write fraction; "
            "the flusher keeps breaking idleness, so spin-down-happy "
            "policies cycle more; normalised savings shrink as writes "
            "grow."
        ),
        rows=rows,
    )
