"""Shared experiment configuration and result containers.

``ExperimentConfig`` pins everything an experiment needs: the granularity
scale, period length, warm-up and measurement windows, workload seed and
the default workload parameters of the paper's Section V (100 MB/s rate,
popularity 0.1, 16-GB data set unless the experiment sweeps it).

Two profiles are provided: ``full_config()`` approximates the paper's
setup at granularity 1024, ``quick_config()`` is a down-sized profile for
tests and fast benchmark smoke runs.  Select via the ``REPRO_PROFILE``
environment variable (``full`` is the default for benchmarks).
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.config.machine import MachineConfig, paper_machine
from repro.errors import ConfigError
from repro.traces.trace import Trace
from repro.units import MB

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.campaign.tasks import WorkloadSpec


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment."""

    #: Granularity factor (DESIGN.md Section 5).
    scale: int = 1024
    #: Manager period T, seconds (the paper's 10 min).
    period_s: float = 600.0
    #: Cold-start periods excluded from measurement.
    warmup_periods: int = 2
    #: Measured periods.
    measure_periods: int = 5
    #: Workload seed (experiments offset it per sweep point).
    seed: int = 42
    #: Default workload parameters (paper Section V-B).
    dataset_gb: float = 16.0
    data_rate_mb: float = 100.0
    popularity: float = 0.10
    #: FM sizes for the method comparison, GB.
    fm_sizes_gb: List[int] = field(default_factory=lambda: [8, 16, 32, 64, 128])

    def __post_init__(self) -> None:
        if self.warmup_periods < 0 or self.measure_periods <= 0:
            raise ConfigError("need non-negative warm-up and positive measurement")

    # --- derived ---------------------------------------------------------------

    @property
    def warmup_s(self) -> float:
        return self.warmup_periods * self.period_s

    @property
    def duration_s(self) -> float:
        return (self.warmup_periods + self.measure_periods) * self.period_s

    def machine(
        self,
        period_s: Optional[float] = None,
        bank_mb: Optional[int] = None,
    ) -> MachineConfig:
        """The scaled machine, with optional period/bank-size overrides."""
        base = paper_machine()
        if bank_mb is not None:
            memory = dataclasses.replace(
                base.memory, bank_bytes=bank_mb * MB
            )
            manager = dataclasses.replace(
                base.manager,
                enumeration_unit_bytes=max(
                    base.manager.enumeration_unit_bytes, bank_mb * MB
                ),
                min_memory_bytes=max(
                    base.manager.min_memory_bytes, bank_mb * MB
                ),
            )
            base = MachineConfig(memory=memory, disk=base.disk, manager=manager)
        machine = base.scaled(self.scale)
        manager = dataclasses.replace(
            machine.manager, period_s=period_s or self.period_s
        )
        return MachineConfig(
            memory=machine.memory,
            disk=machine.disk,
            manager=manager,
            scale=machine.scale,
        )

    def workload(
        self,
        machine: MachineConfig,
        dataset_gb: Optional[float] = None,
        data_rate_mb: Optional[float] = None,
        popularity: Optional[float] = None,
        seed_offset: int = 0,
        duration_s: Optional[float] = None,
        write_fraction: float = 0.0,
    ) -> "WorkloadSpec":
        """The campaign workload spec for one sweep point.

        Overrides compare against ``None`` explicitly so an intentional
        ``0.0`` (e.g. zero popularity skew) is not silently replaced by
        the profile default.
        """
        from repro.campaign.tasks import WorkloadSpec

        return WorkloadSpec.for_machine(
            machine,
            dataset_gb=self.dataset_gb if dataset_gb is None else dataset_gb,
            rate_mb=self.data_rate_mb if data_rate_mb is None else data_rate_mb,
            popularity=self.popularity if popularity is None else popularity,
            duration_s=self.duration_s if duration_s is None else duration_s,
            seed=self.seed + seed_offset,
            write_fraction=write_fraction,
        )

    def make_trace(
        self,
        machine: MachineConfig,
        dataset_gb: Optional[float] = None,
        data_rate_mb: Optional[float] = None,
        popularity: Optional[float] = None,
        seed_offset: int = 0,
        duration_s: Optional[float] = None,
    ) -> Trace:
        """Generate the workload trace for one sweep point."""
        return self.workload(
            machine,
            dataset_gb=dataset_gb,
            data_rate_mb=data_rate_mb,
            popularity=popularity,
            seed_offset=seed_offset,
            duration_s=duration_s,
        ).build()


def full_config() -> ExperimentConfig:
    """Benchmark profile approximating the paper's setup."""
    return ExperimentConfig()


def quick_config() -> ExperimentConfig:
    """Small, fast profile for tests and smoke runs."""
    return ExperimentConfig(
        scale=4096,
        period_s=300.0,
        warmup_periods=1,
        measure_periods=2,
        fm_sizes_gb=[8, 16, 32, 128],
    )


def config_from_env() -> ExperimentConfig:
    """Profile selected by ``REPRO_PROFILE`` (``full`` or ``quick``)."""
    profile = os.environ.get("REPRO_PROFILE", "full").strip().lower()
    if profile == "quick":
        return quick_config()
    if profile == "full":
        return full_config()
    raise ConfigError(f"unknown REPRO_PROFILE {profile!r}")


@dataclass
class ExperimentResult:
    """Rows plus rendering metadata, returned by every experiment."""

    name: str
    title: str
    rows: List[Dict[str, object]]
    #: Optional free-form notes (scaling caveats, paper references).
    notes: str = ""

    def render(self) -> str:
        from repro.experiments.formatting import render_table

        text = render_table(self.rows, title=self.title)
        if self.notes:
            text += "\n" + self.notes
        return text
