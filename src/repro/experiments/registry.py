"""Experiment name -> runner mapping."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ReproError
from repro.experiments import (
    ablation,
    fig5_pareto,
    fig7_dataset,
    fig8_popularity,
    fig8_rate,
    fig9_timeseries,
    hw_sensitivity,
    idle_fit,
    table3_accesses,
    table4_period,
    table5_bank,
    writes,
)
from repro.experiments.base import ExperimentConfig, ExperimentResult

Runner = Callable[[ExperimentConfig], ExperimentResult]

EXPERIMENTS: Dict[str, Runner] = {
    "ablation": ablation.run,
    "fig5": fig5_pareto.run,
    "fig7": fig7_dataset.run,
    "fig8rate": fig8_rate.run,
    "fig8pop": fig8_popularity.run,
    "fig9": fig9_timeseries.run,
    "hwsens": hw_sensitivity.run,
    "idlefit": idle_fit.run,
    "table3": table3_accesses.run,
    "table4": table4_period.run,
    "table5": table5_bank.run,
    "writes": writes.run,
}


def get_experiment(name: str) -> Runner:
    """Look up an experiment runner by its paper-artefact name."""
    key = name.strip().lower()
    if key not in EXPERIMENTS:
        raise ReproError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[key]


def list_experiments() -> List[str]:
    return sorted(EXPERIMENTS)
