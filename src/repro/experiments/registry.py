"""Experiment name -> runner mapping."""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Callable, Dict, List

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.campaign.plan import CampaignPlan

from repro.errors import ReproError
from repro.experiments import (
    ablation,
    fig5_pareto,
    fig7_dataset,
    fig8_popularity,
    fig8_rate,
    fig9_timeseries,
    hw_sensitivity,
    idle_fit,
    table3_accesses,
    table4_period,
    table5_bank,
    writes,
)
from repro.experiments.base import ExperimentConfig, ExperimentResult

Runner = Callable[[ExperimentConfig], ExperimentResult]

EXPERIMENTS: Dict[str, Runner] = {
    "ablation": ablation.run,
    "fig5": fig5_pareto.run,
    "fig7": fig7_dataset.run,
    "fig8rate": fig8_rate.run,
    "fig8pop": fig8_popularity.run,
    "fig9": fig9_timeseries.run,
    "hwsens": hw_sensitivity.run,
    "idlefit": idle_fit.run,
    "table3": table3_accesses.run,
    "table4": table4_period.run,
    "table5": table5_bank.run,
    "writes": writes.run,
}


def get_experiment(name: str) -> Runner:
    """Look up an experiment runner by its paper-artefact name."""
    key = name.strip().lower()
    if key not in EXPERIMENTS:
        raise ReproError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[key]


def list_experiments() -> List[str]:
    return sorted(EXPERIMENTS)


def get_plan(name: str, config: ExperimentConfig) -> "CampaignPlan":
    """An experiment's campaign plan: its independent task decomposition.

    Grid experiments export a ``plan()`` that fans out into per
    (point, method) simulation tasks; the rest (fig5, fig9, idlefit)
    run as a single atomic :class:`repro.campaign.tasks.ExperimentTask`
    -- still cached and journaled, just not subdivided.
    """
    from repro.campaign.plan import CampaignPlan
    from repro.campaign.tasks import ExperimentTask

    key = name.strip().lower()
    runner = get_experiment(key)
    module = sys.modules[runner.__module__]
    planner = getattr(module, "plan", None)
    if planner is not None:
        return planner(config)

    def assemble(payloads) -> ExperimentResult:
        payload = payloads[0]
        if payload is None:
            raise ReproError(f"experiment {key!r} task produced no result")
        return ExperimentResult(
            name=payload["name"],
            title=payload["title"],
            rows=payload["rows"],
            notes=payload.get("notes", ""),
        )

    return CampaignPlan(
        tasks=[ExperimentTask(name=key, config=config)], assemble=assemble
    )
