"""Experiment harness: one module per paper table/figure.

Every experiment exposes ``run(config) -> ExperimentResult``; the registry
maps the paper's artefact names (``fig7``, ``table3``, ...) to them.  The
benchmarks call these runners and print the same rows/series the paper
reports, normalised against the always-on method where the paper does so.
"""

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments

__all__ = [
    "EXPERIMENTS",
    "ExperimentConfig",
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
]
