"""Table V: sensitivity of the joint method to the memory bank size.

Paper setup: 16-GB data set at 100 MB/s; bank sizes 16, 64, 256 and
1024 MB (the resize granularity).  Total energy and long-latency counts
stay nearly constant; larger banks shift a little energy from the disk to
the memory because the chosen memory rounds up to coarser units.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.sim.compare import compare_methods

DEFAULT_BANKS_MB: Sequence[int] = (16, 64, 256, 1024)


def run(
    config: ExperimentConfig,
    banks_mb: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """One row per bank size."""
    banks = list(banks_mb or DEFAULT_BANKS_MB)
    rows: List[Dict[str, object]] = []
    for bank_mb in banks:
        machine = config.machine(bank_mb=bank_mb)
        trace = config.make_trace(machine, seed_offset=400)
        comparison = compare_methods(
            trace,
            machine,
            methods=["JOINT", "ALWAYS-ON"],
            duration_s=config.duration_s,
            warmup_s=config.warmup_s,
        )
        joint = comparison["JOINT"]
        norm = joint.normalized_to(comparison.baseline)
        rows.append(
            {
                "bank_mb": bank_mb,
                "total_energy": round(norm.total_energy, 4),
                "disk_energy": round(norm.disk_energy, 4),
                "memory_energy": round(norm.memory_energy, 4),
                "long_latency_per_s": round(joint.long_latency_per_s, 4),
            }
        )
    return ExperimentResult(
        name="table5",
        title="Table V -- joint method vs memory bank size (energy vs ALWAYS-ON)",
        rows=rows,
        notes=(
            "Paper shape: total energy and long-latency nearly constant; "
            "with larger banks the memory share grows slightly and the "
            "disk share falls."
        ),
    )
