"""Table V: sensitivity of the joint method to the memory bank size.

Paper setup: 16-GB data set at 100 MB/s; bank sizes 16, 64, 256 and
1024 MB (the resize granularity).  Total energy and long-latency counts
stay nearly constant; larger banks shift a little energy from the disk to
the memory because the chosen memory rounds up to coarser units.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.campaign.plan import (
    CampaignPlan,
    GridPoint,
    grid_tasks,
    resolve_methods,
    run_plan,
    split_by_point,
)
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.sim.compare import BASELINE_LABEL

DEFAULT_BANKS_MB: Sequence[int] = (16, 64, 256, 1024)


def plan(
    config: ExperimentConfig,
    banks_mb: Optional[Sequence[int]] = None,
) -> CampaignPlan:
    """The Table V sweep as independent (bank size, method) tasks."""
    banks = list(banks_mb or DEFAULT_BANKS_MB)
    methods = resolve_methods(["JOINT", "ALWAYS-ON"])
    points: List[GridPoint] = []
    for bank_mb in banks:
        machine = config.machine(bank_mb=bank_mb)
        points.append(
            GridPoint(
                machine=machine,
                workload=config.workload(machine, seed_offset=400),
                methods=methods,
                duration_s=config.duration_s,
                warmup_s=config.warmup_s,
                meta=(("bank_mb", bank_mb),),
            )
        )
    return CampaignPlan(
        tasks=grid_tasks(points), assemble=lambda p: _assemble(points, p)
    )


def run(
    config: ExperimentConfig,
    banks_mb: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """One row per bank size."""
    return run_plan(plan(config, banks_mb))


def _assemble(
    points: Sequence[GridPoint], payloads: Sequence[Mapping[str, object]]
) -> ExperimentResult:
    rows: List[Dict[str, object]] = []
    for point, by_label in split_by_point(points, payloads):
        joint = by_label["JOINT"]
        norm = joint.normalized_to(by_label[BASELINE_LABEL])
        rows.append(
            {
                "bank_mb": dict(point.meta)["bank_mb"],
                "total_energy": round(norm.total_energy, 4),
                "disk_energy": round(norm.disk_energy, 4),
                "memory_energy": round(norm.memory_energy, 4),
                "long_latency_per_s": round(joint.long_latency_per_s, 4),
            }
        )
    return ExperimentResult(
        name="table5",
        title="Table V -- joint method vs memory bank size (energy vs ALWAYS-ON)",
        rows=rows,
        notes=(
            "Paper shape: total energy and long-latency nearly constant; "
            "with larger banks the memory share grows slightly and the "
            "disk share falls."
        ),
    )
