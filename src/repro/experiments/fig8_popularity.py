"""Fig. 8(c)/(d): energy and long-latency requests versus data popularity.

Paper setup: 16-GB data set at 5 MB/s ("high data rates hide the effect
of data popularity"), popularity ratio 0.05-0.6.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.policies.registry import standard_methods
from repro.sim.compare import compare_methods

DEFAULT_POPULARITIES: Sequence[float] = (0.05, 0.1, 0.2, 0.4, 0.6)
RATE_MB: float = 5.0


def run(
    config: ExperimentConfig,
    popularities: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """One row per (popularity, method)."""
    pops = list(popularities or DEFAULT_POPULARITIES)
    machine = config.machine()
    methods = standard_methods(fm_sizes_gb=config.fm_sizes_gb)
    rows: List[Dict[str, object]] = []
    for index, popularity in enumerate(pops):
        trace = config.make_trace(
            machine,
            data_rate_mb=RATE_MB,
            popularity=popularity,
            seed_offset=200 + index,
        )
        comparison = compare_methods(
            trace,
            machine,
            methods=methods,
            duration_s=config.duration_s,
            warmup_s=config.warmup_s,
        )
        normalized = comparison.normalized_by_label()
        for label, result in comparison.results.items():
            rows.append(
                {
                    "popularity": popularity,
                    "method": label,
                    "total_energy": round(normalized[label].total_energy, 4),
                    "long_latency_per_s": round(result.long_latency_per_s, 4),
                }
            )
    return ExperimentResult(
        name="fig8pop",
        title=(
            "Fig. 8(c,d) -- normalised energy and long-latency requests "
            "vs popularity (16-GB data set, 5 MB/s)"
        ),
        rows=rows,
        notes=(
            "Paper shape: JOINT largest savings at dense popularity "
            "(small hot set -> small memory); methods caching the whole "
            "data set flat across popularity."
        ),
    )
