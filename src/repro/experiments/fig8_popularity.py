"""Fig. 8(c)/(d): energy and long-latency requests versus data popularity.

Paper setup: 16-GB data set at 5 MB/s ("high data rates hide the effect
of data popularity"), popularity ratio 0.05-0.6.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.campaign.plan import (
    CampaignPlan,
    GridPoint,
    grid_tasks,
    run_plan,
    split_by_point,
)
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.policies.registry import standard_methods
from repro.sim.compare import BASELINE_LABEL

DEFAULT_POPULARITIES: Sequence[float] = (0.05, 0.1, 0.2, 0.4, 0.6)
RATE_MB: float = 5.0


def plan(
    config: ExperimentConfig,
    popularities: Optional[Sequence[float]] = None,
) -> CampaignPlan:
    """The Fig. 8(c,d) sweep as independent (popularity, method) tasks."""
    pops = list(popularities or DEFAULT_POPULARITIES)
    machine = config.machine()
    methods = tuple(standard_methods(fm_sizes_gb=config.fm_sizes_gb))
    points = [
        GridPoint(
            machine=machine,
            workload=config.workload(
                machine,
                data_rate_mb=RATE_MB,
                popularity=popularity,
                seed_offset=200 + index,
            ),
            methods=methods,
            duration_s=config.duration_s,
            warmup_s=config.warmup_s,
            meta=(("popularity", popularity),),
        )
        for index, popularity in enumerate(pops)
    ]
    return CampaignPlan(
        tasks=grid_tasks(points), assemble=lambda p: _assemble(points, p)
    )


def run(
    config: ExperimentConfig,
    popularities: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """One row per (popularity, method)."""
    return run_plan(plan(config, popularities))


def _assemble(
    points: Sequence[GridPoint], payloads: Sequence[Mapping[str, object]]
) -> ExperimentResult:
    rows: List[Dict[str, object]] = []
    for point, by_label in split_by_point(points, payloads):
        baseline = by_label[BASELINE_LABEL]
        for label, result in by_label.items():
            norm = result.normalized_to(baseline)
            rows.append(
                {
                    "popularity": dict(point.meta)["popularity"],
                    "method": label,
                    "total_energy": round(norm.total_energy, 4),
                    "long_latency_per_s": round(result.long_latency_per_s, 4),
                }
            )
    return ExperimentResult(
        name="fig8pop",
        title=(
            "Fig. 8(c,d) -- normalised energy and long-latency requests "
            "vs popularity (16-GB data set, 5 MB/s)"
        ),
        rows=rows,
        notes=(
            "Paper shape: JOINT largest savings at dense popularity "
            "(small hot set -> small memory); methods caching the whole "
            "data set flat across popularity."
        ),
    )
