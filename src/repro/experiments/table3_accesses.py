"""Table III: memory and disk access counts under different data sets.

The paper reports, per data set, the number of disk accesses for the
joint method, 2TFM at each size, 2TPD, 2TDS and the always-on method,
plus a final row with the (method-independent) memory access count.
2T and AD variants have identical miss streams, so only the 2T rows are
shown, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.sim.compare import compare_methods

DEFAULT_DATASETS_GB: Sequence[float] = (4.0, 16.0, 32.0, 64.0)


def run(
    config: ExperimentConfig,
    datasets_gb: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """One row per method; one column per data set (plus the MA row)."""
    datasets = list(datasets_gb or DEFAULT_DATASETS_GB)
    machine = config.machine()
    methods = ["JOINT"]
    methods += [f"2TFM-{size}GB" for size in config.fm_sizes_gb]
    methods += ["2TPD-128GB", "2TDS-128GB", "ALWAYS-ON"]

    disk_accesses: Dict[str, Dict[float, int]] = {m: {} for m in methods}
    memory_accesses: Dict[float, int] = {}
    for index, dataset_gb in enumerate(datasets):
        trace = config.make_trace(machine, dataset_gb=dataset_gb, seed_offset=index)
        comparison = compare_methods(
            trace,
            machine,
            methods=methods,
            duration_s=config.duration_s,
            warmup_s=config.warmup_s,
        )
        for label, result in comparison.results.items():
            disk_accesses[label][dataset_gb] = result.disk_page_accesses
        memory_accesses[dataset_gb] = comparison.baseline.total_accesses

    rows: List[Dict[str, object]] = []
    for label in methods:
        row: Dict[str, object] = {"method": label}
        for dataset_gb in datasets:
            row[f"{dataset_gb:g}GB"] = disk_accesses[label][dataset_gb]
        rows.append(row)
    ma_row: Dict[str, object] = {"method": "MA (memory accesses)"}
    for dataset_gb in datasets:
        ma_row[f"{dataset_gb:g}GB"] = memory_accesses[dataset_gb]
    rows.append(ma_row)

    return ExperimentResult(
        name="table3",
        title="Table III -- disk accesses per method and memory accesses",
        rows=rows,
        notes=(
            "Paper shape: disk accesses grow as FM memory falls below the "
            "data set; PD matches the large-memory miss stream; DS adds "
            "misses from disabled banks; memory accesses depend only on "
            "the workload."
        ),
    )
