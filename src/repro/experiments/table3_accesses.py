"""Table III: memory and disk access counts under different data sets.

The paper reports, per data set, the number of disk accesses for the
joint method, 2TFM at each size, 2TPD, 2TDS and the always-on method,
plus a final row with the (method-independent) memory access count.
2T and AD variants have identical miss streams, so only the 2T rows are
shown, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.campaign.plan import (
    CampaignPlan,
    GridPoint,
    grid_tasks,
    resolve_methods,
    run_plan,
    split_by_point,
)
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.sim.compare import BASELINE_LABEL

DEFAULT_DATASETS_GB: Sequence[float] = (4.0, 16.0, 32.0, 64.0)


def _method_names(config: ExperimentConfig) -> List[str]:
    methods = ["JOINT"]
    methods += [f"2TFM-{size}GB" for size in config.fm_sizes_gb]
    methods += ["2TPD-128GB", "2TDS-128GB", "ALWAYS-ON"]
    return methods


def plan(
    config: ExperimentConfig,
    datasets_gb: Optional[Sequence[float]] = None,
) -> CampaignPlan:
    """The Table III sweep as independent (data set, method) tasks."""
    datasets = list(datasets_gb or DEFAULT_DATASETS_GB)
    machine = config.machine()
    methods = resolve_methods(_method_names(config))
    points = [
        GridPoint(
            machine=machine,
            workload=config.workload(
                machine, dataset_gb=dataset_gb, seed_offset=index
            ),
            methods=methods,
            duration_s=config.duration_s,
            warmup_s=config.warmup_s,
            meta=(("dataset_gb", dataset_gb),),
        )
        for index, dataset_gb in enumerate(datasets)
    ]
    return CampaignPlan(
        tasks=grid_tasks(points), assemble=lambda p: _assemble(points, p)
    )


def run(
    config: ExperimentConfig,
    datasets_gb: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """One row per method; one column per data set (plus the MA row)."""
    return run_plan(plan(config, datasets_gb))


def _assemble(
    points: Sequence[GridPoint], payloads: Sequence[Mapping[str, object]]
) -> ExperimentResult:
    datasets = [dict(point.meta)["dataset_gb"] for point in points]
    labels = [method.label for method in points[0].methods]
    disk_accesses: Dict[str, Dict[float, int]] = {m: {} for m in labels}
    memory_accesses: Dict[float, int] = {}
    for point, by_label in split_by_point(points, payloads):
        dataset_gb = dict(point.meta)["dataset_gb"]
        for label, result in by_label.items():
            disk_accesses[label][dataset_gb] = result.disk_page_accesses
        memory_accesses[dataset_gb] = by_label[BASELINE_LABEL].total_accesses

    rows: List[Dict[str, object]] = []
    for label in labels:
        row: Dict[str, object] = {"method": label}
        for dataset_gb in datasets:
            row[f"{dataset_gb:g}GB"] = disk_accesses[label][dataset_gb]
        rows.append(row)
    ma_row: Dict[str, object] = {"method": "MA (memory accesses)"}
    for dataset_gb in datasets:
        ma_row[f"{dataset_gb:g}GB"] = memory_accesses[dataset_gb]
    rows.append(ma_row)

    return ExperimentResult(
        name="table3",
        title="Table III -- disk accesses per method and memory accesses",
        rows=rows,
        notes=(
            "Paper shape: disk accesses grow as FM memory falls below the "
            "data set; PD matches the large-memory miss stream; DS adds "
            "misses from disabled banks; memory accesses depend only on "
            "the workload."
        ),
    )
