"""Terminal charts: horizontal bars and sparklines for experiment output.

Benchmarks print the paper's *numbers*; these helpers add the paper's
*pictures* -- a bar per method (Fig. 7-style panels) and a sparkline per
time series (Fig. 9) -- without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError

#: Eight-level block characters for sparklines.
SPARKS = "▁▂▃▄▅▆▇█"
BAR = "█"


def bar_chart(
    values: Dict[str, float],
    width: int = 40,
    title: Optional[str] = None,
    reference: Optional[float] = None,
) -> str:
    """Horizontal bar chart, one labelled row per entry.

    ``reference`` draws a marker column at that value (e.g. 1.0 for
    always-on-normalised energies).
    """
    if not values:
        raise ReproError("nothing to chart")
    if width < 4:
        raise ReproError("chart too narrow")
    top = max(max(values.values()), reference or 0.0)
    if top <= 0:
        top = 1.0
    label_width = max(len(str(label)) for label in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    marker = None
    if reference is not None:
        marker = min(int(round(reference / top * width)), width - 1)
    for label, value in values.items():
        if value < 0:
            raise ReproError("bar charts need non-negative values")
        filled = min(int(round(value / top * width)), width)
        bar = BAR * filled + " " * (width - filled)
        if marker is not None and marker < len(bar):
            tail = bar[marker + 1 :] if marker + 1 <= width else ""
            bar = bar[:marker] + "|" + tail
            bar = bar[:width]
        lines.append(f"{str(label).ljust(label_width)}  {bar}  {value:g}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of a series."""
    data = list(values)
    if not data:
        raise ReproError("nothing to chart")
    low, high = min(data), max(data)
    if high == low:
        return SPARKS[3] * len(data)
    span = high - low
    out = []
    for value in data:
        index = int((value - low) / span * (len(SPARKS) - 1))
        out.append(SPARKS[index])
    return "".join(out)


def series_panel(
    series: Dict[str, Sequence[float]],
    title: Optional[str] = None,
) -> str:
    """Labelled sparklines with min/max annotations (Fig. 9-style)."""
    if not series:
        raise ReproError("nothing to chart")
    label_width = max(len(str(label)) for label in series)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, values in series.items():
        data = list(values)
        if not data:
            raise ReproError(f"series {label!r} is empty")
        lines.append(
            f"{str(label).ljust(label_width)}  {sparkline(data)}  "
            f"[{min(data):g} .. {max(data):g}]"
        )
    return "\n".join(lines)
