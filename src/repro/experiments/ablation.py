"""Ablation study: which part of the joint method earns its keep?

Not a paper artefact -- this regenerates the *argument* of the paper by
dismantling the method (DESIGN.md Section 6):

* ``JOINT``      -- the full TCAD method (both knobs + constraints),
* ``JOINT-NC``   -- the DATE-2005 original: both knobs, **no** performance
  constraints (Section IV-D warns it can thrash the disk or shrink memory
  pathologically),
* ``JOINT-MEM``  -- resize-only: memory adapts, the disk keeps the fixed
  2-competitive timeout,
* ``JOINT-TO``   -- timeout-only: memory pinned at the installed maximum,
  Pareto-tuned timeout (equivalently, the PT policy at full memory),
* ``ALWAYS-ON``  -- the normalisation baseline.

Expected shape: each single-knob variant leaves energy on the table
(JOINT-TO pays full memory power; JOINT-MEM cannot exploit idleness);
JOINT-NC matches or beats JOINT on energy but degrades the performance
metrics the constraints protect.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.sim.compare import compare_methods

VARIANTS: Sequence[str] = (
    "JOINT",
    "JOINT-NC",
    "JOINT-MEM",
    "JOINT-TO",
    "ALWAYS-ON",
)


def run(
    config: ExperimentConfig,
    datasets_gb: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """One row per (data set, variant)."""
    datasets = list(datasets_gb or (4.0, 16.0))
    machine = config.machine()
    rows: List[Dict[str, object]] = []
    for index, dataset_gb in enumerate(datasets):
        trace = config.make_trace(
            machine, dataset_gb=dataset_gb, seed_offset=600 + index
        )
        comparison = compare_methods(
            trace,
            machine,
            methods=list(VARIANTS),
            duration_s=config.duration_s,
            warmup_s=config.warmup_s,
        )
        normalized = comparison.normalized_by_label()
        for label in VARIANTS:
            result = comparison[label]
            rows.append(
                {
                    "dataset_gb": dataset_gb,
                    "variant": label,
                    "total_energy": round(normalized[label].total_energy, 4),
                    "disk_energy": round(normalized[label].disk_energy, 4),
                    "memory_energy": round(
                        normalized[label].memory_energy, 4
                    ),
                    "utilization": round(result.utilization, 4),
                    "long_latency_per_s": round(result.long_latency_per_s, 4),
                    "spin_downs": result.spin_down_cycles,
                }
            )
    return ExperimentResult(
        name="ablation",
        title="Ablation -- dismantling the joint method (energy vs ALWAYS-ON)",
        rows=rows,
        notes=(
            "Expected: JOINT <= each single-knob variant in total energy; "
            "JOINT-TO pays full memory power.  JOINT-NC either matches "
            "JOINT (benign workloads) or falls into the Section IV-D "
            "pathology -- shrinking memory into a disk-thrashing "
            "configuration with runaway utilisation and long-latency "
            "counts, and *worse* energy than the constrained method, "
            "which is the TCAD paper's argument for the constraints."
        ),
    )
