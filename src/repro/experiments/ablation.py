"""Ablation study: which part of the joint method earns its keep?

Not a paper artefact -- this regenerates the *argument* of the paper by
dismantling the method (DESIGN.md Section 6):

* ``JOINT``      -- the full TCAD method (both knobs + constraints),
* ``JOINT-NC``   -- the DATE-2005 original: both knobs, **no** performance
  constraints (Section IV-D warns it can thrash the disk or shrink memory
  pathologically),
* ``JOINT-MEM``  -- resize-only: memory adapts, the disk keeps the fixed
  2-competitive timeout,
* ``JOINT-TO``   -- timeout-only: memory pinned at the installed maximum,
  Pareto-tuned timeout (equivalently, the PT policy at full memory),
* ``ALWAYS-ON``  -- the normalisation baseline.

Expected shape: each single-knob variant leaves energy on the table
(JOINT-TO pays full memory power; JOINT-MEM cannot exploit idleness);
JOINT-NC matches or beats JOINT on energy but degrades the performance
metrics the constraints protect.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.campaign.plan import (
    CampaignPlan,
    GridPoint,
    grid_tasks,
    resolve_methods,
    run_plan,
    split_by_point,
)
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.sim.compare import BASELINE_LABEL

VARIANTS: Sequence[str] = (
    "JOINT",
    "JOINT-NC",
    "JOINT-MEM",
    "JOINT-TO",
    "ALWAYS-ON",
)


def plan(
    config: ExperimentConfig,
    datasets_gb: Optional[Sequence[float]] = None,
) -> CampaignPlan:
    """The ablation sweep as independent (data set, variant) tasks."""
    datasets = list(datasets_gb or (4.0, 16.0))
    machine = config.machine()
    methods = resolve_methods(list(VARIANTS))
    points = [
        GridPoint(
            machine=machine,
            workload=config.workload(
                machine, dataset_gb=dataset_gb, seed_offset=600 + index
            ),
            methods=methods,
            duration_s=config.duration_s,
            warmup_s=config.warmup_s,
            meta=(("dataset_gb", dataset_gb),),
        )
        for index, dataset_gb in enumerate(datasets)
    ]
    return CampaignPlan(
        tasks=grid_tasks(points), assemble=lambda p: _assemble(points, p)
    )


def run(
    config: ExperimentConfig,
    datasets_gb: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """One row per (data set, variant)."""
    return run_plan(plan(config, datasets_gb))


def _assemble(
    points: Sequence[GridPoint], payloads: Sequence[Mapping[str, object]]
) -> ExperimentResult:
    rows: List[Dict[str, object]] = []
    for point, by_label in split_by_point(points, payloads):
        baseline = by_label[BASELINE_LABEL]
        for label in VARIANTS:
            result = by_label[label]
            norm = result.normalized_to(baseline)
            rows.append(
                {
                    "dataset_gb": dict(point.meta)["dataset_gb"],
                    "variant": label,
                    "total_energy": round(norm.total_energy, 4),
                    "disk_energy": round(norm.disk_energy, 4),
                    "memory_energy": round(norm.memory_energy, 4),
                    "utilization": round(result.utilization, 4),
                    "long_latency_per_s": round(result.long_latency_per_s, 4),
                    "spin_downs": result.spin_down_cycles,
                }
            )
    return ExperimentResult(
        name="ablation",
        title="Ablation -- dismantling the joint method (energy vs ALWAYS-ON)",
        rows=rows,
        notes=(
            "Expected: JOINT <= each single-knob variant in total energy; "
            "JOINT-TO pays full memory power.  JOINT-NC either matches "
            "JOINT (benign workloads) or falls into the Section IV-D "
            "pathology -- shrinking memory into a disk-thrashing "
            "configuration with runaway utilisation and long-latency "
            "counts, and *worse* energy than the constrained method, "
            "which is the TCAD paper's argument for the constraints."
        ),
    )
