"""Hardware-sensitivity extension: the break-even trade-off, bent.

The paper's whole economy rests on two hardware constants: the disk's
savable static power (6.6 W) and the memory's per-MB static power
(0.656 mW/MB) -- their ratio is the *break-even memory size* (~10 GB)
above which DRAM can never pay for itself.  This experiment bends both
constants and watches the joint manager re-balance:

* much cheaper memory (or a hungrier disk) raises the break-even size,
  so the manager buys more cache and idles the disk;
* pricier memory lowers it, pinning the manager to the miss-ratio
  curve's knee.

A robustness result falls out on the way: within a ~2x band of either
constant the decision does not move at all -- the miss-ratio curve's
knee dominates, which is why the paper's method needs no precise power
calibration.  A final row runs the 2.5-in laptop-drive preset, whose
6-s break-even time and small powers change both knobs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence

from repro.campaign.plan import (
    CampaignPlan,
    GridPoint,
    grid_tasks,
    resolve_methods,
    run_plan,
    split_by_point,
)
from repro.config.machine import MachineConfig
from repro.config.presets import laptop_disk
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.sim.compare import BASELINE_LABEL
from repro.units import GB

#: (label, memory-power multiplier, disk-static-power multiplier).
DEFAULT_VARIANTS: Sequence = (
    ("paper", 1.0, 1.0),
    ("cheap-memory", 0.1, 1.0),
    ("pricey-memory", 10.0, 1.0),
    ("hungry-disk", 1.0, 4.0),
    ("laptop-disk", 1.0, None),  # None = swap in the 2.5-in preset
)


def _bend_machine(
    machine: MachineConfig, memory_factor: float, disk_factor: Optional[float]
) -> MachineConfig:
    """Scale the memory mode powers and/or swap the disk."""
    memory = machine.memory
    if memory_factor != 1.0:
        memory = dataclasses.replace(
            memory,
            mode_power_watts={
                mode: power * memory_factor
                for mode, power in memory.mode_power_watts.items()
            },
        )
    if disk_factor is None:
        disk = laptop_disk()
    elif disk_factor != 1.0:
        base = machine.disk
        powers = dict(base.mode_power_watts)
        # Raise the idle power so the savable static power scales while
        # the standby floor stays put.
        powers["idle"] = (
            powers["standby"] + base.static_power_watts * disk_factor
        )
        powers["active"] = powers["idle"] + base.dynamic_power_watts
        disk = dataclasses.replace(
            machine.disk,
            mode_power_watts=powers,
            transition_energy_joules=(
                base.transition_energy_joules * disk_factor
            ),
        )
    else:
        disk = machine.disk
    return MachineConfig(
        memory=memory, disk=disk, manager=machine.manager, scale=machine.scale
    )


def plan(
    config: ExperimentConfig,
    variants: Optional[Sequence] = None,
) -> CampaignPlan:
    """The sensitivity sweep as independent (hardware variant, method) tasks.

    Every variant replays the same light, sparse-popularity workload: the
    utilisation constraint stays slack and the miss-ratio curve declines
    gently instead of dropping off a knee, so the energy terms -- the
    ones the hardware constants bend -- genuinely decide the memory size.
    """
    base_machine = config.machine()
    methods = resolve_methods(["JOINT", "ALWAYS-ON"])
    workload = config.workload(
        base_machine, data_rate_mb=5.0, popularity=0.6, seed_offset=800
    )
    points = [
        GridPoint(
            machine=_bend_machine(base_machine, memory_factor, disk_factor),
            workload=workload,
            methods=methods,
            duration_s=config.duration_s,
            warmup_s=config.warmup_s,
            meta=(("variant", label),),
        )
        for label, memory_factor, disk_factor in (variants or DEFAULT_VARIANTS)
    ]
    return CampaignPlan(
        tasks=grid_tasks(points), assemble=lambda p: _assemble(points, p)
    )


def run(
    config: ExperimentConfig,
    variants: Optional[Sequence] = None,
) -> ExperimentResult:
    """One row per hardware variant (joint method, 16-GB workload)."""
    return run_plan(plan(config, variants))


def _assemble(
    points: Sequence[GridPoint], payloads: Sequence[Mapping[str, object]]
) -> ExperimentResult:
    rows: List[Dict[str, object]] = []
    for point, by_label in split_by_point(points, payloads):
        joint = by_label["JOINT"]
        norm = joint.normalized_to(by_label[BASELINE_LABEL])
        machine = point.machine
        chosen_gb = [b / GB for b in joint.decision_memory_bytes]
        rows.append(
            {
                "variant": dict(point.meta)["variant"],
                "break_even_mem_gb": round(
                    machine.break_even_memory_bytes / GB, 2
                ),
                "break_even_time_s": round(machine.disk.break_even_time_s, 2),
                "final_memory_gb": round(chosen_gb[-1], 2),
                "mean_memory_gb": round(
                    sum(chosen_gb) / len(chosen_gb), 2
                ),
                "total_energy": round(norm.total_energy, 4),
                "spin_downs": joint.spin_down_cycles,
            }
        )
    return ExperimentResult(
        name="hwsens",
        title=(
            "Hardware sensitivity -- the joint method under bent "
            "break-even constants (16-GB workload)"
        ),
        rows=rows,
        notes=(
            "Expected: 10x-cheaper memory (or a 4x-hungrier disk) buys "
            "more cache; 10x-pricier memory pins the manager to the "
            "miss-ratio knee; ~2x changes move nothing (knee-dominated "
            "robustness); the laptop drive banks its smaller powers."
        ),
    )
