"""Plain-text rendering of experiment tables and series."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError


def format_value(value: object, precision: int = 3) -> str:
    """Human-readable cell: floats trimmed, None dashed."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 10 ** (-precision):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        raise ReproError("cannot render an empty table")
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body: List[List[str]] = [
        [format_value(row.get(c), precision) for c in columns] for row in rows
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[object]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render named series against an x-axis (one row per x value)."""
    rows = []
    for i, x in enumerate(x_values):
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[i] if i < len(values) else None
        rows.append(row)
    return render_table(rows, title=title, precision=precision)
