"""Table IV: sensitivity of the joint method to the period length.

Paper setup: 16-GB data set at 100 MB/s; periods of 5, 10, 20 and 30
minutes.  The joint method's energy (normalised to always-on) and its
long-latency rate should vary only slightly, because the LRU history is
not reset at period boundaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.sim.compare import compare_methods

DEFAULT_PERIODS_MIN: Sequence[float] = (5.0, 10.0, 20.0, 30.0)


def run(
    config: ExperimentConfig,
    periods_min: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """One row per period length."""
    periods = list(periods_min or DEFAULT_PERIODS_MIN)
    rows: List[Dict[str, object]] = []
    for period_min in periods:
        period_s = period_min * 60.0
        machine = config.machine(period_s=period_s)
        # Keep the measured window comparable across period lengths: use
        # the configured total duration, rounded to whole periods.
        total = config.duration_s
        warm = max(round(config.warmup_s / period_s), 1) * period_s
        duration = max(round(total / period_s), 2) * period_s
        if warm >= duration:
            warm = duration - period_s
        trace = config.make_trace(machine, seed_offset=300, duration_s=duration)
        comparison = compare_methods(
            trace,
            machine,
            methods=["JOINT", "ALWAYS-ON"],
            duration_s=duration,
            warmup_s=warm,
        )
        joint = comparison["JOINT"]
        norm = joint.normalized_to(comparison.baseline)
        rows.append(
            {
                "period_min": period_min,
                "total_energy": round(norm.total_energy, 4),
                "disk_energy": round(norm.disk_energy, 4),
                "memory_energy": round(norm.memory_energy, 4),
                "long_latency_per_s": round(joint.long_latency_per_s, 4),
            }
        )
    return ExperimentResult(
        name="table4",
        title="Table IV -- joint method vs period length (energy vs ALWAYS-ON)",
        rows=rows,
        notes=(
            "Paper shape: nearly flat across period lengths (the LRU list "
            "is not reset every period)."
        ),
    )
