"""Table IV: sensitivity of the joint method to the period length.

Paper setup: 16-GB data set at 100 MB/s; periods of 5, 10, 20 and 30
minutes.  The joint method's energy (normalised to always-on) and its
long-latency rate should vary only slightly, because the LRU history is
not reset at period boundaries.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.campaign.plan import (
    CampaignPlan,
    GridPoint,
    grid_tasks,
    resolve_methods,
    run_plan,
    split_by_point,
)
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.sim.compare import BASELINE_LABEL

DEFAULT_PERIODS_MIN: Sequence[float] = (5.0, 10.0, 20.0, 30.0)


def plan(
    config: ExperimentConfig,
    periods_min: Optional[Sequence[float]] = None,
) -> CampaignPlan:
    """The Table IV sweep as independent (period, method) tasks."""
    periods = list(periods_min or DEFAULT_PERIODS_MIN)
    methods = resolve_methods(["JOINT", "ALWAYS-ON"])
    points: List[GridPoint] = []
    for period_min in periods:
        period_s = period_min * 60.0
        machine = config.machine(period_s=period_s)
        # Keep the measured window comparable across period lengths: use
        # the configured total duration, rounded to whole periods.
        total = config.duration_s
        warm = max(round(config.warmup_s / period_s), 1) * period_s
        duration = max(round(total / period_s), 2) * period_s
        if warm >= duration:
            warm = duration - period_s
        points.append(
            GridPoint(
                machine=machine,
                workload=config.workload(
                    machine, seed_offset=300, duration_s=duration
                ),
                methods=methods,
                duration_s=duration,
                warmup_s=warm,
                meta=(("period_min", period_min),),
            )
        )
    return CampaignPlan(
        tasks=grid_tasks(points), assemble=lambda p: _assemble(points, p)
    )


def run(
    config: ExperimentConfig,
    periods_min: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """One row per period length."""
    return run_plan(plan(config, periods_min))


def _assemble(
    points: Sequence[GridPoint], payloads: Sequence[Mapping[str, object]]
) -> ExperimentResult:
    rows: List[Dict[str, object]] = []
    for point, by_label in split_by_point(points, payloads):
        joint = by_label["JOINT"]
        norm = joint.normalized_to(by_label[BASELINE_LABEL])
        rows.append(
            {
                "period_min": dict(point.meta)["period_min"],
                "total_energy": round(norm.total_energy, 4),
                "disk_energy": round(norm.disk_energy, 4),
                "memory_energy": round(norm.memory_energy, 4),
                "long_latency_per_s": round(joint.long_latency_per_s, 4),
            }
        )
    return ExperimentResult(
        name="table4",
        title="Table IV -- joint method vs period length (energy vs ALWAYS-ON)",
        rows=rows,
        notes=(
            "Paper shape: nearly flat across period lengths (the LRU list "
            "is not reset every period)."
        ),
    )
