"""Idle-interval distribution extension: does the Pareto assumption hold?

The paper justifies its model by citing heavy-tailed idle-time studies
([19], [20]) but never shows its own intervals.  This experiment does:
for the paper's default workload at several memory sizes, it extracts
the disk idle intervals (exactly as the manager observes them), prints
their histogram with the fitted Pareto's prediction alongside, and
scores the fit with the KS statistic and the decision-relevant eq.-4
power error (see ``repro.analysis.pareto_check``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.pareto_check import check_pareto_fit, idle_intervals_of_trace
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.units import GB

DEFAULT_MEMORIES_GB: Sequence[float] = (2.0, 4.0, 8.0)
#: Histogram bin edges, seconds (idle intervals past the 0.1-s window).
BIN_EDGES = (0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, float("inf"))


def run(
    config: ExperimentConfig,
    memories_gb: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """One row per (memory size, histogram bin) plus per-size fit scores."""
    machine = config.machine()
    trace = config.make_trace(machine, data_rate_mb=20.0, seed_offset=900)
    rows: List[Dict[str, object]] = []
    notes = [
        "Heavy tails in time: the >2s bins hold most of the idle *time*",
        "even though short intervals dominate by count.  The paper's",
        "method-of-moments fit (beta = shortest interval = the 0.1-s",
        "aggregation window) over-weights the tail on these",
        "Poisson-driven synthetic traces -- the eq.-4 power error makes",
        "that visible -- yet the end-to-end method stays sound because",
        "the installed timeout (~alpha*t_be ~ 12 s) lands above the bulk",
        "of the intervals either way; see the fig7/ablation benchmarks",
        "and tests/analysis/test_pareto_check.py for the documented",
        "limitation.",
    ]
    for memory_gb in memories_gb or DEFAULT_MEMORIES_GB:
        pages = int(memory_gb * GB) // machine.page_bytes
        idle = idle_intervals_of_trace(
            trace,
            pages,
            window_s=machine.manager.aggregation_window_s,
        )
        lengths = idle.lengths
        counts, _ = np.histogram(lengths, bins=np.asarray(BIN_EDGES))
        for low, high, count in zip(BIN_EDGES[:-1], BIN_EDGES[1:], counts):
            label = f"{low:g}-{high:g}s" if np.isfinite(high) else f">{low:g}s"
            rows.append(
                {
                    "memory_gb": memory_gb,
                    "bin": label,
                    "intervals": int(count),
                    "share_of_idle_time": round(
                        float(
                            lengths[
                                (lengths >= low)
                                & (lengths < (high if np.isfinite(high) else 1e18))
                            ].sum()
                        )
                        / max(float(lengths.sum()), 1e-12),
                        4,
                    ),
                }
            )
        if idle.count >= 5:
            report = check_pareto_fit(
                lengths, break_even_s=machine.disk.break_even_time_s
            )
            notes.append(
                f"  {memory_gb:g} GB: n_i={idle.count}, "
                f"alpha={report.fit.alpha:.2f}, beta={report.fit.beta:.2f}s, "
                f"eq.5 timeout={report.timeout_s:.1f}s, "
                f"KS={report.ks_statistic:.3f}, "
                f"power error={report.power_error:.3f} "
                f"({'usable' if report.usable else 'poor'})"
            )
    return ExperimentResult(
        name="idlefit",
        title=(
            "Idle-interval distribution and Pareto fit quality "
            "(16-GB workload, 20 MB/s)"
        ),
        rows=rows,
        notes="\n".join(notes),
    )
