"""Fig. 5: Pareto distributions and the timeout analysis around them.

The paper's Fig. 5 plots the cumulative probability of two Pareto
distributions (larger alpha/smaller beta vs smaller alpha/larger beta) to
motivate timeout selection.  This experiment regenerates those curves and
additionally validates the estimation pipeline: samples drawn from each
distribution are re-fitted with the paper's method-of-moments estimator
(and the MLE/Hill cross-checks), and the optimal timeout ``alpha * t_be``
is compared against a numerical minimisation of the expected-power
expression (eq. 4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config.disk_spec import DiskSpec
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.stats.pareto import ParetoDistribution, fit_hill, fit_mle, fit_moments
from repro.stats.timeout_math import expected_power, optimal_timeout

#: The two illustrative distributions: (alpha, beta) pairs in the spirit
#: of Fig. 5 (alpha1 > alpha2, beta1 < beta2).
DEFAULT_DISTRIBUTIONS: Sequence[Tuple[float, float]] = ((3.0, 1.0), (1.5, 4.0))
SAMPLES = 20_000


def run(
    config: ExperimentConfig,
    distributions: Optional[Sequence[Tuple[float, float]]] = None,
) -> ExperimentResult:
    """One row per distribution: fits and timeout validation."""
    del config  # the experiment is workload-free
    spec = DiskSpec()
    rows: List[Dict[str, object]] = []
    rng = np.random.default_rng(12345)
    for alpha, beta in distributions or DEFAULT_DISTRIBUTIONS:
        dist = ParetoDistribution(alpha=alpha, beta=beta)
        samples = dist.sample(SAMPLES, rng)
        mom = fit_moments(samples)
        mle = fit_mle(samples)
        hill = fit_hill(samples)
        analytic = optimal_timeout(dist, spec.break_even_time_s)
        numeric = _numeric_optimal_timeout(dist, spec)
        rows.append(
            {
                "alpha": alpha,
                "beta": beta,
                "mean": round(dist.mean, 3),
                "cdf@2beta": round(dist.cdf(2 * beta), 4),
                "cdf@10beta": round(dist.cdf(10 * beta), 4),
                "alpha_mom": round(mom.alpha, 3),
                "alpha_mle": round(mle.alpha, 3),
                "alpha_hill": round(hill.alpha, 3),
                "t_opt_eq5_s": round(analytic, 2),
                "t_opt_numeric_s": round(numeric, 2),
            }
        )
    return ExperimentResult(
        name="fig5",
        title="Fig. 5 -- Pareto CDFs, parameter recovery and optimal timeouts",
        rows=rows,
        notes=(
            "eq. (5) check: the analytic optimum alpha*t_be should match "
            "the numerical minimiser of eq. (4); the method-of-moments "
            "alpha should recover the true alpha."
        ),
    )


def _numeric_optimal_timeout(dist: ParetoDistribution, spec: DiskSpec) -> float:
    """Grid + refinement minimiser of the expected-power expression."""
    t_be = spec.break_even_time_s
    period = 600.0
    n_i = 50.0

    def power(timeout: float) -> float:
        return expected_power(
            dist,
            num_intervals=n_i,
            timeout_s=timeout,
            period_s=period,
            static_power_w=spec.static_power_watts,
            break_even_s=t_be,
        )

    grid = np.linspace(max(dist.beta, 0.1), 20 * t_be, 4000)
    values = [power(t) for t in grid]
    best = grid[int(np.argmin(values))]
    # Local refinement around the grid minimum.
    lo, hi = max(best - 1.0, dist.beta), best + 1.0
    fine = np.linspace(lo, hi, 2000)
    fine_values = [power(t) for t in fine]
    return float(fine[int(np.argmin(fine_values))])
