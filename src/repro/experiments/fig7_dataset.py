"""Fig. 7: energy and performance versus data-set size.

Sweeps the data set (paper: 4-64 GB at 100 MB/s, popularity 0.1) over the
full method comparison and reports the six panels:

(a) total energy, (b) disk energy, (c) memory energy -- normalised to the
always-on method; (d) mean request latency; (e) disk utilisation;
(f) long-latency requests per second.

The paper omits 2TFM-8GB/ADFM-8GB bars at 64 GB because their disk demand
exceeds the drive's bandwidth; we keep the rows and let the >100 %
utilisation flag them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.policies.registry import standard_methods
from repro.sim.compare import compare_methods

DEFAULT_DATASETS_GB: Sequence[float] = (4.0, 16.0, 32.0, 64.0)


def run(
    config: ExperimentConfig,
    datasets_gb: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """Run the Fig. 7 sweep; one row per (data set, method)."""
    datasets = list(datasets_gb or DEFAULT_DATASETS_GB)
    machine = config.machine()
    methods = standard_methods(fm_sizes_gb=config.fm_sizes_gb)
    rows: List[Dict[str, object]] = []
    for index, dataset_gb in enumerate(datasets):
        trace = config.make_trace(machine, dataset_gb=dataset_gb, seed_offset=index)
        comparison = compare_methods(
            trace,
            machine,
            methods=methods,
            duration_s=config.duration_s,
            warmup_s=config.warmup_s,
        )
        normalized = comparison.normalized_by_label()
        for label, result in comparison.results.items():
            norm = normalized[label]
            rows.append(
                {
                    "dataset_gb": dataset_gb,
                    "method": label,
                    "total_energy": round(norm.total_energy, 4),
                    "disk_energy": round(norm.disk_energy, 4),
                    "memory_energy": round(norm.memory_energy, 4),
                    "latency_ms": round(result.mean_latency_s * 1e3, 3),
                    "utilization": round(result.utilization, 4),
                    "long_latency_per_s": round(result.long_latency_per_s, 4),
                    "overloaded": result.utilization > 1.0,
                }
            )
    return ExperimentResult(
        name="fig7",
        title=(
            "Fig. 7 -- energy (normalised to ALWAYS-ON) and performance "
            "vs data-set size"
        ),
        rows=rows,
        notes=(
            "Paper shape: JOINT lowest total energy at small data sets; "
            "FM methods with memory < data set blow up in latency and "
            "long-latency counts; PD lowest disk energy but >30% memory "
            "energy."
        ),
    )
