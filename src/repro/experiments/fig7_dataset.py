"""Fig. 7: energy and performance versus data-set size.

Sweeps the data set (paper: 4-64 GB at 100 MB/s, popularity 0.1) over the
full method comparison and reports the six panels:

(a) total energy, (b) disk energy, (c) memory energy -- normalised to the
always-on method; (d) mean request latency; (e) disk utilisation;
(f) long-latency requests per second.

The paper omits 2TFM-8GB/ADFM-8GB bars at 64 GB because their disk demand
exceeds the drive's bandwidth; we keep the rows and let the >100 %
utilisation flag them.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.campaign.plan import CampaignPlan, GridPoint, grid_tasks, split_by_point
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.policies.registry import standard_methods
from repro.sim.compare import BASELINE_LABEL

DEFAULT_DATASETS_GB: Sequence[float] = (4.0, 16.0, 32.0, 64.0)


def plan(
    config: ExperimentConfig,
    datasets_gb: Optional[Sequence[float]] = None,
) -> CampaignPlan:
    """The Fig. 7 sweep as independent (data set, method) tasks."""
    datasets = list(datasets_gb or DEFAULT_DATASETS_GB)
    machine = config.machine()
    methods = tuple(standard_methods(fm_sizes_gb=config.fm_sizes_gb))
    points = [
        GridPoint(
            machine=machine,
            workload=config.workload(
                machine, dataset_gb=dataset_gb, seed_offset=index
            ),
            methods=methods,
            duration_s=config.duration_s,
            warmup_s=config.warmup_s,
            meta=(("dataset_gb", dataset_gb),),
        )
        for index, dataset_gb in enumerate(datasets)
    ]
    return CampaignPlan(tasks=grid_tasks(points), assemble=lambda p: _assemble(points, p))


def run(
    config: ExperimentConfig,
    datasets_gb: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """Run the Fig. 7 sweep; one row per (data set, method)."""
    from repro.campaign.plan import run_plan

    return run_plan(plan(config, datasets_gb))


def _assemble(
    points: Sequence[GridPoint], payloads: Sequence[Mapping[str, object]]
) -> ExperimentResult:
    rows: List[Dict[str, object]] = []
    for point, by_label in split_by_point(points, payloads):
        baseline = by_label[BASELINE_LABEL]
        for label, result in by_label.items():
            norm = result.normalized_to(baseline)
            rows.append(
                {
                    "dataset_gb": dict(point.meta)["dataset_gb"],
                    "method": label,
                    "total_energy": round(norm.total_energy, 4),
                    "disk_energy": round(norm.disk_energy, 4),
                    "memory_energy": round(norm.memory_energy, 4),
                    "latency_ms": round(result.mean_latency_s * 1e3, 3),
                    "utilization": round(result.utilization, 4),
                    "long_latency_per_s": round(result.long_latency_per_s, 4),
                    "overloaded": result.utilization > 1.0,
                }
            )
    return ExperimentResult(
        name="fig7",
        title=(
            "Fig. 7 -- energy (normalised to ALWAYS-ON) and performance "
            "vs data-set size"
        ),
        rows=rows,
        notes=(
            "Paper shape: JOINT lowest total energy at small data sets; "
            "FM methods with memory < data set blow up in latency and "
            "long-latency counts; PD lowest disk energy but >30% memory "
            "energy."
        ),
    )
