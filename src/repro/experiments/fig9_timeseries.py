"""Fig. 9: disk requests and idleness across time at fixed memory sizes.

Paper setup: 32-GB data set, constant memory of 8 GB and 16 GB, 2T disk
policy.  Reports, per period, the number of disk requests and the average
idle length, plus the prediction error of using each period's value for
the next -- validating the joint method's last-period predictor
(Section V-C).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.sim.runner import run_method

DEFAULT_MEMORIES_GB: Sequence[int] = (8, 16)
DATASET_GB: float = 32.0


def run(
    config: ExperimentConfig,
    memories_gb: Optional[Sequence[int]] = None,
    num_periods: Optional[int] = None,
) -> ExperimentResult:
    """One row per (memory size, period)."""
    memories = list(memories_gb or DEFAULT_MEMORIES_GB)
    machine = config.machine()
    periods = num_periods or (config.warmup_periods + config.measure_periods)
    duration = periods * machine.manager.period_s
    trace = config.make_trace(
        machine, dataset_gb=DATASET_GB, seed_offset=500, duration_s=duration
    )

    rows: List[Dict[str, object]] = []
    summary: Dict[int, Dict[str, float]] = {}
    for memory_gb in memories:
        result = run_method(
            f"2TFM-{memory_gb}GB",
            trace,
            machine,
            duration_s=duration,
            warmup_s=config.warmup_s,
        )
        requests = [p.disk_page_accesses for p in result.periods]
        idleness = [p.mean_idle_s for p in result.periods]
        for p in result.periods:
            rows.append(
                {
                    "memory_gb": memory_gb,
                    "period": p.index,
                    "disk_requests": p.disk_page_accesses,
                    "mean_idle_s": round(p.mean_idle_s, 4),
                }
            )
        summary[memory_gb] = {
            "max_request_variation": _max_variation(requests),
            "max_idle_variation": _max_variation(idleness),
            "avg_request_variation": _avg_variation(requests),
            "avg_idle_variation": _avg_variation(idleness),
        }

    notes_lines = [
        "Paper shape: variation larger at 8 GB than 16 GB; average "
        "period-to-period variation small (the last-period prediction "
        "is sound).",
    ]
    for memory_gb, stats in summary.items():
        notes_lines.append(
            f"  {memory_gb} GB: max request variation "
            f"{stats['max_request_variation']:.1%}, avg "
            f"{stats['avg_request_variation']:.1%}; max idle variation "
            f"{stats['max_idle_variation']:.1%}, avg "
            f"{stats['avg_idle_variation']:.1%}"
        )
    return ExperimentResult(
        name="fig9",
        title="Fig. 9 -- disk requests and mean idleness per period",
        rows=rows,
        notes="\n".join(notes_lines),
    )


def _variations(values: Sequence[float]) -> np.ndarray:
    data = np.asarray(values, dtype=float)
    if data.size < 2:
        return np.zeros(0)
    diffs = np.abs(np.diff(data))
    bases = np.maximum(data[1:], 1e-12)
    return diffs / bases


def _max_variation(values: Sequence[float]) -> float:
    v = _variations(values)
    return float(v.max()) if v.size else 0.0


def _avg_variation(values: Sequence[float]) -> float:
    v = _variations(values)
    return float(v.mean()) if v.size else 0.0
