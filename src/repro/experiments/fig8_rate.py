"""Fig. 8(a)/(b): energy and long-latency requests versus data rate.

Paper setup: 16-GB data set, rates 5-200 MB/s, popularity 0.1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.policies.registry import standard_methods
from repro.sim.compare import compare_methods

DEFAULT_RATES_MB: Sequence[float] = (5.0, 50.0, 100.0, 150.0, 200.0)


def run(
    config: ExperimentConfig,
    rates_mb: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """One row per (data rate, method)."""
    rates = list(rates_mb or DEFAULT_RATES_MB)
    machine = config.machine()
    methods = standard_methods(fm_sizes_gb=config.fm_sizes_gb)
    rows: List[Dict[str, object]] = []
    for index, rate_mb in enumerate(rates):
        trace = config.make_trace(
            machine, data_rate_mb=rate_mb, seed_offset=100 + index
        )
        comparison = compare_methods(
            trace,
            machine,
            methods=methods,
            duration_s=config.duration_s,
            warmup_s=config.warmup_s,
        )
        normalized = comparison.normalized_by_label()
        for label, result in comparison.results.items():
            rows.append(
                {
                    "rate_mb_s": rate_mb,
                    "method": label,
                    "total_energy": round(normalized[label].total_energy, 4),
                    "long_latency_per_s": round(result.long_latency_per_s, 4),
                    "utilization": round(result.utilization, 4),
                }
            )
    return ExperimentResult(
        name="fig8rate",
        title=(
            "Fig. 8(a,b) -- normalised energy and long-latency requests "
            "vs data rate (16-GB data set)"
        ),
        rows=rows,
        notes=(
            "Paper shape: JOINT at or near the minimum across rates; "
            "methods with memory >= data set flat in energy; small-memory "
            "FM methods degrade sharply at high rates."
        ),
    )
