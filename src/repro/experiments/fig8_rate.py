"""Fig. 8(a)/(b): energy and long-latency requests versus data rate.

Paper setup: 16-GB data set, rates 5-200 MB/s, popularity 0.1.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.campaign.plan import (
    CampaignPlan,
    GridPoint,
    grid_tasks,
    run_plan,
    split_by_point,
)
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.policies.registry import standard_methods
from repro.sim.compare import BASELINE_LABEL

DEFAULT_RATES_MB: Sequence[float] = (5.0, 50.0, 100.0, 150.0, 200.0)


def plan(
    config: ExperimentConfig,
    rates_mb: Optional[Sequence[float]] = None,
) -> CampaignPlan:
    """The Fig. 8(a,b) sweep as independent (rate, method) tasks."""
    rates = list(rates_mb or DEFAULT_RATES_MB)
    machine = config.machine()
    methods = tuple(standard_methods(fm_sizes_gb=config.fm_sizes_gb))
    points = [
        GridPoint(
            machine=machine,
            workload=config.workload(
                machine, data_rate_mb=rate_mb, seed_offset=100 + index
            ),
            methods=methods,
            duration_s=config.duration_s,
            warmup_s=config.warmup_s,
            meta=(("rate_mb_s", rate_mb),),
        )
        for index, rate_mb in enumerate(rates)
    ]
    return CampaignPlan(
        tasks=grid_tasks(points), assemble=lambda p: _assemble(points, p)
    )


def run(
    config: ExperimentConfig,
    rates_mb: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """One row per (data rate, method)."""
    return run_plan(plan(config, rates_mb))


def _assemble(
    points: Sequence[GridPoint], payloads: Sequence[Mapping[str, object]]
) -> ExperimentResult:
    rows: List[Dict[str, object]] = []
    for point, by_label in split_by_point(points, payloads):
        baseline = by_label[BASELINE_LABEL]
        for label, result in by_label.items():
            norm = result.normalized_to(baseline)
            rows.append(
                {
                    "rate_mb_s": dict(point.meta)["rate_mb_s"],
                    "method": label,
                    "total_energy": round(norm.total_energy, 4),
                    "long_latency_per_s": round(result.long_latency_per_s, 4),
                    "utilization": round(result.utilization, 4),
                }
            )
    return ExperimentResult(
        name="fig8rate",
        title=(
            "Fig. 8(a,b) -- normalised energy and long-latency requests "
            "vs data rate (16-GB data set)"
        ),
        rows=rows,
        notes=(
            "Paper shape: JOINT at or near the minimum across rates; "
            "methods with memory >= data set flat in energy; small-memory "
            "FM methods degrade sharply at high rates."
        ),
    )
