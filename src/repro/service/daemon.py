"""The ``repro serve`` daemon: tenant streams over a local socket.

Line-delimited JSON over TCP on 127.0.0.1 (one request object per line,
one response object per line), served by a thread per connection so N
tenants stream concurrently against one shared
:class:`~repro.service.sessions.SessionRegistry`.

Operations (``{"op": ..., ...}`` -> ``{"ok": true, ...}`` or
``{"ok": false, "error": ...}``):

``open_session``
    ``method`` (required), optional ``scale`` (granularity factor
    applied to the paper machine; default 1024), ``prefill`` (page
    list), ``warmup_s``, ``expect_writes``, ``session_id``.
    Returns ``session_id``.
``feed``
    ``session``, ``times``, ``pages``, optional ``writes``.  Returns
    ``decisions`` -- the period decisions this batch unlocked
    (``evaluations`` omitted from the wire format).
``decide`` (alias ``advance``)
    ``session``, ``now_s``.  Advances the stream's watermark so period
    boundaries in an idle stream fire; returns ``decisions``.
``close``
    ``session``, optional ``duration_s``.  Returns ``result``, a flat
    summary of the final :class:`~repro.sim.results.SimResult`.
``stats``
    Optional ``session``.  Per-session snapshot, or the registry-wide
    rollup (each live session serialized).
``ping`` / ``shutdown``
    Liveness check / graceful stop.

Errors never kill the daemon: they come back as ``ok: false`` on the
offending connection.  See docs/SERVICE.md for the full protocol.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import socketserver
import threading
from typing import Dict, List, Optional

from repro.config.machine import MachineConfig, paper_machine
from repro.core.joint import PeriodDecision
from repro.errors import SimulationError
from repro.service.sessions import SessionRegistry, SessionStats
from repro.sim.results import SimResult

_MAX_LINE_BYTES = 64 << 20  # refuse absurd requests instead of dying on OOM


def decision_to_dict(decision: PeriodDecision) -> Dict[str, object]:
    """Wire format of one period decision (candidate evaluations omitted)."""
    return {
        "period_index": decision.period_index,
        "start_s": decision.start_s,
        "end_s": decision.end_s,
        "memory_bytes": decision.memory_bytes,
        "timeout_s": decision.timeout_s,
        "observed_accesses": decision.observed_accesses,
        "predicted_disk_accesses": decision.predicted_disk_accesses,
    }


def result_to_dict(result: SimResult) -> Dict[str, object]:
    """Wire format of a final run result (flat scalars only)."""
    return {
        "label": result.label,
        "duration_s": result.duration_s,
        "memory_energy_j": result.memory_energy_j,
        "disk_energy_j": result.disk_energy_j,
        "total_energy_j": result.total_energy_j,
        "total_accesses": result.total_accesses,
        "disk_page_accesses": result.disk_page_accesses,
        "disk_requests": result.disk_requests,
        "disk_write_pages": result.disk_write_pages,
        "mean_latency_s": result.mean_latency_s,
        "long_latency": result.long_latency,
        "wake_long_latency": result.wake_long_latency,
        "spin_down_cycles": result.spin_down_cycles,
        "utilization": result.utilization,
        "periods": len(result.periods),
        "decisions": [decision_to_dict(d) for d in result.decisions],
        "replay_mode": result.replay_mode,
    }


def _stats_to_dict(stats: SessionStats) -> Dict[str, object]:
    return dataclasses.asdict(stats)


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        daemon: "ServiceDaemon" = self.server.daemon  # type: ignore[attr-defined]
        while True:
            try:
                line = self.rfile.readline(_MAX_LINE_BYTES)
            except (ConnectionError, OSError):
                return
            if not line:
                return
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
                response = daemon.dispatch(request)
            except SimulationError as exc:
                response = {"ok": False, "error": str(exc)}
            except (ValueError, KeyError, TypeError) as exc:
                response = {"ok": False, "error": f"bad request: {exc}"}
            try:
                self.wfile.write(
                    json.dumps(response, separators=(",", ":")).encode()
                    + b"\n"
                )
                self.wfile.flush()
            except (ConnectionError, OSError):
                return
            if request.get("op") == "shutdown":
                return


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ServiceDaemon:
    """A running ``repro serve`` instance.

    >>> daemon = ServiceDaemon()
    >>> daemon.start()          # binds 127.0.0.1 on an ephemeral port
    >>> daemon.port             # doctest: +SKIP
    >>> daemon.stop()

    ``serve_forever`` blocks instead (the CLI path); ``stop`` (or a
    client ``shutdown`` request) ends it from any thread.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        registry: Optional[SessionRegistry] = None,
        idle_timeout_s: Optional[float] = None,
    ) -> None:
        self.registry = registry or SessionRegistry(
            idle_timeout_s=idle_timeout_s
        )
        self._server = _Server((host, port), _Handler, bind_and_activate=True)
        self._server.daemon = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._machines: Dict[int, MachineConfig] = {}
        self._stopped = threading.Event()

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def start(self) -> None:
        """Serve in a background thread (tests, embedded use)."""
        if self._thread is not None:
            raise SimulationError("daemon already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until stopped (the CLI path)."""
        self._server.serve_forever(poll_interval=0.05)

    def stop(self) -> None:
        if self._stopped.is_set():
            return
        self._stopped.set()
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ServiceDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # --- request dispatch -------------------------------------------------

    def dispatch(self, request: Dict[str, object]) -> Dict[str, object]:
        op = request.get("op")
        if not isinstance(op, str):
            raise SimulationError("request needs a string 'op'")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise SimulationError(f"unknown op {op!r}")
        return handler(request)

    def _machine(self, scale: int) -> MachineConfig:
        machine = self._machines.get(scale)
        if machine is None:
            machine = paper_machine().scaled(scale) if scale != 1 else paper_machine()
            self._machines[scale] = machine
        return machine

    def _op_ping(self, request: Dict[str, object]) -> Dict[str, object]:
        return {"ok": True, "pong": True}

    def _op_shutdown(self, request: Dict[str, object]) -> Dict[str, object]:
        # Shut down from a helper thread: shutdown() deadlocks when
        # called from the serve_forever thread itself.
        threading.Thread(target=self.stop, daemon=True).start()
        return {"ok": True, "stopping": True}

    def _op_open_session(
        self, request: Dict[str, object]
    ) -> Dict[str, object]:
        method = request.get("method")
        if not isinstance(method, str):
            raise SimulationError("open_session needs a 'method' string")
        scale = request.get("scale")
        machine = (
            self.registry.default_machine
            if scale is None
            else self._machine(int(scale))
        )
        prefill = request.get("prefill") or []
        session_id = self.registry.open_session(
            method,
            machine=machine,
            prefill=[int(p) for p in prefill],
            warmup_s=float(request.get("warmup_s", 0.0)),
            expect_writes=bool(request.get("expect_writes", False)),
            session_id=request.get("session_id"),
        )
        return {"ok": True, "session_id": session_id}

    def _op_feed(self, request: Dict[str, object]) -> Dict[str, object]:
        session = self._session_id(request)
        decisions = self.registry.feed(
            session,
            request.get("times", []),
            request.get("pages", []),
            request.get("writes"),
        )
        return {"ok": True, "decisions": self._decisions(decisions)}

    def _op_decide(self, request: Dict[str, object]) -> Dict[str, object]:
        session = self._session_id(request)
        decisions = self.registry.advance(
            session, float(request["now_s"])
        )
        return {"ok": True, "decisions": self._decisions(decisions)}

    _op_advance = _op_decide

    def _op_close(self, request: Dict[str, object]) -> Dict[str, object]:
        session = self._session_id(request)
        duration = request.get("duration_s")
        result = self.registry.close(
            session, None if duration is None else float(duration)
        )
        return {"ok": True, "result": result_to_dict(result)}

    def _op_stats(self, request: Dict[str, object]) -> Dict[str, object]:
        session = request.get("session")
        if session is not None:
            stats = self.registry.session_stats(str(session))
            return {"ok": True, "stats": _stats_to_dict(stats)}
        self.registry.evict_idle()
        rollup = self.registry.stats()
        rollup["sessions"] = {
            sid: _stats_to_dict(s)
            for sid, s in rollup["sessions"].items()  # type: ignore[union-attr]
        }
        return {"ok": True, "stats": rollup}

    @staticmethod
    def _session_id(request: Dict[str, object]) -> str:
        session = request.get("session")
        if not isinstance(session, str):
            raise SimulationError("request needs a 'session' id")
        return session

    @staticmethod
    def _decisions(decisions: List[PeriodDecision]) -> List[Dict[str, object]]:
        return [decision_to_dict(d) for d in decisions]


def connect_address(host: str, port: int, timeout_s: float = 10.0) -> socket.socket:
    """TCP-connect helper shared by the client and the smoke scripts."""
    return socket.create_connection((host, port), timeout=timeout_s)
