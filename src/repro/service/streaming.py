"""The streaming power-manager core: offline replay, fed incrementally.

A :class:`StreamingManager` drives the existing simulation machinery --
the Mattson :class:`~repro.cache.stack_distance.StackDistanceTracker`,
:meth:`~repro.cache.predictor.ResizePredictor.record_array` and the
:class:`~repro.core.joint.JointPowerManager` -- from *incremental access
batches* instead of a complete trace.  ``feed(times, pages)`` buffers
the batch, replays every epoch the new data completes through the PR-4
epoch-segmented kernels, and returns the period decisions that firing
those boundaries produced.  ``close()`` finishes the run exactly the way
:meth:`SimulationEngine.run` does and returns a ``SimResult``.

Parity contract (enforced by ``CHECKS["stream"]`` and
``tests/service/``): for any batch split of an access sequence,
``close()`` is **bit-identical** -- every energy figure, every per-period
counter, every ``PeriodDecision`` including candidate evaluations -- to
an offline ``engine.run`` of the same sequence with the same duration.
The streaming replay therefore never reorders or re-times a single
engine call; it only defers work until the incoming stream has proven
the epoch complete:

* A period boundary ``B`` fires as soon as a buffered access at
  ``t >= B`` with a *later* access behind it guarantees the epoch is
  closed (the offline loops fire ``B`` when they reach that access).
  An access at exactly the stream's high-water mark is held back: a
  default-duration close could still drop it (the offline loop's
  ``now >= duration`` cutoff), which would turn ``B`` into a trailing
  boundary with a different event order.
* Idle streams (``advance(now)``) fire boundaries past the last access
  only while no read-ahead cluster is in flight.  The offline close
  counts an unresolved cluster's request *before* trailing boundaries
  but *after* interior ones, and which case applies depends on accesses
  that have not arrived yet -- so those decisions defer to the next
  ``feed`` or to ``close`` rather than risk a divergence.
* The final cluster flush at ``close`` is attributed to the metrics
  period that was current after the last processed access -- exactly
  where the offline close's ``on_request`` lands -- even when idle
  boundaries were already fired past it.

Replay modes mirror :func:`repro.sim.kernels.select_mode`:
``stream-epoch`` (joint manager on the nap memory model),
``stream-missrun`` (fixed capacity, profiled-replay memory, a
request-blind disk policy -- misses batch through
:meth:`SimDisk.submit_run` exactly as offline ``"missrun"`` runs do),
``stream-vectorized`` (fixed capacity, profiled-replay memory, a
request-aware policy), ``stream-writes`` (fixed capacity with
write-back -- hit runs through
:meth:`MemorySystem.consume_hit_run_rw`, flush sweeps through the
scalar drain), ``stream-disable`` (the 2TDS model's profile-free
pure-hit-prefix replay) and ``stream-scalar`` (joint write-back
streams or the ``REPRO_KERNELS=0`` kill switch).  Oracle-disk methods
need future knowledge and are rejected.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.cache.profile import kernels_enabled
from repro.cache.stack_distance import COLD, StackDistanceTracker
from repro.config.machine import MachineConfig
from repro.core.joint import JointPowerManager, PeriodDecision
from repro.errors import SimulationError
from repro.memory.system import (
    DisableMemorySystem,
    NapMemorySystem,
    supports_profiled_replay,
)
from repro.policies.registry import MethodSpec, parse_method
from repro.sim import kernels
from repro.sim.engine import SimulationEngine, _ReplayState
from repro.sim.metrics import MetricsCollector
from repro.sim.results import SimResult

#: ``SimResult.replay_mode`` values for streaming runs.
STREAM_SCALAR = "stream-scalar"
STREAM_VECTORIZED = "stream-vectorized"
STREAM_MISSRUN = "stream-missrun"
STREAM_EPOCH = "stream-epoch"
STREAM_WRITES = "stream-writes"
STREAM_DISABLE = "stream-disable"

_INITIAL_BUFFER = 1024

#: Which side of a period boundary an exactly-tied access belongs to.
#: ``"left"`` matches the scalar loop (events drain before the access is
#: recorded, so a tie goes to the *next* epoch).  Module-level so the
#: injected-bug tests can flip it and prove ``CHECKS["stream"]`` catches
#: the off-by-one.
_BOUNDARY_SIDE = "left"


class StreamingManager:
    """One tenant's online power-management stream.

    Parameters
    ----------
    method:
        A paper-style method name (``JOINT``, ``JOINT-NC``, ``2TNAP``,
        ``2TFM-8GB``, ...) or a :class:`MethodSpec`.  Oracle-disk
        methods (``OR*``) are rejected: they need the future.
    machine:
        The machine configuration this tenant runs on.
    prefill:
        Pages assumed already cached when the stream starts (the warm
        start).  For offline parity with ``run_method(warm_start=True)``
        pass :func:`repro.sim.prefill.warm_start_pages` of the full
        sequence; an online deployment passes whatever its bootstrap
        knows.
    warmup_s:
        Cold-start window excluded from the reported metrics; must be a
        whole number of periods, exactly as in ``engine.run``.
    expect_writes:
        Declare up front that the stream will carry writes.  Write-back
        flushing interleaves with the access stream, so write streams
        replay through the scalar loop.  Feeding a write without this
        flag is an error (the fast paths have already classified
        earlier accesses under read-only rules).
    max_buffered:
        Backpressure cap on the pending-access buffer (accesses fed but
        not yet proven replayable).  ``feed`` raises a clear
        ``SimulationError`` when a batch would push the buffer past the
        cap; the caller should ``advance`` the watermark (or slow the
        producer) and retry.  ``None`` (the default) means unbounded.
    """

    def __init__(
        self,
        method: Union[str, MethodSpec],
        machine: MachineConfig,
        *,
        prefill: Optional[Sequence[int]] = None,
        warmup_s: float = 0.0,
        expect_writes: bool = False,
        label: Optional[str] = None,
        max_buffered: Optional[int] = None,
    ) -> None:
        spec = parse_method(method) if isinstance(method, str) else method
        if spec.disk == "OR":
            raise SimulationError(
                "oracle-disk methods need future knowledge and cannot stream"
            )
        self.spec = spec
        self.machine = machine
        period = machine.manager.period_s
        if warmup_s < 0:
            raise SimulationError("warm-up must be non-negative")
        if warmup_s and abs(warmup_s / period - round(warmup_s / period)) > 1e-9:
            raise SimulationError("warm-up must be a whole number of periods")
        self.warmup_s = warmup_s
        self.expect_writes = bool(expect_writes)
        if max_buffered is not None and max_buffered < 1:
            raise SimulationError("max_buffered must be positive (or None)")
        self.max_buffered = max_buffered

        prefill = list(prefill) if prefill else []
        manager: Optional[JointPowerManager] = None
        if spec.is_joint:
            manager = JointPowerManager(
                machine,
                enforce_constraints=spec.enforce_constraints,
                adapt_memory=spec.adapt_memory,
                adapt_timeout=spec.adapt_timeout,
            )
            memory = spec.build_memory_system(machine)
            memory.resize(0.0, manager.memory_bytes)
            if prefill:
                memory.prefill(prefill)
                manager.prefill(prefill)
            self._engine = SimulationEngine(
                machine,
                memory,
                joint_manager=manager,
                label=label or spec.label,
            )
        else:
            policy = spec.build_disk_policy(machine)
            memory = spec.build_memory_system(machine)
            memory.prefill(prefill)
            self._engine = SimulationEngine(
                machine,
                memory,
                disk_policy=policy,
                label=label or spec.label,
            )
        self._manager = manager
        self._memory = memory

        # --- replay mode, mirroring kernels.select_mode ------------------
        if not kernels_enabled():
            self.replay_mode = STREAM_SCALAR
        elif manager is None and type(memory) is DisableMemorySystem:
            self.replay_mode = (
                STREAM_SCALAR if self.expect_writes else STREAM_DISABLE
            )
        elif manager is not None:
            if self.expect_writes:
                self.replay_mode = STREAM_SCALAR
            elif type(memory) is NapMemorySystem:
                self.replay_mode = STREAM_EPOCH
            else:
                self.replay_mode = STREAM_SCALAR
        elif supports_profiled_replay(memory):
            if self.expect_writes:
                self.replay_mode = STREAM_WRITES
            elif kernels._policy_is_request_blind(
                self._engine.policy
            ) and kernels._batchable_disk(self._engine.disk):
                self.replay_mode = STREAM_MISSRUN
            else:
                self.replay_mode = STREAM_VECTORIZED
        else:
            self.replay_mode = STREAM_SCALAR

        # The incremental Mattson pass: the same tracker, prefill and page
        # sequence build_profile would run offline, so the depths handed
        # to the kernels are identical to a TraceProfile's.  The disable
        # mode needs none: its residency oracle is the live bank map.
        self._tracker: Optional[StackDistanceTracker] = None
        if self.replay_mode in (
            STREAM_EPOCH,
            STREAM_VECTORIZED,
            STREAM_MISSRUN,
            STREAM_WRITES,
        ):
            self._tracker = StackDistanceTracker()
            if prefill:
                self._tracker.access_array(prefill)

        # --- engine state, initialized exactly as engine.run does --------
        engine = self._engine
        engine.last_replay_mode = self.replay_mode
        engine.disk.set_timeout(0.0, engine._initial_timeout())
        st = _ReplayState()
        st.metrics = MetricsCollector(
            period_s=period,
            long_latency_threshold_s=machine.manager.long_latency_threshold_s,
            aggregation_window_s=machine.manager.aggregation_window_s,
        )
        from repro.cache.readahead import ReadaheadClusterer
        from repro.sim.engine import SEQUENTIAL_MERGE_WINDOW_S

        st.clusterer = ReadaheadClusterer(
            merge_window_s=SEQUENTIAL_MERGE_WINDOW_S
        )
        st.has_writes = self.expect_writes
        st.duration_s = math.inf  # pinned down at close()
        st.warmup_s = warmup_s
        st.period_s = period
        st.next_flush = engine.flush_interval_s
        st.next_boundary = period
        st.last_flush_page = -2
        st.last_miss_page = -2
        st.last_miss_time = -np.inf
        st.current_timeout = engine.disk.timeout_s
        st.mem_mark = memory.energy.snapshot() if warmup_s == 0 else None
        st.disk_mark = engine.disk.energy.snapshot() if warmup_s == 0 else None
        self._st = st

        # Epoch-kernel resident-count invariant (see kernels.replay_epoch).
        self._resident = len(memory.cache)

        # --- pending-access ring -----------------------------------------
        self._times = np.empty(_INITIAL_BUFFER, dtype=np.float64)
        self._pages = np.empty(_INITIAL_BUFFER, dtype=np.int64)
        self._writes = (
            np.zeros(_INITIAL_BUFFER, dtype=bool) if self.expect_writes else None
        )
        self._depths = (
            np.empty(_INITIAL_BUFFER, dtype=np.int64)
            if self._tracker is not None
            else None
        )
        self._lo = 0  # first unprocessed access
        self._hi = 0  # end of buffered data

        #: Highest time the stream has vouched for: no future access may
        #: precede it (monotonic-time validation).
        self.watermark = 0.0
        self._last_processed_time = -math.inf
        # Where the offline close attributes the final cluster flush: the
        # metrics (collector, open period) after the last processed access.
        self._flush_metrics: Optional[MetricsCollector] = None
        self._flush_period = None
        self._decisions_seen = 0
        self._closed = False
        #: Telemetry counters.
        self.accesses_fed = 0
        self.accesses_processed = 0
        self.accesses_dropped = 0
        self.batches = 0

    # --- public API -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def decisions(self) -> List[PeriodDecision]:
        """Every period decision emitted so far (joint methods)."""
        if self._manager is None:
            return []
        return list(self._manager.decisions)

    @property
    def memory_bytes(self) -> int:
        return self._memory.capacity_bytes

    @property
    def timeout_s(self) -> Optional[float]:
        return self._st.current_timeout

    def feed(
        self,
        times,
        pages,
        writes=None,
    ) -> List[PeriodDecision]:
        """Consume one access batch; return the decisions it unlocked.

        ``times`` must be non-decreasing and must not precede the
        stream's :attr:`watermark` (ties allowed).  Empty batches are
        valid no-ops.  ``writes`` (optional bool array) requires
        ``expect_writes=True`` when any flag is set.
        """
        self._require_open()
        times = np.ascontiguousarray(times, dtype=np.float64)
        pages = np.ascontiguousarray(pages, dtype=np.int64)
        if times.ndim != 1 or pages.ndim != 1 or times.size != pages.size:
            raise SimulationError("times and pages must be equal-length 1-D")
        before = self._decision_count()
        self.batches += 1
        if times.size == 0:
            return self._new_decisions(before)
        if times.size > 1 and bool(np.any(np.diff(times) < 0)):
            raise SimulationError("batch times must be non-decreasing")
        if float(times[0]) < self.watermark - 1e-12:
            raise SimulationError(
                f"batch starts at {float(times[0]):.6f}s, before the stream "
                f"watermark {self.watermark:.6f}s (time must be monotonic)"
            )
        write_flags = None
        if writes is not None:
            write_flags = np.ascontiguousarray(writes, dtype=bool)
            if write_flags.shape != times.shape:
                raise SimulationError("writes must align with times")
            if bool(write_flags.any()) and not self.expect_writes:
                raise SimulationError(
                    "stream was opened read-only (expect_writes=False) but "
                    "the batch carries writes"
                )
        self._append(times, pages, write_flags)
        self.accesses_fed += int(times.size)
        self.watermark = float(times[-1])
        self._pump()
        return self._new_decisions(before)

    def advance(self, now: float) -> List[PeriodDecision]:
        """Vouch that no access before ``now`` is still to come.

        Moves the watermark without feeding data, letting period
        boundaries in an idle stream fire (an online controller still
        re-decides every period).  Boundaries past the last access fire
        only while no read-ahead cluster is unresolved -- see the module
        docstring -- so a decision may defer to the next ``feed`` or to
        ``close``.
        """
        self._require_open()
        now = float(now)
        if now < self.watermark - 1e-12:
            raise SimulationError(
                f"cannot advance to {now:.6f}s: the stream is already at "
                f"{self.watermark:.6f}s"
            )
        before = self._decision_count()
        self.watermark = max(self.watermark, now)
        self._pump()
        return self._new_decisions(before)

    def close(self, duration_s: Optional[float] = None) -> SimResult:
        """Finish the run; returns the offline-identical ``SimResult``.

        The default duration rounds the watermark up to a whole number
        of periods, exactly as ``engine.run`` rounds the trace duration.
        An explicit ``duration_s`` must not precede the watermark
        (accesses at or past the duration are dropped, mirroring the
        offline loops' cutoff -- but only ones the stream has not
        already replayed, which the watermark rule guarantees).
        """
        self._require_open()
        engine = self._engine
        st = self._st
        period = st.period_s
        if duration_s is None:
            duration_s = max(int(np.ceil(self.watermark / period)), 1) * period
        duration_s = float(duration_s)
        if duration_s <= 0:
            raise SimulationError("duration must be positive")
        if duration_s < self.watermark - 1e-12:
            raise SimulationError(
                f"duration {duration_s:.6f}s precedes the stream watermark "
                f"{self.watermark:.6f}s"
            )
        if self.warmup_s >= duration_s:
            raise SimulationError("warm-up must be within the duration")
        st.duration_s = duration_s

        # Replay the pending tail below the duration cutoff, then the
        # engine.run post-loop sequence, verbatim.
        cutoff = self._lo + int(
            np.searchsorted(
                self._times[self._lo : self._hi], duration_s, side="left"
            )
        )
        self._drain_pending(cutoff, duration_s)
        self.accesses_dropped += self._hi - self._lo
        self._lo = self._hi

        if st.clusterer.flush() is not None:
            # Offline, this on_request fires before the trailing drain:
            # it lands in the period that was current after the last
            # processed access, on whichever collector was live then.
            metrics = self._flush_metrics
            period_rec = self._flush_period
            if metrics is None or period_rec is None:
                raise SimulationError(
                    "read-ahead cluster without a processed access"
                )
            metrics.total_disk_requests += 1
            period_rec.disk_requests += 1

        engine._drain_events(st, duration_s)
        metrics = st.metrics
        last_closed = (
            metrics.periods[-1].end_s
            if metrics.periods
            else metrics.current_period_start
        )
        if not metrics.periods or last_closed < duration_s - 1e-9:
            metrics.close_period(
                duration_s,
                memory_bytes=self._memory.capacity_bytes,
                timeout_s=st.current_timeout,
            )

        if st.has_writes:
            remaining = (
                self._memory.take_pending_flushes() + self._memory.flush_all()
            )
            if remaining:
                engine._flush(
                    duration_s, remaining, metrics, st.last_flush_page
                )

        engine.disk.finalize(duration_s)
        self._memory.finalize(duration_s)

        if st.mem_mark is None or st.disk_mark is None:
            raise SimulationError("warm-up window never closed")
        memory_energy = self._memory.energy.minus(st.mem_mark)
        disk_energy = engine.disk.energy.minus(st.disk_mark)
        observed_s = duration_s - self.warmup_s
        self._closed = True
        manager = self._manager
        return SimResult(
            label=engine.label,
            duration_s=observed_s,
            memory_energy_j=memory_energy.total_j,
            disk_energy_j=disk_energy.total_joules(self.machine.disk),
            memory_energy=memory_energy,
            disk_energy=disk_energy,
            total_accesses=metrics.total_accesses,
            disk_page_accesses=metrics.total_disk_pages,
            disk_requests=metrics.total_disk_requests,
            disk_write_pages=metrics.total_flush_pages,
            mean_latency_s=metrics.mean_latency_s,
            long_latency=metrics.total_long_latency,
            wake_long_latency=metrics.total_wake_long_latency,
            spin_down_cycles=disk_energy.spin_down_cycles,
            utilization=disk_energy.utilization(observed_s),
            periods=metrics.periods,
            decisions=list(manager.decisions) if manager is not None else [],
            replay_mode=self.replay_mode,
        )

    # --- buffering --------------------------------------------------------

    def _append(self, times, pages, write_flags) -> None:
        n = int(times.size)
        live = self._hi - self._lo
        if self.max_buffered is not None and live + n > self.max_buffered:
            raise SimulationError(
                f"stream buffer over capacity: {live} pending access(es) + "
                f"{n} in this batch exceed max_buffered={self.max_buffered}; "
                f"advance() the watermark past the pending epoch (or raise "
                f"the cap) before feeding more"
            )
        if self._hi + n > self._times.size:
            size = self._times.size
            while size < live + n:
                size *= 2
            self._reallocate(size)
        hi = self._hi
        self._times[hi : hi + n] = times
        self._pages[hi : hi + n] = pages
        if self._writes is not None:
            if self._writes.size < self._times.size:
                grown = np.zeros(self._times.size, dtype=bool)
                grown[: self._writes.size] = self._writes
                self._writes = grown
            self._writes[hi : hi + n] = (
                False if write_flags is None else write_flags
            )
        if self._depths is not None:
            assert self._tracker is not None
            self._depths[hi : hi + n] = self._tracker.access_array(pages)
        self._hi = hi + n

    def _reallocate(self, size: int) -> None:
        """Grow the buffers, compacting processed entries away."""
        lo, hi = self._lo, self._hi
        for name in ("_times", "_pages", "_writes", "_depths"):
            old = getattr(self, name)
            if old is None:
                continue
            fresh = np.empty(size, dtype=old.dtype)
            if name == "_writes":
                fresh[:] = False
            fresh[: hi - lo] = old[lo:hi]
            setattr(self, name, fresh)
        self._hi = hi - lo
        self._lo = 0

    # --- the pump ---------------------------------------------------------

    def _pump(self) -> None:
        """Replay everything the watermark has proven complete."""
        if self.replay_mode == STREAM_SCALAR:
            self._pump_scalar()
        else:
            self._pump_fast()

    def _pump_fast(self) -> None:
        """Epoch/vectorized modes: fire each proven-complete boundary.

        A boundary ``B`` is safe once a buffered access in
        ``[B, watermark)`` witnesses it (that access is certain to be
        replayed: every valid close duration is ``>= watermark``, so the
        offline twin fires ``B`` in-loop at exactly that access).  With
        no witness, an idle-stream fire is exact only while the
        read-ahead clusterer is empty; otherwise the boundary waits.
        """
        st = self._st
        engine = self._engine
        while True:
            boundary = st.next_boundary
            cut = self._lo + int(
                np.searchsorted(
                    self._times[self._lo : self._hi],
                    boundary,
                    side=_BOUNDARY_SIDE,
                )
            )
            witnessed = (
                cut < self._hi and float(self._times[cut]) < self.watermark
            )
            if not witnessed and not (
                self.watermark > boundary and st.clusterer._pending is None
            ):
                break
            self._replay_span(self._lo, cut, math.inf)
            self._lo = cut
            engine._drain_events(st, boundary)
            self._resident = min(self._resident, self._memory.capacity_pages)
        if self._manager is None:
            # Manager-less modes can also drain mid-period: with no
            # epoch decisions pending, replaying any prefix strictly
            # below the watermark is bit-exact even when it splits a hit
            # run -- dynamic energy is an integer-count product, the
            # clock advance is idempotent, and the per-bank/static
            # accruals, LRU touches and metrics counters are all
            # per-access sequential, so two sub-runs charge exactly what
            # the unsplit run charges.  At this point every buffered
            # access below the watermark also lies below the pending
            # boundary (otherwise it would have witnessed it above), so
            # the span cannot cross an unfired period close.  This keeps
            # the pending ring bounded by the feed granularity instead
            # of a full period (~15 M accesses at scale=1).
            cut = self._lo + int(
                np.searchsorted(
                    self._times[self._lo : self._hi],
                    self.watermark,
                    side="left",
                )
            )
            if cut > self._lo:
                self._replay_span(self._lo, cut, math.inf)
                self._lo = cut

    def _pump_scalar(self) -> None:
        """Scalar mode: replay accesses strictly below the watermark.

        An access at exactly the watermark is held back -- a
        default-duration close could still drop it.  Trailing events
        (boundaries and write-back flushes past the last access) fire
        only while the clusterer is empty, same as the fast pump.
        """
        st = self._st
        cut = self._lo + int(
            np.searchsorted(
                self._times[self._lo : self._hi], self.watermark, side="left"
            )
        )
        self._replay_span(self._lo, cut, math.inf)
        self._lo = cut
        if st.clusterer._pending is None:
            self._engine._drain_events(st, self.watermark)

    def _drain_pending(self, cutoff: int, duration_s: float) -> None:
        """Close-time tail: replay ``[lo, cutoff)`` exactly as the
        offline loops replay their final accesses."""
        st = self._st
        engine = self._engine
        if self.replay_mode == STREAM_SCALAR:
            self._replay_span(self._lo, cutoff, duration_s)
            self._lo = cutoff
            return
        # Mirror kernels.replay_epoch's loop over the remaining tail:
        # boundaries fire only when an access at/past them remains.
        while self._lo < cutoff:
            boundary = st.next_boundary
            if boundary > st.duration_s:
                end = cutoff
            else:
                end = self._lo + int(
                    np.searchsorted(
                        self._times[self._lo : self._hi],
                        boundary,
                        side=_BOUNDARY_SIDE,
                    )
                )
                end = min(end, cutoff)
            if end > self._lo:
                self._replay_span(self._lo, end, duration_s)
                self._lo = end
                if self._lo >= cutoff:
                    break
            engine._drain_events(st, boundary)
            self._resident = min(self._resident, self._memory.capacity_pages)

    # --- replay spans -----------------------------------------------------

    def _replay_span(self, lo: int, hi: int, duration_s: float) -> None:
        """Replay buffered accesses ``[lo, hi)`` through the engine."""
        if hi <= lo:
            return
        st = self._st
        # Trimmed views: [0, _hi) is globally sorted (the stream is
        # monotonic and compaction preserves order), so the kernels'
        # internal searchsorted calls stay correct; beyond _hi the
        # buffers hold uninitialized garbage.
        times = self._times[: self._hi]
        pages = self._pages[: self._hi]
        if self.replay_mode == STREAM_EPOCH:
            self._resident = kernels._replay_epoch_segment(
                self._engine,
                st,
                self._memory,
                self._manager,
                times,
                pages,
                self._depths[: self._hi],
                lo,
                hi,
                duration_s,
                self._resident,
            )
        elif self.replay_mode == STREAM_VECTORIZED:
            self._replay_span_vectorized(lo, hi, duration_s)
        elif self.replay_mode == STREAM_MISSRUN:
            self._replay_span_missrun(lo, hi, duration_s)
        elif self.replay_mode == STREAM_WRITES:
            self._replay_span_writes(lo, hi, duration_s)
        elif self.replay_mode == STREAM_DISABLE:
            kernels._replay_disable_span(
                self._engine, st, self._memory, times, pages, lo, hi
            )
        else:
            self._replay_span_scalar(lo, hi)
        self.accesses_processed += hi - lo
        self._last_processed_time = float(self._times[hi - 1])
        self._flush_metrics = st.metrics
        self._flush_period = st.metrics._current

    def _replay_span_vectorized(
        self, lo: int, hi: int, duration_s: float
    ) -> None:
        """The replay_vectorized inner loop over one buffered span."""
        st = self._st
        engine = self._engine
        memory = self._memory
        times = self._times[: self._hi]
        pages = self._pages[: self._hi]
        window = self._depths[lo:hi]
        # profile.hit_mask's exact rule: hit iff 0 <= depth < capacity.
        hits = (window >= 0) & (window < memory.capacity_pages)
        miss_indices = np.flatnonzero(~hits) + lo
        drain = engine._drain_events
        serve_miss = engine._serve_miss
        pos = lo
        for m in miss_indices.tolist():
            if pos < m:
                kernels._consume_hits(
                    engine, st, memory, times, pages, pos, m, duration_s
                )
            now = float(times[m])
            page = int(pages[m])
            drain(st, now)
            memory.charge_page_access(now, page)
            serve_miss(st, now, page)
            pos = m + 1
        if pos < hi:
            kernels._consume_hits(
                engine, st, memory, times, pages, pos, hi, duration_s
            )

    def _replay_span_missrun(self, lo: int, hi: int, duration_s: float) -> None:
        """The replay_missrun inner loop over one buffered span.

        Same classification as the vectorized span (the incremental
        tracker's depths stand in for the profile); runs of consecutive
        misses batch through the same boundary-splitting helpers the
        offline ``"missrun"`` replay uses.
        """
        st = self._st
        engine = self._engine
        memory = self._memory
        times = self._times[: self._hi]
        pages = self._pages[: self._hi]
        window = self._depths[lo:hi]
        hits = (window >= 0) & (window < memory.capacity_pages)
        miss_indices = np.flatnonzero(~hits) + lo
        pos = lo
        for run_lo, run_hi in kernels._miss_runs(miss_indices):
            if pos < run_lo:
                kernels._consume_hits(
                    engine, st, memory, times, pages, pos, run_lo, duration_s
                )
            kernels._serve_missrun_span(
                engine, st, memory, times, pages, run_lo, run_hi, duration_s
            )
            pos = run_hi
        if pos < hi:
            kernels._consume_hits(
                engine, st, memory, times, pages, pos, hi, duration_s
            )

    def _replay_span_writes(self, lo: int, hi: int, duration_s: float) -> None:
        """The replay_writes inner loop over one buffered span.

        Same classification as the vectorized span (the incremental
        tracker's depths stand in for the profile; write-allocate keeps
        the LRU evolution read-identical), with misses, dirty evictions
        and flush sweeps through the exact scalar path.
        """
        memory = self._memory
        times = self._times[: self._hi]
        pages = self._pages[: self._hi]
        writes = self._writes[: self._hi]
        window = self._depths[lo:hi]
        hits = (window >= 0) & (window < memory.capacity_pages)
        miss_indices = np.flatnonzero(~hits) + lo
        kernels._replay_writes_inner(
            self._engine, self._st, memory, times, pages, writes,
            miss_indices, lo, hi, duration_s,
        )

    def _replay_span_scalar(self, lo: int, hi: int) -> None:
        """The engine's per-access reference loop over one buffered span."""
        st = self._st
        engine = self._engine
        memory = self._memory
        manager = self._manager
        has_writes = st.has_writes
        drain_events = engine._drain_events
        serve_miss = engine._serve_miss
        times = self._times[lo:hi].tolist()
        pages = self._pages[lo:hi].tolist()
        writes = (
            self._writes[lo:hi].tolist()
            if has_writes and self._writes is not None
            else [False] * (hi - lo)
        )
        for now, page, is_write in zip(times, pages, writes):
            drain_events(st, now)
            if manager is not None:
                manager.record_access(now, page)
            if has_writes:
                hit = memory.access_rw(now, page, is_write)
                pending = memory.take_pending_flushes()
                if pending:
                    st.last_flush_page = engine._flush(
                        now, pending, st.metrics, st.last_flush_page
                    )
                if is_write:
                    if hit:
                        st.metrics.on_hit(now)
                    else:
                        st.metrics.on_write(now)
                    continue
            else:
                hit = memory.access(now, page)
            if hit:
                st.metrics.on_hit(now)
                continue
            serve_miss(st, now, page)

    # --- helpers ----------------------------------------------------------

    def _decision_count(self) -> int:
        return len(self._manager.decisions) if self._manager is not None else 0

    def _new_decisions(self, before: int) -> List[PeriodDecision]:
        if self._manager is None:
            return []
        fresh = self._manager.decisions[before:]
        self._decisions_seen = len(self._manager.decisions)
        return list(fresh)

    def _require_open(self) -> None:
        if self._closed:
            raise SimulationError("the stream is closed")

    @property
    def pending_accesses(self) -> int:
        """Buffered accesses awaiting a proven-complete epoch."""
        return self._hi - self._lo
