"""Client for the ``repro serve`` line-delimited-JSON protocol.

>>> with ServiceClient(port=daemon.port) as client:     # doctest: +SKIP
...     sid = client.open_session("JOINT")
...     client.feed(sid, times, pages)
...     client.decide(sid, now_s=600.0)
...     result = client.close(sid)

One :class:`ServiceClient` wraps one socket connection; it is not
thread-safe -- concurrent tenants each open their own (connections are
cheap; the daemon serves each from its own thread).  Server-side
failures raise :class:`ServiceError` with the daemon's message.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional, Sequence

from repro.service.daemon import connect_address


class ServiceError(RuntimeError):
    """The daemon rejected a request (``ok: false``)."""


class ServiceClient:
    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout_s: float = 30.0,
    ) -> None:
        if port <= 0:
            raise ServiceError("a daemon port is required")
        self._sock = connect_address(host, port, timeout_s)
        self._sock.settimeout(timeout_s)
        self._rfile = self._sock.makefile("rb")

    def close_connection(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close_connection()

    # --- protocol ops -----------------------------------------------------

    def request(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Send one request object; return the daemon's response."""
        line = json.dumps(payload, separators=(",", ":")).encode() + b"\n"
        try:
            self._sock.sendall(line)
            response_line = self._rfile.readline()
        except (ConnectionError, socket.timeout, OSError) as exc:
            raise ServiceError(f"daemon connection failed: {exc}") from exc
        if not response_line:
            raise ServiceError("daemon closed the connection")
        response = json.loads(response_line)
        if not response.get("ok"):
            raise ServiceError(str(response.get("error", "unknown error")))
        return response

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def open_session(
        self,
        method: str,
        *,
        scale: Optional[int] = None,
        prefill: Optional[Sequence[int]] = None,
        warmup_s: float = 0.0,
        expect_writes: bool = False,
        session_id: Optional[str] = None,
    ) -> str:
        """Open a tenant stream.

        ``scale`` picks the machine granularity server-side; omitted, the
        daemon's default machine (1024x unless configured otherwise) is
        used.
        """
        payload: Dict[str, object] = {
            "op": "open_session",
            "method": method,
            "warmup_s": warmup_s,
            "expect_writes": expect_writes,
        }
        if scale is not None:
            payload["scale"] = int(scale)
        if prefill:
            payload["prefill"] = [int(p) for p in prefill]
        if session_id is not None:
            payload["session_id"] = session_id
        return str(self.request(payload)["session_id"])

    def feed(
        self,
        session: str,
        times: Sequence[float],
        pages: Sequence[int],
        writes: Optional[Sequence[bool]] = None,
    ) -> List[Dict[str, object]]:
        payload: Dict[str, object] = {
            "op": "feed",
            "session": session,
            "times": [float(t) for t in times],
            "pages": [int(p) for p in pages],
        }
        if writes is not None:
            payload["writes"] = [bool(w) for w in writes]
        return list(self.request(payload)["decisions"])

    def decide(self, session: str, now_s: float) -> List[Dict[str, object]]:
        """Advance the stream's watermark; returns the decisions fired."""
        return list(
            self.request(
                {"op": "decide", "session": session, "now_s": float(now_s)}
            )["decisions"]
        )

    def close(
        self, session: str, duration_s: Optional[float] = None
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {"op": "close", "session": session}
        if duration_s is not None:
            payload["duration_s"] = float(duration_s)
        return dict(self.request(payload)["result"])

    def stats(self, session: Optional[str] = None) -> Dict[str, object]:
        payload: Dict[str, object] = {"op": "stats"}
        if session is not None:
            payload["session"] = session
        return dict(self.request(payload)["stats"])

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})
