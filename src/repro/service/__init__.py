"""Streaming power management: online feeds, tenants, and the daemon.

The offline engine replays complete traces; this package runs the same
managers *online*, the shape of a real datacenter power controller:

* :class:`~repro.service.streaming.StreamingManager` -- one tenant's
  incremental stream.  ``feed(times, pages)`` consumes access batches
  with no full trace in hand and returns the period decisions they
  unlocked; ``close()`` returns a :class:`~repro.sim.results.SimResult`
  bit-identical to an offline replay of the same access sequence
  (``CHECKS["stream"]`` enforces this).
* :class:`~repro.service.sessions.SessionRegistry` -- N independent
  tenant streams with per-tenant machine configs, idle eviction,
  monotonic-time validation and telemetry rollups.
* :class:`~repro.service.daemon.ServiceDaemon` /
  :class:`~repro.service.client.ServiceClient` -- the ``repro serve``
  line-delimited-JSON protocol over a local socket.

See docs/SERVICE.md for the protocol and the parity guarantees.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ServiceDaemon
from repro.service.sessions import SessionRegistry, SessionStats
from repro.service.streaming import StreamingManager

__all__ = [
    "ServiceClient",
    "ServiceDaemon",
    "ServiceError",
    "SessionRegistry",
    "SessionStats",
    "StreamingManager",
]
