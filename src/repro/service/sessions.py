"""Multi-tenant session management for the streaming service.

A :class:`SessionRegistry` owns N independent tenant streams, each a
:class:`~repro.service.streaming.StreamingManager` with its own method
and machine configuration.  The registry adds what a long-running
service needs on top of a single stream:

* **per-tenant configuration** -- every ``open_session`` picks its own
  method, machine, warm-start prefill and warm-up window;
* **idle eviction** -- sessions that have not been touched for
  ``idle_timeout_s`` of *wall-clock* time are closed (their final
  ``SimResult`` is folded into the rollup) and dropped; the clock is
  injectable so tests do not sleep;
* **monotonic-time validation** -- stream-time monotonicity is enforced
  by the stream itself; the registry turns unknown/closed session ids
  into clean errors instead of daemon crashes;
* **telemetry rollups** -- :meth:`stats` aggregates accesses, decisions
  and the energy of every completed stream across all tenants.

All public methods are thread-safe: the daemon serves each tenant
connection from its own thread.  A registry-wide lock guards the session
map; a per-session lock serializes feeds into one stream, so concurrent
tenants never contend with each other.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.config.machine import MachineConfig, scaled_machine
from repro.core.joint import PeriodDecision
from repro.errors import SimulationError
from repro.policies.registry import MethodSpec
from repro.service.streaming import StreamingManager
from repro.sim.results import SimResult


@dataclass(frozen=True)
class SessionStats:
    """One tenant's telemetry snapshot."""

    session_id: str
    method: str
    replay_mode: str
    created_s: float
    last_active_s: float
    watermark: float
    accesses_fed: int
    accesses_processed: int
    pending_accesses: int
    batches: int
    decision_count: int
    memory_bytes: int
    timeout_s: Optional[float]


class _Session:
    __slots__ = (
        "session_id",
        "method",
        "stream",
        "created_s",
        "last_active_s",
        "lock",
    )

    def __init__(
        self,
        session_id: str,
        method: str,
        stream: StreamingManager,
        now_s: float,
    ) -> None:
        self.session_id = session_id
        self.method = method
        self.stream = stream
        self.created_s = now_s
        self.last_active_s = now_s
        self.lock = threading.Lock()

    def stats(self) -> SessionStats:
        stream = self.stream
        return SessionStats(
            session_id=self.session_id,
            method=self.method,
            replay_mode=stream.replay_mode,
            created_s=self.created_s,
            last_active_s=self.last_active_s,
            watermark=stream.watermark,
            accesses_fed=stream.accesses_fed,
            accesses_processed=stream.accesses_processed,
            pending_accesses=stream.pending_accesses,
            batches=stream.batches,
            decision_count=len(stream.decisions),
            memory_bytes=stream.memory_bytes,
            timeout_s=stream.timeout_s,
        )


class SessionRegistry:
    """N independent tenant streams behind one thread-safe front door.

    Parameters
    ----------
    default_machine:
        Machine used when ``open_session`` does not bring its own
        (default: the paper's machine at the tractable 1024x scale).
    idle_timeout_s:
        Evict sessions idle longer than this (None disables eviction).
        :meth:`evict_idle` runs the sweep; the daemon calls it on every
        ``open_session`` and ``stats``.
    max_sessions:
        Hard cap on concurrently open sessions.
    clock:
        Wall-clock source (seconds); injectable so eviction tests do not
        sleep.  Defaults to :func:`time.monotonic`.
    """

    def __init__(
        self,
        default_machine: Optional[MachineConfig] = None,
        *,
        idle_timeout_s: Optional[float] = None,
        max_sessions: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if idle_timeout_s is not None and idle_timeout_s <= 0:
            raise SimulationError("idle timeout must be positive")
        if max_sessions <= 0:
            raise SimulationError("max_sessions must be positive")
        self.default_machine = default_machine or scaled_machine()
        self.idle_timeout_s = idle_timeout_s
        self.max_sessions = max_sessions
        self._clock = clock
        self._lock = threading.Lock()
        self._sessions: Dict[str, _Session] = {}
        self._ids = itertools.count(1)
        # Rollup of everything that has already finished.
        self._closed_sessions = 0
        self._evicted_sessions = 0
        self._closed_energy_j = 0.0
        self._closed_decisions = 0
        self._closed_accesses = 0

    # --- lifecycle --------------------------------------------------------

    def open_session(
        self,
        method: Union[str, MethodSpec],
        *,
        machine: Optional[MachineConfig] = None,
        prefill: Optional[Sequence[int]] = None,
        warmup_s: float = 0.0,
        expect_writes: bool = False,
        max_buffered: Optional[int] = None,
        session_id: Optional[str] = None,
    ) -> str:
        """Open a tenant stream; returns its session id.

        ``max_buffered`` caps how many accesses the tenant's stream may
        hold past the watermark (backpressure); None means unbounded.
        """
        self.evict_idle()
        stream = StreamingManager(
            method,
            machine or self.default_machine,
            prefill=prefill,
            warmup_s=warmup_s,
            expect_writes=expect_writes,
            max_buffered=max_buffered,
        )
        now = self._clock()
        with self._lock:
            if session_id is None:
                session_id = f"s{next(self._ids)}"
            elif session_id in self._sessions:
                raise SimulationError(f"session {session_id!r} already open")
            if len(self._sessions) >= self.max_sessions:
                raise SimulationError(
                    f"session limit reached ({self.max_sessions})"
                )
            self._sessions[session_id] = _Session(
                session_id, stream.spec.label, stream, now
            )
        return session_id

    def feed(
        self, session_id: str, times, pages, writes=None
    ) -> List[PeriodDecision]:
        """Feed one batch into a tenant stream; returns new decisions."""
        session = self._get(session_id)
        with session.lock:
            decisions = session.stream.feed(times, pages, writes)
            session.last_active_s = self._clock()
        return decisions

    def advance(self, session_id: str, now_s: float) -> List[PeriodDecision]:
        """Advance a tenant stream's watermark without feeding data."""
        session = self._get(session_id)
        with session.lock:
            decisions = session.stream.advance(now_s)
            session.last_active_s = self._clock()
        return decisions

    def close(
        self, session_id: str, duration_s: Optional[float] = None
    ) -> SimResult:
        """Close a tenant stream and fold it into the rollup."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise SimulationError(f"unknown session {session_id!r}")
        with session.lock:
            result = session.stream.close(duration_s)
        self._fold(session, result)
        return result

    def evict_idle(self, now_s: Optional[float] = None) -> List[str]:
        """Close and drop sessions idle past the timeout; returns their ids.

        An evicted stream is closed at its own default duration, so its
        energy/decision telemetry still lands in the rollup.
        """
        if self.idle_timeout_s is None:
            return []
        now = self._clock() if now_s is None else now_s
        with self._lock:
            stale = [
                s
                for s in self._sessions.values()
                if now - s.last_active_s > self.idle_timeout_s
            ]
            for session in stale:
                del self._sessions[session.session_id]
        evicted = []
        for session in stale:
            with session.lock:
                try:
                    result = session.stream.close()
                except SimulationError:
                    # An unclosable stream (e.g. warm-up past its default
                    # duration) is still dropped; only the rollup loses it.
                    result = None
            self._fold(session, result, evicted=True)
            evicted.append(session.session_id)
        return evicted

    # --- telemetry --------------------------------------------------------

    def session_stats(self, session_id: str) -> SessionStats:
        return self._get(session_id).stats()

    def session_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def stats(self) -> Dict[str, object]:
        """Registry-wide telemetry rollup across all tenants."""
        with self._lock:
            sessions = list(self._sessions.values())
            closed = self._closed_sessions
            evicted = self._evicted_sessions
            closed_energy = self._closed_energy_j
            closed_decisions = self._closed_decisions
            closed_accesses = self._closed_accesses
        live = [s.stats() for s in sessions]
        return {
            "open_sessions": len(live),
            "closed_sessions": closed,
            "evicted_sessions": evicted,
            "accesses_fed": sum(s.accesses_fed for s in live)
            + closed_accesses,
            "decisions": sum(s.decision_count for s in live)
            + closed_decisions,
            "closed_energy_j": closed_energy,
            "sessions": {s.session_id: s for s in live},
        }

    # --- internals --------------------------------------------------------

    def _get(self, session_id: str) -> _Session:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SimulationError(f"unknown session {session_id!r}")
        return session

    def _fold(
        self,
        session: _Session,
        result: Optional[SimResult],
        evicted: bool = False,
    ) -> None:
        with self._lock:
            self._closed_sessions += 1
            if evicted:
                self._evicted_sessions += 1
            self._closed_accesses += session.stream.accesses_fed
            self._closed_decisions += len(session.stream.decisions)
            if result is not None:
                self._closed_energy_j += (
                    result.memory_energy_j + result.disk_energy_j
                )
