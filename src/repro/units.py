"""Physical-unit constants and converters.

Everything in the simulator uses a single base unit per dimension:

* time     -- seconds (float)
* size     -- bytes (int where exactness matters, float otherwise)
* power    -- watts
* energy   -- joules

The constants here exist so that code reads ``16 * MB`` instead of
``16777216`` and ``10 * MINUTES`` instead of ``600.0``.
"""

from __future__ import annotations

# --- sizes (binary, as used by the paper's memory/disk specs) ---------------
KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB

#: Operating-system page size used throughout the paper (4 kB).
PAGE_SIZE: int = 4 * KB

# --- times -------------------------------------------------------------------
MICROSECONDS: float = 1e-6
MILLISECONDS: float = 1e-3
SECONDS: float = 1.0
MINUTES: float = 60.0
HOURS: float = 3600.0

# --- power / energy ----------------------------------------------------------
MILLIWATTS: float = 1e-3
WATTS: float = 1.0
MILLIJOULES: float = 1e-3
JOULES: float = 1.0


def bytes_to_pages(size_bytes: float, page_size: int = PAGE_SIZE) -> int:
    """Number of whole pages needed to hold ``size_bytes`` (ceiling)."""
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes}")
    return int(-(-int(size_bytes) // page_size))


def pages_to_bytes(pages: int, page_size: int = PAGE_SIZE) -> int:
    """Size in bytes of ``pages`` whole pages."""
    if pages < 0:
        raise ValueError(f"page count must be non-negative, got {pages}")
    return pages * page_size


def mb(size_bytes: float) -> float:
    """Express a byte count in mebibytes (for display)."""
    return size_bytes / MB


def gb(size_bytes: float) -> float:
    """Express a byte count in gibibytes (for display)."""
    return size_bytes / GB
