"""Two-competitive fixed timeout (2T).

Karlin et al. [41]: a timeout equal to the break-even time guarantees at
most twice the energy of the offline optimum.  The paper uses 11.7 s, the
break-even time of its drive.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PolicyError
from repro.policies.base import DiskPolicy


class FixedTimeoutPolicy(DiskPolicy):
    """Constant spin-down timeout (2T when ``timeout == break-even``)."""

    name = "2T"

    def __init__(self, timeout_s: float) -> None:
        if timeout_s < 0:
            raise PolicyError("timeout must be non-negative")
        self.timeout_s = timeout_s

    def initial_timeout(self) -> Optional[float]:
        return self.timeout_s
