"""Exponential-average predictive spin-down (EA).

The predictive family the paper's related work surveys (Douglis et al.
[27] compare against it; Hwang & Wu's exponential-average predictor is
the classic instance): instead of waiting out a timeout, predict the
coming idle period from an exponentially weighted average of past ones
and spin down *immediately* when the prediction clears the break-even
time.

``I_{n+1} = a * i_n + (1 - a) * I_n``

where ``i_n`` is the last completed idle length and ``a`` the smoothing
weight.  A saturation guard (as in Hwang & Wu) keeps one long outlier
from locking the predictor high: predictions are clamped to
``clamp_factor`` times the break-even time.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import PolicyError
from repro.policies.base import NO_CHANGE, DiskPolicy, TimeoutUpdate


class PredictiveSpinDownPolicy(DiskPolicy):
    """Spin down at once when the predicted idle beats break-even."""

    name = "EA"

    def __init__(
        self,
        break_even_s: float,
        smoothing: float = 0.5,
        clamp_factor: float = 10.0,
        initial_prediction_s: Optional[float] = None,
    ) -> None:
        if break_even_s <= 0:
            raise PolicyError("break-even time must be positive")
        if not 0.0 < smoothing <= 1.0:
            raise PolicyError("smoothing weight must be in (0, 1]")
        if clamp_factor < 1.0:
            raise PolicyError("clamp factor must be >= 1")
        self.break_even_s = break_even_s
        self.smoothing = smoothing
        self.clamp_s = clamp_factor * break_even_s
        #: Current idle-length prediction ``I_n``.
        self.prediction_s = (
            break_even_s if initial_prediction_s is None else initial_prediction_s
        )

    def initial_timeout(self) -> Optional[float]:
        return self._decision()

    def _decision(self) -> Optional[float]:
        """Timeout encoding of the immediate decision.

        Predict long: timeout 0 (spin down as soon as the queue drains);
        predict short: never spin down this gap.
        """
        if self.prediction_s > self.break_even_s:
            return 0.0
        return None

    def on_request(
        self,
        now: float,
        latency_s: float,
        wake_delay_s: float,
        idle_before_s: float,
    ) -> TimeoutUpdate:
        del now, latency_s, wake_delay_s
        if idle_before_s <= 0.0:
            return NO_CHANGE
        updated = (
            self.smoothing * idle_before_s
            + (1.0 - self.smoothing) * self.prediction_s
        )
        self.prediction_s = min(updated, self.clamp_s)
        decision = self._decision()
        # The drive treats an infinite timeout as "never spin down".
        return math.inf if decision is None else decision
