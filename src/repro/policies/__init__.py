"""Disk power-management policies and the method-name registry.

Disk-side policies compared in the paper (Section V-A):

* :class:`~repro.policies.always_on.AlwaysOnPolicy` -- the baseline.
* :class:`~repro.policies.fixed_timeout.FixedTimeoutPolicy` -- the
  2-competitive timeout (2T): timeout = break-even time = 11.7 s.
* :class:`~repro.policies.adaptive_timeout.AdaptiveTimeoutPolicy` -- the
  Douglis adaptive timeout (AD): 10 s start, +/-5 s steps within [5, 30] s.
* :class:`~repro.policies.oracle.OraclePolicy` -- the offline optimum the
  paper cites as the yardstick [16] (extension; not one of the 15 methods).

The joint method drives the disk timeout itself (``repro.core.joint``).
"""

from repro.policies.adaptive_timeout import AdaptiveTimeoutPolicy
from repro.policies.always_on import AlwaysOnPolicy
from repro.policies.base import DiskPolicy
from repro.policies.fixed_timeout import FixedTimeoutPolicy
from repro.policies.oracle import OraclePolicy
from repro.policies.registry import MethodSpec, parse_method, standard_methods

__all__ = [
    "AdaptiveTimeoutPolicy",
    "AlwaysOnPolicy",
    "DiskPolicy",
    "FixedTimeoutPolicy",
    "MethodSpec",
    "OraclePolicy",
    "parse_method",
    "standard_methods",
]
