"""Method names -> configured policy/memory combinations.

The paper names its 14 comparison methods by three parts: disk policy
("2T" or "AD"), memory policy ("FM", "PD" or "DS") and maximum memory
size ("-8GB" ... "-128GB").  Examples from the text: ``2TFM-8GB``,
``ADPD-128GB``.  The baseline is ``ALWAYS-ON`` and the paper's method is
``JOINT``.  ``2TOR``-style oracle combinations exist as extensions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from repro.config.machine import MachineConfig
from repro.errors import PolicyError
from repro.memory.system import (
    DisableMemorySystem,
    MemorySystem,
    NapMemorySystem,
    PowerDownMemorySystem,
)
from repro.policies.adaptive_timeout import AdaptiveTimeoutPolicy
from repro.policies.always_on import AlwaysOnPolicy
from repro.policies.base import DiskPolicy
from repro.policies.fixed_timeout import FixedTimeoutPolicy
from repro.policies.oracle import OraclePolicy
from repro.policies.pareto_timeout import ParetoTimeoutPolicy
from repro.policies.predictive import PredictiveSpinDownPolicy
from repro.units import GB

_NAME_RE = re.compile(
    r"^(?P<disk>2T|AD|ON|OR|PT|EA)(?P<memory>FM|PD|DS|NAP)(-(?P<size>\d+)GB)?$"
)


@dataclass(frozen=True)
class MethodSpec:
    """A named power-management method: disk policy + memory system."""

    label: str
    disk: str  # "2T" | "AD" | "ON" | "OR" | "PT" | "JOINT"
    memory: str  # "FM" | "PD" | "DS" | "NAP" | "JOINT"
    memory_bytes: Optional[int] = None  # fixed size for FM; None = installed
    #: Joint-manager ablation flags (only read when ``is_joint``).
    enforce_constraints: bool = True
    adapt_memory: bool = True
    adapt_timeout: bool = True

    @property
    def is_joint(self) -> bool:
        return self.disk == "JOINT"

    def build_disk_policy(self, machine: MachineConfig) -> DiskPolicy:
        if self.disk == "2T":
            return FixedTimeoutPolicy(machine.disk.break_even_time_s)
        if self.disk == "AD":
            return AdaptiveTimeoutPolicy()
        if self.disk == "ON":
            return AlwaysOnPolicy()
        if self.disk == "OR":
            return OraclePolicy(machine.disk.break_even_time_s)
        if self.disk == "PT":
            return ParetoTimeoutPolicy(
                machine.disk.break_even_time_s,
                aggregation_window_s=machine.manager.aggregation_window_s,
            )
        if self.disk == "EA":
            return PredictiveSpinDownPolicy(machine.disk.break_even_time_s)
        if self.disk == "JOINT":
            raise PolicyError("the joint method drives the disk itself")
        raise PolicyError(f"unknown disk policy {self.disk!r}")

    def build_memory_system(self, machine: MachineConfig) -> MemorySystem:
        spec = machine.memory
        size = self.memory_bytes
        if size is None:
            size = spec.installed_bytes
        if self.memory in ("FM", "NAP", "JOINT"):
            return NapMemorySystem(spec, size)
        if self.memory == "PD":
            return PowerDownMemorySystem(spec, size)
        if self.memory == "DS":
            return DisableMemorySystem(spec, size)
        raise PolicyError(f"unknown memory policy {self.memory!r}")


def parse_method(name: str) -> MethodSpec:
    """Parse a paper-style method name.

    Recognised forms: ``JOINT`` and its ablations ``JOINT-NC`` (no
    performance constraints, the DATE-2005 method), ``JOINT-MEM``
    (resize-only) and ``JOINT-TO`` (timeout-only); ``ALWAYS-ON``; and
    ``<disk><memory>[-<size>GB]`` with disk in {2T, AD, ON, OR, PT, EA}
    and memory in {FM, PD, DS, NAP}.

    >>> parse_method("2TFM-8GB").memory_bytes == 8 * GB
    True
    >>> parse_method("JOINT").is_joint
    True
    """
    canonical = name.strip().upper()
    if canonical in ("JOINT", "JM"):
        return MethodSpec(label="JOINT", disk="JOINT", memory="JOINT")
    if canonical in ("JOINT-NC", "DATE2005"):
        # The DATE 2005 method: joint adaptation without the TCAD paper's
        # performance constraints.
        return MethodSpec(
            label="JOINT-NC",
            disk="JOINT",
            memory="JOINT",
            enforce_constraints=False,
        )
    if canonical == "JOINT-MEM":
        # Resize-only ablation: memory adapts, disk keeps the 2T timeout.
        return MethodSpec(
            label="JOINT-MEM", disk="JOINT", memory="JOINT", adapt_timeout=False
        )
    if canonical == "JOINT-TO":
        # Timeout-only ablation: memory pinned at the installed maximum.
        return MethodSpec(
            label="JOINT-TO", disk="JOINT", memory="JOINT", adapt_memory=False
        )
    if canonical in ("ALWAYS-ON", "ALWAYSON", "BASE"):
        return MethodSpec(label="ALWAYS-ON", disk="ON", memory="NAP")
    match = _NAME_RE.match(canonical)
    if not match:
        raise PolicyError(f"cannot parse method name {name!r}")
    size = match.group("size")
    memory_bytes = int(size) * GB if size else None
    if match.group("memory") == "FM" and memory_bytes is None:
        raise PolicyError("FM methods need an explicit memory size (e.g. FM-8GB)")
    return MethodSpec(
        label=canonical,
        disk=match.group("disk"),
        memory=match.group("memory"),
        memory_bytes=memory_bytes,
    )


def standard_methods(
    fm_sizes_gb: Optional[List[int]] = None, include_oracle: bool = False
) -> List[MethodSpec]:
    """The paper's comparison set: joint + 14 methods + always-on.

    2TFM/ADFM at five sizes, 2TPD/ADPD/2TDS/ADDS at the installed maximum,
    the joint method and the always-on baseline (Section V-A).
    """
    if fm_sizes_gb is None:
        fm_sizes_gb = [8, 16, 32, 64, 128]
    names = ["JOINT"]
    for disk in ("2T", "AD"):
        for size in fm_sizes_gb:
            names.append(f"{disk}FM-{size}GB")
        names.append(f"{disk}PD-128GB")
        names.append(f"{disk}DS-128GB")
    if include_oracle:
        names.append("ORFM-128GB")
    names.append("ALWAYS-ON")
    return [parse_method(name) for name in names]
