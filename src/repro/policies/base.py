"""Disk-policy interface.

A disk policy owns the spin-down timeout of a :class:`~repro.disk.drive.
SimDisk`.  The engine notifies it of the events timeout policies react to;
a hook returns the new timeout (seconds, ``None`` for "never spin down")
or ``NO_CHANGE`` to leave it as is.
"""

from __future__ import annotations

from typing import Optional, Union

#: Sentinel: the hook does not want to change the timeout.
NO_CHANGE = "no-change"

TimeoutUpdate = Union[Optional[float], str]


class DiskPolicy:
    """Base class; default behaviour is a fixed, never-changing timeout."""

    #: Short identifier used in method names ("2T", "AD", ...).
    name: str = "base"

    def initial_timeout(self) -> Optional[float]:
        """Timeout installed at simulation start (None = never spin down)."""
        return None

    def on_request(
        self,
        now: float,
        latency_s: float,
        wake_delay_s: float,
        idle_before_s: float,
    ) -> TimeoutUpdate:
        """Called after each served request.

        ``wake_delay_s`` is positive when this request had to wake the
        disk; ``idle_before_s`` is the idle stretch that preceded it.
        """
        del now, latency_s, wake_delay_s, idle_before_s
        return NO_CHANGE

    def on_idle_start(
        self, completion_s: float, next_arrival_s: Optional[float]
    ) -> TimeoutUpdate:
        """Called when the disk goes idle.

        ``next_arrival_s`` is an oracle hint (the next request's arrival
        time, None when the trace ends); online policies must ignore it.
        """
        del completion_s, next_arrival_s
        return NO_CHANGE

    def on_period(self, now: float) -> TimeoutUpdate:
        """Called at every manager period boundary."""
        del now
        return NO_CHANGE
