"""Douglis adaptive spin-down timeout (AD).

Douglis, Krishnan & Bershad [27], with the paper's parameters
(Section V-A): start 10 s, step 5 s, range [5, 30] s, and a 0.05 maximum
acceptable ratio between the spin-up delay and the idle time preceding the
spin-up.  When a wake's delay exceeds that fraction of the idle period it
interrupted, the spin-down was judged too eager and the timeout grows;
otherwise it shrinks.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PolicyError
from repro.policies.base import NO_CHANGE, DiskPolicy, TimeoutUpdate


class AdaptiveTimeoutPolicy(DiskPolicy):
    """Adaptive timeout driven by the spin-up-delay/idle-time ratio."""

    name = "AD"

    def __init__(
        self,
        start_s: float = 10.0,
        step_s: float = 5.0,
        min_s: float = 5.0,
        max_s: float = 30.0,
        max_delay_ratio: float = 0.05,
    ) -> None:
        if not 0 < min_s <= start_s <= max_s:
            raise PolicyError("need 0 < min <= start <= max")
        if step_s <= 0:
            raise PolicyError("step must be positive")
        if not 0.0 < max_delay_ratio < 1.0:
            raise PolicyError("delay ratio threshold must be in (0, 1)")
        self.timeout_s = start_s
        self.step_s = step_s
        self.min_s = min_s
        self.max_s = max_s
        self.max_delay_ratio = max_delay_ratio
        #: Adaptation history, for diagnostics: (time, new timeout).
        self.history = []

    def initial_timeout(self) -> Optional[float]:
        return self.timeout_s

    def on_request(
        self,
        now: float,
        latency_s: float,
        wake_delay_s: float,
        idle_before_s: float,
    ) -> TimeoutUpdate:
        del latency_s
        if wake_delay_s <= 0.0:
            # The disk was spinning: no evidence either way.
            return NO_CHANGE
        if idle_before_s <= 0.0:
            ratio = float("inf")
        else:
            ratio = wake_delay_s / idle_before_s
        if ratio > self.max_delay_ratio:
            new_timeout = min(self.timeout_s + self.step_s, self.max_s)
        else:
            new_timeout = max(self.timeout_s - self.step_s, self.min_s)
        if new_timeout == self.timeout_s:
            return NO_CHANGE
        self.timeout_s = new_timeout
        self.history.append((now, new_timeout))
        return new_timeout
