"""The always-on baseline: the disk never spins down."""

from __future__ import annotations

from typing import Optional

from repro.policies.base import DiskPolicy


class AlwaysOnPolicy(DiskPolicy):
    """Baseline disk policy (paper Section V-A, "always-on method")."""

    name = "ON"

    def initial_timeout(self) -> Optional[float]:
        return None
