"""Pareto-adaptive timeout (PT) -- the stochastic-model policy.

The timeout half of the paper's method as a standalone disk policy, in
the spirit of the Pareto-based stochastic policies it builds on
(Simunic et al. [18], [19]): observe the disk's idle intervals, refit a
Pareto model every period, and install the energy-optimal timeout
``t_o = alpha * t_be`` (eq. 5).  Memory is whatever the paired memory
policy provides; no performance constraints are applied (that is the
joint method's addition).

Useful on its own and as the "timeout-only" arm of the ablation bench.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import PolicyError
from repro.policies.base import NO_CHANGE, DiskPolicy, TimeoutUpdate
from repro.stats.pareto import fit_moments
from repro.stats.timeout_math import optimal_timeout

#: Minimum intervals for a usable fit, mirroring the joint manager.
MIN_INTERVALS = 5


class ParetoTimeoutPolicy(DiskPolicy):
    """Per-period Pareto refit of the spin-down timeout."""

    name = "PT"

    def __init__(
        self,
        break_even_s: float,
        aggregation_window_s: float = 0.1,
        initial_timeout_s: Optional[float] = None,
    ) -> None:
        if break_even_s <= 0:
            raise PolicyError("break-even time must be positive")
        if aggregation_window_s < 0:
            raise PolicyError("aggregation window must be non-negative")
        self.break_even_s = break_even_s
        self.window_s = aggregation_window_s
        self.timeout_s = (
            break_even_s if initial_timeout_s is None else initial_timeout_s
        )
        self._intervals: List[float] = []
        #: (time, timeout) pairs, one per period with a successful fit.
        self.history: List[tuple] = []

    def initial_timeout(self) -> Optional[float]:
        return self.timeout_s

    def on_request(
        self,
        now: float,
        latency_s: float,
        wake_delay_s: float,
        idle_before_s: float,
    ) -> TimeoutUpdate:
        del now, latency_s, wake_delay_s
        if idle_before_s >= self.window_s and idle_before_s > 0.0:
            self._intervals.append(idle_before_s)
        return NO_CHANGE

    def on_period(self, now: float) -> TimeoutUpdate:
        """Refit and retune; keep the old timeout on thin data."""
        intervals, self._intervals = self._intervals, []
        if len(intervals) < MIN_INTERVALS:
            return NO_CHANGE
        fit = fit_moments(intervals)
        self.timeout_s = optimal_timeout(fit, self.break_even_s)
        self.history.append((now, self.timeout_s))
        return self.timeout_s
