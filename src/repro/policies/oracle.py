"""Offline oracle spin-down (reference bound; extension).

The paper cites the oracle of [16] as the yardstick the 2T and AD
policies approach.  With future knowledge, the optimal per-gap decision
is: spin down immediately after the last request iff the coming idle gap
exceeds the break-even time; otherwise stay spinning.  The engine feeds
the policy the next arrival time at every idle start.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import PolicyError
from repro.policies.base import DiskPolicy, TimeoutUpdate


class OraclePolicy(DiskPolicy):
    """Per-gap optimal spin-down using the engine's arrival lookahead."""

    name = "OR"

    def __init__(self, break_even_s: float) -> None:
        if break_even_s <= 0:
            raise PolicyError("break-even time must be positive")
        self.break_even_s = break_even_s

    def initial_timeout(self) -> Optional[float]:
        return None  # decided gap by gap

    def on_idle_start(
        self, completion_s: float, next_arrival_s: Optional[float]
    ) -> TimeoutUpdate:
        if next_arrival_s is None:
            # Trace over: spinning down always pays at the tail.
            return 0.0
        gap = next_arrival_s - completion_s
        if gap > self.break_even_s:
            return 0.0
        return math.inf  # stay up through this gap
