"""Run the paper's full method comparison on one workload."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.config.machine import MachineConfig
from repro.errors import SimulationError
from repro.policies.registry import MethodSpec, parse_method, standard_methods
from repro.sim.results import NormalizedResult, SimResult
from repro.sim.runner import run_method
from repro.traces.trace import Trace

#: Label of the normalisation baseline.
BASELINE_LABEL = "ALWAYS-ON"


@dataclass
class ComparisonResult:
    """All methods' results on one workload, plus normalisations."""

    results: Dict[str, SimResult] = field(default_factory=dict)

    @property
    def baseline(self) -> SimResult:
        if BASELINE_LABEL not in self.results:
            raise SimulationError("comparison is missing the always-on baseline")
        return self.results[BASELINE_LABEL]

    def normalized(self) -> List[NormalizedResult]:
        """Per-method normalised energies (paper Fig. 7 bar heights)."""
        base = self.baseline
        return [result.normalized_to(base) for result in self.results.values()]

    def normalized_by_label(self) -> Dict[str, NormalizedResult]:
        return {n.label: n for n in self.normalized()}

    def __getitem__(self, label: str) -> SimResult:
        return self.results[label]

    def labels(self) -> List[str]:
        return list(self.results.keys())


def compare_methods(
    trace: Trace,
    machine: MachineConfig,
    methods: Optional[Sequence[Union[str, MethodSpec]]] = None,
    duration_s: Optional[float] = None,
    warmup_s: float = 0.0,
) -> ComparisonResult:
    """Simulate every method on ``trace``.

    ``methods`` defaults to the paper's 16-bar set (joint + 14 +
    always-on).  Overloaded methods (the paper drops 2TFM-8GB/ADFM-8GB
    bars at 64 GB for exceeding the disk's bandwidth) are kept in the
    results and flagged by their >1.0 utilisation; nothing is dropped
    silently.
    """
    if methods is None:
        methods = standard_methods()
    specs = [parse_method(m) if isinstance(m, str) else m for m in methods]
    comparison = ComparisonResult()
    for spec in specs:
        comparison.results[spec.label] = run_method(
            spec, trace, machine, duration_s, warmup_s=warmup_s
        )
    return comparison
