"""Generic parameter sweeps over workloads and methods.

The experiment modules hard-code the paper's sweeps; this utility is the
open-ended version for users: give it a grid of workload parameters and
a list of methods, get back one flat row per (point, method) -- the same
shape every experiment table uses, ready for
:func:`repro.experiments.formatting.render_table`.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.config.machine import MachineConfig
from repro.errors import ReproError
from repro.policies.registry import MethodSpec
from repro.sim.compare import compare_methods
from repro.traces.specweb import generate_trace
from repro.units import GB, MB

#: Workload-grid keys the sweep understands.
WORKLOAD_KEYS = ("dataset_gb", "rate_mb", "popularity", "write_fraction")


def sweep(
    machine: MachineConfig,
    methods: Sequence[Union[str, MethodSpec]],
    grid: Dict[str, Iterable],
    duration_s: float,
    warmup_s: float = 0.0,
    seed: int = 42,
    defaults: Optional[Dict[str, float]] = None,
) -> List[Dict[str, object]]:
    """Run every method on every grid point.

    ``grid`` maps workload-parameter names (a subset of
    ``dataset_gb, rate_mb, popularity, write_fraction``) to the values to
    sweep; the cross product is explored.  ``defaults`` fills the
    parameters not swept.  Returns one row per (point, method) holding
    the swept parameters, the method label, normalised energies and the
    performance columns.
    """
    unknown = set(grid) - set(WORKLOAD_KEYS)
    if unknown:
        raise ReproError(
            f"unknown sweep parameters {sorted(unknown)}; "
            f"supported: {WORKLOAD_KEYS}"
        )
    if not grid:
        raise ReproError("empty sweep grid")
    if "ALWAYS-ON" not in {
        m if isinstance(m, str) else m.label for m in methods
    }:
        methods = list(methods) + ["ALWAYS-ON"]

    base = {
        "dataset_gb": 16.0,
        "rate_mb": 100.0,
        "popularity": 0.1,
        "write_fraction": 0.0,
    }
    base.update(defaults or {})

    keys = sorted(grid)
    rows: List[Dict[str, object]] = []
    for index, combo in enumerate(itertools.product(*(grid[k] for k in keys))):
        point = dict(base)
        point.update(dict(zip(keys, combo)))
        trace = generate_trace(
            dataset_bytes=point["dataset_gb"] * GB,
            data_rate=point["rate_mb"] * MB,
            duration_s=duration_s,
            popularity=point["popularity"],
            page_size=machine.page_bytes,
            seed=seed + index,
            file_scale=machine.scale,
            write_fraction=point["write_fraction"],
        )
        comparison = compare_methods(
            trace,
            machine,
            methods=methods,
            duration_s=duration_s,
            warmup_s=warmup_s,
        )
        normalized = comparison.normalized_by_label()
        for label, result in comparison.results.items():
            row: Dict[str, object] = {key: point[key] for key in keys}
            row.update(
                {
                    "method": label,
                    "total_energy": round(normalized[label].total_energy, 4),
                    "disk_energy": round(normalized[label].disk_energy, 4),
                    "memory_energy": round(
                        normalized[label].memory_energy, 4
                    ),
                    "latency_ms": round(result.mean_latency_s * 1e3, 3),
                    "utilization": round(result.utilization, 4),
                    "long_latency_per_s": round(
                        result.long_latency_per_s, 4
                    ),
                }
            )
            rows.append(row)
    return rows
