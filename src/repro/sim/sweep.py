"""Generic parameter sweeps over workloads and methods.

The experiment modules hard-code the paper's sweeps; this utility is the
open-ended version for users: give it a grid of workload parameters and
a list of methods, get back one flat row per (point, method) -- the same
shape every experiment table uses, ready for
:func:`repro.experiments.formatting.render_table`.

A sweep decomposes into independent campaign tasks
(:func:`sweep_plan`), so it can fan out over a process pool and share
the content-addressed result cache: pass ``jobs``/``cache`` to
:func:`sweep`, or feed the plan to
:func:`repro.campaign.executor.run_campaign` yourself.  Serial and
parallel runs assemble rows in the same task order, so their output is
identical byte for byte.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.campaign.plan import CampaignPlan, GridPoint, grid_tasks, run_plan, split_by_point
from repro.campaign.tasks import WorkloadSpec
from repro.config.machine import MachineConfig
from repro.errors import ReproError
from repro.policies.registry import MethodSpec, parse_method
from repro.sim.compare import BASELINE_LABEL

#: Workload-grid keys the sweep understands.
WORKLOAD_KEYS = ("dataset_gb", "rate_mb", "popularity", "write_fraction")

#: Grid values that must be strictly positive (a zero data set, rate or
#: popularity produces a degenerate or undefined workload).
_POSITIVE_KEYS = ("dataset_gb", "rate_mb", "popularity")


def _validate_and_dedupe(grid: Dict[str, Iterable]) -> Dict[str, List[float]]:
    """Check grid values are finite and in range; drop repeated values.

    Repeated values would re-simulate identical points (``itertools.product``
    happily enumerates them), so duplicates are removed up front, keeping
    first-occurrence order.
    """
    unknown = set(grid) - set(WORKLOAD_KEYS)
    if unknown:
        raise ReproError(
            f"unknown sweep parameters {sorted(unknown)}; "
            f"supported: {WORKLOAD_KEYS}"
        )
    if not grid:
        raise ReproError("empty sweep grid")
    clean: Dict[str, List[float]] = {}
    for key, values in grid.items():
        deduped = list(dict.fromkeys(values))
        if not deduped:
            raise ReproError(f"sweep parameter {key!r} has no values")
        for value in deduped:
            number = float(value)
            if not math.isfinite(number):
                raise ReproError(
                    f"sweep parameter {key!r} has non-finite value {value!r}"
                )
            if key in _POSITIVE_KEYS and number <= 0:
                raise ReproError(
                    f"sweep parameter {key!r} must be positive, got {value!r}"
                )
            if key == "write_fraction" and not 0.0 <= number <= 1.0:
                raise ReproError(
                    f"sweep parameter 'write_fraction' must be in [0, 1], "
                    f"got {value!r}"
                )
        clean[key] = deduped
    return clean


def sweep_plan(
    machine: MachineConfig,
    methods: Sequence[Union[str, MethodSpec]],
    grid: Dict[str, Iterable],
    duration_s: float,
    warmup_s: float = 0.0,
    seed: int = 42,
    defaults: Optional[Dict[str, float]] = None,
) -> CampaignPlan:
    """The sweep as a campaign plan: independent (point, method) tasks.

    ``grid`` maps workload-parameter names (a subset of
    ``dataset_gb, rate_mb, popularity, write_fraction``) to the values to
    sweep; the cross product is explored after validation and value
    deduplication.  ``defaults`` fills the parameters not swept.
    """
    clean = _validate_and_dedupe(grid)
    specs = [parse_method(m) if isinstance(m, str) else m for m in methods]
    if BASELINE_LABEL not in {spec.label for spec in specs}:
        specs = specs + [parse_method(BASELINE_LABEL)]

    base = {
        "dataset_gb": 16.0,
        "rate_mb": 100.0,
        "popularity": 0.1,
        "write_fraction": 0.0,
    }
    base.update(defaults or {})

    keys = sorted(clean)
    points: List[GridPoint] = []
    for index, combo in enumerate(itertools.product(*(clean[k] for k in keys))):
        point = dict(base)
        point.update(dict(zip(keys, combo)))
        workload = WorkloadSpec.for_machine(
            machine,
            dataset_gb=point["dataset_gb"],
            rate_mb=point["rate_mb"],
            popularity=point["popularity"],
            duration_s=duration_s,
            seed=seed + index,
            write_fraction=point["write_fraction"],
        )
        points.append(
            GridPoint(
                machine=machine,
                workload=workload,
                methods=tuple(specs),
                duration_s=duration_s,
                warmup_s=warmup_s,
                meta=tuple((key, point[key]) for key in keys),
            )
        )
    return CampaignPlan(
        tasks=grid_tasks(points), assemble=lambda p: _assemble(points, p)
    )


def _assemble(points, payloads) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for point, by_label in split_by_point(points, payloads):
        baseline = by_label[BASELINE_LABEL]
        for label, result in by_label.items():
            normalized = result.normalized_to(baseline)
            row: Dict[str, object] = dict(point.meta)
            row.update(
                {
                    "method": label,
                    "total_energy": round(normalized.total_energy, 4),
                    "disk_energy": round(normalized.disk_energy, 4),
                    "memory_energy": round(normalized.memory_energy, 4),
                    "latency_ms": round(result.mean_latency_s * 1e3, 3),
                    "utilization": round(result.utilization, 4),
                    "long_latency_per_s": round(
                        result.long_latency_per_s, 4
                    ),
                }
            )
            rows.append(row)
    return rows


def sweep(
    machine: MachineConfig,
    methods: Sequence[Union[str, MethodSpec]],
    grid: Dict[str, Iterable],
    duration_s: float,
    warmup_s: float = 0.0,
    seed: int = 42,
    defaults: Optional[Dict[str, float]] = None,
    jobs: int = 1,
    cache=None,
) -> List[Dict[str, object]]:
    """Run every method on every grid point.

    Returns one row per (point, method) holding the swept parameters,
    the method label, normalised energies and the performance columns.
    ``jobs > 1`` fans the grid out over a process pool; pass a
    :class:`repro.campaign.cache.ResultCache` as ``cache`` to skip
    already-computed points.  Both options produce rows identical to the
    serial, uncached run.
    """
    plan = sweep_plan(
        machine,
        methods,
        grid,
        duration_s,
        warmup_s=warmup_s,
        seed=seed,
        defaults=defaults,
    )
    if jobs <= 1 and cache is None:
        return run_plan(plan)
    from repro.campaign.executor import run_campaign

    report = run_campaign(plan.tasks, jobs=max(jobs, 1), cache=cache)
    failed = report.failures()
    if failed:
        first = failed[0]
        raise ReproError(
            f"sweep: {len(failed)} task(s) failed; first: "
            f"{first.label}: {first.error}"
        )
    return plan.assemble(report.payloads())
