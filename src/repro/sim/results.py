"""Simulation result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.joint import PeriodDecision
from repro.disk.energy import DiskEnergy
from repro.memory.energy import MemoryEnergy
from repro.sim.metrics import PeriodMetrics


@dataclass(frozen=True)
class RegretSummary:
    """How far one run landed from the offline optimum (see
    :mod:`repro.analysis.regret` for the full report and the bound's
    assumptions)."""

    #: Belady/OPT misses under the run's own capacity schedule.
    opt_misses: int
    #: Online misses minus OPT misses (>= 0 by the one-sided oracle).
    excess_misses: int
    #: Energy no schedule obeying the recorded capacities can beat, J.
    energy_lower_bound_j: float
    #: Online total energy over the lower bound (>= 1.0).
    energy_ratio: float


@dataclass(frozen=True)
class SimResult:
    """Outcome of running one power-management method on one trace."""

    label: str
    duration_s: float
    #: Energy, joules.
    memory_energy_j: float
    disk_energy_j: float
    #: Detailed accounting objects.
    memory_energy: MemoryEnergy
    disk_energy: DiskEnergy
    #: Performance.
    total_accesses: int
    disk_page_accesses: int
    disk_requests: int
    #: Dirty pages written back to disk (0 for read-only workloads).
    disk_write_pages: int
    mean_latency_s: float
    long_latency: int
    wake_long_latency: int
    spin_down_cycles: int
    utilization: float
    #: Per-period series (Fig. 9, Table IV diagnostics).
    periods: List[PeriodMetrics] = field(default_factory=list)
    #: Joint-manager decisions (empty for other methods).
    decisions: List[PeriodDecision] = field(default_factory=list)
    #: Which replay loop produced this result ("scalar", "vectorized" for
    #: fixed-capacity fast replays, or "epoch" for joint-manager fast
    #: replays); all paths produce bit-identical numbers, this records
    #: the one taken.
    replay_mode: str = "scalar"
    #: Offline-optimality regret (None unless the run asked for it via
    #: ``run_method(..., regret=True)`` / ``repro regret``).
    regret: Optional[RegretSummary] = None

    @property
    def total_energy_j(self) -> float:
        return self.memory_energy_j + self.disk_energy_j

    @property
    def long_latency_per_s(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.long_latency / self.duration_s

    @property
    def miss_ratio(self) -> float:
        if self.total_accesses == 0:
            return 0.0
        return self.disk_page_accesses / self.total_accesses

    @property
    def average_power_w(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.total_energy_j / self.duration_s

    def normalized_to(self, baseline: "SimResult") -> "NormalizedResult":
        """Energies as fractions of a baseline run (the always-on method)."""
        def ratio(x: float, base: float) -> float:
            return x / base if base > 0 else 0.0

        return NormalizedResult(
            label=self.label,
            total_energy=ratio(self.total_energy_j, baseline.total_energy_j),
            disk_energy=ratio(self.disk_energy_j, baseline.disk_energy_j),
            memory_energy=ratio(self.memory_energy_j, baseline.memory_energy_j),
            mean_latency_s=self.mean_latency_s,
            utilization=self.utilization,
            long_latency_per_s=self.long_latency_per_s,
        )


@dataclass(frozen=True)
class NormalizedResult:
    """The six quantities of the paper's Fig. 7, one method at one workload."""

    label: str
    total_energy: float
    disk_energy: float
    memory_energy: float
    mean_latency_s: float
    utilization: float
    long_latency_per_s: float
