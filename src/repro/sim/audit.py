"""Result auditing: conservation and sanity invariants of a finished run.

A simulation that silently drops time or double counts energy produces
plausible-looking but wrong comparisons.  ``audit_result`` checks every
invariant a correct run must satisfy and returns the list of violations
(empty = clean); ``assert_clean`` raises on the first problem.  The test
suite audits every engine run it makes, and ``run_method`` can be asked
to audit via ``audit=True``.

Invariants:

* disk time conservation: active + idle + standby + transition time
  accounts for the full measured window (within tolerance; a cycle that
  was still spun down at the end may leave its spin-up unused),
* all time buckets and energy buckets are non-negative,
* disk utilisation equals active time over the window,
* the disk served exactly the misses the cache reported,
* accesses = hits + misses, and latency statistics are consistent
  (mean * accesses = sum, max >= mean),
* memory dynamic energy equals accesses x per-access energy,
* per-period metrics sum to the run totals.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config.machine import MachineConfig
from repro.errors import SimulationError
from repro.sim.results import SimResult


def conservation_tolerance(machine: MachineConfig) -> float:
    """Default slack for disk time conservation, in seconds.

    One transition time: a cycle still spun down when the run ends has
    recorded its spin-down but never the matching spin-up, so up to one
    transition of the window legitimately goes unaccounted.
    """
    return max(machine.disk.transition_time_s, 1e-6)


def audit_result(
    result: SimResult,
    machine: MachineConfig,
    tolerance_s: Optional[float] = None,
) -> List[str]:
    """Return human-readable descriptions of every violated invariant.

    ``tolerance_s`` bounds the disk time-conservation slack; it defaults
    to :func:`conservation_tolerance`.  Callers with an event-level energy
    oracle (``repro.verify.oracles.integrate_disk_events``) can pass a
    much tighter bound.
    """
    problems: List[str] = []
    if tolerance_s is None:
        tolerance_s = conservation_tolerance(machine)
    if tolerance_s < 0:
        raise SimulationError("audit tolerance must be non-negative")
    tolerance = tolerance_s

    # --- disk time conservation -----------------------------------------------
    disk = result.disk_energy
    accounted = disk.active_s + disk.idle_s + disk.standby_s + disk.transition_s
    overhang = accounted - result.duration_s
    if overhang > tolerance:
        problems.append(
            f"disk accounts {accounted:.3f}s over a {result.duration_s:.3f}s "
            "window (double counting)"
        )
    if overhang < -tolerance:
        problems.append(
            f"disk accounts only {accounted:.3f}s of {result.duration_s:.3f}s "
            "(missing time)"
        )

    for name, value in (
        ("active", disk.active_s),
        ("idle", disk.idle_s),
        ("standby", disk.standby_s),
        ("transition", disk.transition_s),
    ):
        if value < 0:
            problems.append(f"negative disk {name} time {value}")

    # --- utilisation definition -------------------------------------------------
    if result.duration_s > 0:
        expected_util = disk.active_s / result.duration_s
        if abs(result.utilization - expected_util) > 1e-9:
            problems.append(
                f"utilisation {result.utilization} != active/duration "
                f"{expected_util}"
            )

    # --- request bookkeeping ------------------------------------------------------
    expected_requests = result.disk_page_accesses + result.disk_write_pages
    if disk.requests != expected_requests:
        problems.append(
            f"disk served {disk.requests} requests but the cache reported "
            f"{result.disk_page_accesses} misses + "
            f"{result.disk_write_pages} write-backs"
        )
    if result.disk_page_accesses > result.total_accesses:
        problems.append("more misses than accesses")
    if result.disk_requests > max(result.disk_page_accesses, 0):
        problems.append("more merged requests than page misses")
    expected_bytes = expected_requests * machine.page_bytes
    if disk.bytes_transferred != expected_bytes:
        problems.append(
            f"disk moved {disk.bytes_transferred} bytes, expected "
            f"{expected_bytes}"
        )

    # --- energies -------------------------------------------------------------------
    memory = result.memory_energy
    for name, value in (
        ("static", memory.static_j),
        ("dynamic", memory.dynamic_j),
        ("transition", memory.transition_j),
    ):
        if value < 0:
            problems.append(f"negative memory {name} energy {value}")
    if memory.accesses != result.total_accesses:
        problems.append(
            f"memory charged {memory.accesses} accesses, metrics saw "
            f"{result.total_accesses}"
        )
    expected_dynamic = (
        result.total_accesses * machine.memory.dynamic_energy_per_access
    )
    if abs(memory.dynamic_j - expected_dynamic) > 1e-6 * max(expected_dynamic, 1):
        problems.append(
            f"memory dynamic energy {memory.dynamic_j} != accesses x "
            f"per-access = {expected_dynamic}"
        )
    if result.disk_energy_j < 0 or result.memory_energy_j < 0:
        problems.append("negative total energy")

    # --- latency statistics -----------------------------------------------------------
    if result.long_latency < result.wake_long_latency:
        problems.append("wake-attributed long latencies exceed the total")
    if result.long_latency > result.disk_page_accesses:
        problems.append("more long-latency accesses than disk accesses")
    if result.mean_latency_s < 0:
        problems.append("negative mean latency")

    # --- per-period consistency -----------------------------------------------------------
    if result.periods:
        for key, total in (
            ("accesses", result.total_accesses),
            ("disk_page_accesses", result.disk_page_accesses),
            ("long_latency", result.long_latency),
        ):
            period_sum = sum(getattr(p, key) for p in result.periods)
            if period_sum != total:
                problems.append(
                    f"period {key} sum {period_sum} != run total {total}"
                )
        spans = [p.duration_s for p in result.periods]
        if any(span < 0 for span in spans):
            problems.append("a period has negative duration")
        if abs(sum(spans) - result.duration_s) > 1e-6:
            problems.append(
                f"period spans sum to {sum(spans):.3f}s over a "
                f"{result.duration_s:.3f}s window"
            )

    return problems


def assert_clean(
    result: SimResult,
    machine: MachineConfig,
    tolerance_s: Optional[float] = None,
) -> SimResult:
    """Raise ``AssertionError`` listing every violated invariant."""
    problems = audit_result(result, machine, tolerance_s=tolerance_s)
    if problems:
        raise AssertionError(
            f"audit of {result.label!r} found {len(problems)} problem(s):\n  "
            + "\n  ".join(problems)
        )
    return result
