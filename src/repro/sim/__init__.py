"""Trace-driven simulation: engine, metrics and multi-method comparison."""

from repro.sim.audit import assert_clean, audit_result
from repro.sim.compare import ComparisonResult, compare_methods
from repro.sim.prefill import warm_start_pages
from repro.sim.replay import RunSpec, fingerprint
from repro.sim.sweep import sweep
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsCollector, PeriodMetrics
from repro.sim.results import SimResult
from repro.sim.runner import run_method

__all__ = [
    "ComparisonResult",
    "RunSpec",
    "assert_clean",
    "audit_result",
    "fingerprint",
    "sweep",
    "warm_start_pages",
    "MetricsCollector",
    "PeriodMetrics",
    "SimResult",
    "SimulationEngine",
    "compare_methods",
    "run_method",
]
