"""Run one named method on one trace."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.cache.profile import TraceProfile, get_profile, kernels_enabled
from repro.config.machine import MachineConfig
from repro.core.joint import JointPowerManager
from repro.errors import SimulationError
from repro.memory.system import supports_profiled_replay
from repro.policies.registry import MethodSpec, parse_method
from repro.sim.engine import SimulationEngine
from repro.sim.prefill import warm_start_pages
from repro.sim.results import SimResult
from repro.traces.trace import Trace


def run_method(
    method: Union[str, MethodSpec],
    trace: Trace,
    machine: MachineConfig,
    duration_s: Optional[float] = None,
    warmup_s: float = 0.0,
    warm_start: bool = True,
    audit: bool = False,
    profile: Union[str, TraceProfile, None] = "auto",
    regret: bool = False,
) -> SimResult:
    """Simulate ``method`` (a paper-style name or a spec) on ``trace``.

    ``warm_start`` prefills each cache with the trace's reused pages,
    emulating the long-running server the paper collects traces from
    (see :mod:`repro.sim.prefill`).  ``audit=True`` verifies the run's
    conservation invariants (:mod:`repro.sim.audit`) before returning.
    ``regret=True`` additionally scores the finished run against the
    offline oracles (:mod:`repro.analysis.regret`) and fills in
    :attr:`SimResult.regret`; it requires ``warmup_s == 0`` and a
    read-only trace.

    ``profile`` controls the vectorized replay kernels: ``"auto"`` (the
    default) computes or recalls a :class:`TraceProfile` when the run is
    eligible for the fast path, ``None`` forces the scalar loop, and an
    explicit :class:`TraceProfile` is passed straight to the engine.
    Either way the numbers are bit-identical; only wall-clock changes.

    Oracle-disk methods run two passes: the first (always-on) collects the
    miss times the oracle needs as its future knowledge; the memory
    configuration, and hence the miss stream, is identical in both passes.
    """
    spec = parse_method(method) if isinstance(method, str) else method
    prefill = warm_start_pages(trace) if warm_start else []

    if spec.is_joint:
        manager = JointPowerManager(
            machine,
            enforce_constraints=spec.enforce_constraints,
            adapt_memory=spec.adapt_memory,
            adapt_timeout=spec.adapt_timeout,
        )
        memory = spec.build_memory_system(machine)
        memory.resize(0.0, manager.memory_bytes)
        if prefill:
            memory.prefill(prefill)
            # The tracker sees the full warm history: pages beyond the
            # resident tail become ghost entries, exactly as a long-running
            # extended LRU list would hold them.
            manager.prefill(prefill)
        run_profile = _resolve_profile(
            profile, trace, warm_start, memory, joint=True
        )
        engine = SimulationEngine(
            machine,
            memory,
            joint_manager=manager,
            label=spec.label,
        )
        return _finish(
            engine.run(trace, duration_s, warmup_s=warmup_s, profile=run_profile),
            machine,
            audit,
            trace=trace,
            warm_start=warm_start,
            regret=regret,
        )

    policy = spec.build_disk_policy(machine)
    memory = spec.build_memory_system(machine)
    memory.prefill(prefill)
    run_profile = _resolve_profile(profile, trace, warm_start, memory)
    hints = None
    if spec.disk == "OR":
        hints = _collect_miss_times(
            spec, trace, machine, duration_s, prefill, run_profile
        )
    engine = SimulationEngine(
        machine,
        memory,
        disk_policy=policy,
        idle_hints=hints,
        label=spec.label,
    )
    return _finish(
        engine.run(trace, duration_s, warmup_s=warmup_s, profile=run_profile),
        machine,
        audit,
        trace=trace,
        warm_start=warm_start,
        regret=regret,
    )


def run_chunked(
    method: Union[str, MethodSpec],
    source,
    machine: MachineConfig,
    duration_s: Optional[float] = None,
    warmup_s: float = 0.0,
    prefill: Optional[list] = None,
    label: Optional[str] = None,
) -> SimResult:
    """Replay a :class:`~repro.traces.chunked.ChunkedTrace` chunk by chunk.

    Drives the chunks through a
    :class:`~repro.service.streaming.StreamingManager`, so the run
    inherits the streaming layer's bit-exactness contract: the result is
    identical to ``run_method`` on the materialized trace with the same
    ``prefill`` and duration -- but peak memory is bounded by the chunk
    size plus the streaming buffer (one epoch of pending accesses),
    never the full trace.  The default duration rounds the last access
    up to a whole number of periods, exactly as ``engine.run`` does.

    ``prefill`` seeds the caches (``run_method``'s ``warm_start`` needs
    the full trace to compute its prefill, so chunked runs default to a
    cold start; pass :func:`repro.sim.prefill.warm_start_pages` of a
    materialized twin when warm parity is wanted).
    """
    from repro.service.streaming import StreamingManager

    stream = StreamingManager(
        method,
        machine,
        prefill=prefill,
        warmup_s=warmup_s,
        expect_writes=bool(getattr(source, "has_writes", False)),
        label=label,
    )
    for chunk in source.chunks():
        stream.feed(chunk.times, chunk.pages, chunk.writes)
    return stream.close(duration_s)


def _resolve_profile(
    profile: Union[str, TraceProfile, None],
    trace: Trace,
    warm_start: bool,
    memory,
    joint: bool = False,
) -> Optional[TraceProfile]:
    """The profile to hand the engine, or None for the scalar loop.

    ``"auto"`` skips the (one-pass, but O(trace)) profile build whenever
    the run would fall back anyway, and honours the ``$REPRO_KERNELS``
    kill switch.  The disable model never needs a profile (its fast
    mode replays from live bank state), and joint write-back runs stay
    scalar, so neither triggers a build.
    """
    if profile is None:
        return None
    if isinstance(profile, TraceProfile):
        return profile
    if profile != "auto":
        raise SimulationError(
            "profile must be 'auto', None or a TraceProfile"
        )
    if not kernels_enabled():
        return None
    if not supports_profiled_replay(memory):
        return None
    if joint and trace.writes is not None and bool(trace.writes.any()):
        return None
    return get_profile(trace, warm_start=warm_start)


def _finish(
    result: SimResult,
    machine: MachineConfig,
    audit: bool,
    trace: Optional[Trace] = None,
    warm_start: bool = True,
    regret: bool = False,
) -> SimResult:
    if audit:
        from repro.sim.audit import assert_clean

        assert_clean(result, machine)
    if regret:
        from repro.analysis.regret import attach_regret

        result = attach_regret(result, trace, machine, warm_start=warm_start)
    return result


def _collect_miss_times(
    spec: MethodSpec,
    trace: Trace,
    machine: MachineConfig,
    duration_s: Optional[float],
    prefill,
    run_profile: Optional[TraceProfile] = None,
) -> np.ndarray:
    """First pass for the oracle: the miss arrival times of this memory config.

    The miss stream depends only on the memory configuration, not on the
    disk policy, so an always-on pass observes exactly the arrivals the
    oracle-managed disk will see.
    """
    from repro.policies.always_on import AlwaysOnPolicy

    memory = spec.build_memory_system(machine)
    memory.prefill(prefill)
    engine = SimulationEngine(
        machine,
        memory,
        disk_policy=AlwaysOnPolicy(),
        label=f"{spec.label}-pass1",
    )
    miss_times = []
    real_submit = engine.disk.submit

    def recording_submit(now, num_pages, sequential=False, page=None):
        miss_times.append(now)
        return real_submit(now, num_pages, sequential=sequential, page=page)

    # The instance-level patch also opts this run out of the miss-run
    # kernel: kernels._batchable_disk sees "submit" in the disk's
    # __dict__ and demotes to the vectorized path, so every miss still
    # flows through recording_submit one call at a time.
    engine.disk.submit = recording_submit  # type: ignore[method-assign]
    engine.run(trace, duration_s, profile=run_profile)
    return np.asarray(miss_times, dtype=float)
