"""Vectorized replay kernels: segment-at-a-time trace consumption.

The scalar engine loop dispatches one Python call chain per access.  On
the dominant workload shapes the outcome of every access is already
known before the replay starts: a
:class:`repro.cache.profile.TraceProfile` gives each access's stack
distance, and the LRU inclusion property turns distances into hits.
These kernels exploit that to replay *runs of consecutive hits as single
segments*: numpy locates the misses and the period boundaries, and
everything between two such events collapses into two integer additions
(metrics) plus one batched energy charge.  Misses, period boundaries,
policy callbacks and disk accounting still run through the exact scalar
code paths (:meth:`SimulationEngine._serve_miss` / ``_drain_events``),
in the exact same order and with the exact same floating-point
operations, so a fast replay is bit-identical to the scalar loop -- the
differential ``kernels``/``epoch`` checks and ``tests/sim/test_kernels.py``
assert as much.

Two fast modes exist:

* ``"vectorized"`` -- fixed-capacity runs (no joint manager) under a
  memory system that opted into profiled replay (nap, power-down): one
  ``hit_mask`` call decides every access up front.
* ``"epoch"`` -- joint-manager runs.  Between two period boundaries the
  cache capacity is fixed, so the replay walks the trace *epoch by
  epoch*: each epoch's ``(times, depths)`` slice feeds the manager's
  per-period log as one batch (:meth:`JointPowerManager.record_profiled`
  -- the profile already holds exactly the depths the manager's own
  tracker would have computed), hits collapse into segments at the
  epoch's capacity, and every boundary fires one at a time through
  ``_drain_events`` so each resize is observed before the next epoch is
  classified.  Because the joint manager may resize *up*, the cache is
  not always full; the kernel tracks the resident-page count ``r``
  analytically (hit iff ``0 <= depth < r``; each miss grows ``r`` to
  capacity; a down-resize clamps it), which is exactly the LRU stack's
  inclusion behaviour.

Fallback conditions (any one routes the run through the scalar loop):

* the memory system did not opt into profiled replay
  (:data:`MemorySystem.profiled_replay`) -- the disable model
  invalidates cached pages as banks disable, so hit/miss depends on
  timing the profile cannot see;
* a joint run under anything but the nap model (only nap is resizable);
* the trace carries writes (write-back flushing interleaves with the
  access stream, and dirty/eviction identity needs the live LRU);
* no profile was supplied, or it does not cover the trace.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.cache.profile import TraceProfile
from repro.cache.stack_distance import COLD
from repro.errors import SimulationError
from repro.memory.system import NapMemorySystem, supports_profiled_replay

#: SimResult.replay_mode values.
MODE_SCALAR = "scalar"
MODE_VECTORIZED = "vectorized"
MODE_EPOCH = "epoch"


def select_mode(
    engine, trace, profile: Optional[TraceProfile]
) -> Tuple[str, Optional[str]]:
    """Pick the replay mode for this run.

    Returns ``(mode, reason)``: ``reason`` explains a scalar fallback and
    is None when a fast mode applies.
    """
    if profile is None:
        return MODE_SCALAR, "no trace profile supplied"
    if len(profile) != trace.num_accesses:
        return MODE_SCALAR, "profile does not cover the trace"
    if trace.writes is not None and bool(trace.writes.any()):
        return MODE_SCALAR, "write-back traces interleave flushes with accesses"
    if engine.manager is not None:
        if type(engine.memory) is not NapMemorySystem:
            return (
                MODE_SCALAR,
                "joint replay supports only the nap memory model, not "
                f"{type(engine.memory).__name__}",
            )
        return MODE_EPOCH, None
    if not supports_profiled_replay(engine.memory):
        return (
            MODE_SCALAR,
            f"{type(engine.memory).__name__} hit/miss outcomes depend on "
            "state the profile cannot predict",
        )
    return MODE_VECTORIZED, None


def fast_path_reason(engine, trace, profile: Optional[TraceProfile]) -> Optional[str]:
    """Why this run cannot take a fast path (None = it can)."""
    return select_mode(engine, trace, profile)[1]


def replay_vectorized(engine, st, trace, profile: TraceProfile, duration_s: float) -> None:
    """Drive one fixed-capacity replay through the segmented fast path.

    ``st`` is the engine's mutable :class:`_ReplayState`; events and
    misses go through the same engine methods the scalar loop uses.
    """
    times = trace.times
    pages = trace.pages
    # Scalar loop: `if now >= duration_s: break` -- keep accesses < duration.
    n = int(np.searchsorted(times, duration_s, side="left"))
    hits = profile.hit_mask(engine.memory.capacity_pages, n)
    miss_indices = np.flatnonzero(~hits)

    memory = engine.memory
    drain = engine._drain_events
    serve_miss = engine._serve_miss
    pos = 0
    for m in miss_indices.tolist():
        if pos < m:
            _consume_hits(engine, st, memory, times, pages, pos, m, duration_s)
        now = float(times[m])
        page = int(pages[m])
        drain(st, now)
        memory.charge_page_access(now, page)
        serve_miss(st, now, page)
        pos = m + 1
    if pos < n:
        _consume_hits(engine, st, memory, times, pages, pos, n, duration_s)


def replay_epoch(engine, st, trace, profile: TraceProfile, duration_s: float) -> None:
    """Drive one joint-manager replay epoch by epoch.

    Within an epoch the capacity is fixed; every boundary fires
    individually through ``_drain_events`` (running ``end_period`` and
    the resize through the scalar code path), and the resident-page
    count is re-clamped after each so the next epoch's hit
    classification sees every intermediate resize.
    """
    times = trace.times
    pages = trace.pages
    depths = profile.depths
    n = int(np.searchsorted(times, duration_s, side="left"))

    memory = engine.memory
    manager = engine.manager
    drain = engine._drain_events
    serve_miss = engine._serve_miss

    # Invariant: the resident set is the top-`resident` pages of the
    # full-history LRU stack, so an access hits iff 0 <= depth < resident.
    # Holds after prefill (the warm start keeps the hottest tail -- the
    # stack top) and is maintained below: hits reorder within the top,
    # each miss loads at the top (growing the set until it reaches
    # capacity), and a shrink evicts from the bottom.
    resident = len(memory.cache)

    pos = 0
    while pos < n:
        boundary = st.next_boundary
        if boundary > st.duration_s:
            end = n
        else:
            # An access exactly at the boundary belongs to the next
            # epoch: the scalar loop drains events before recording it.
            end = min(int(np.searchsorted(times, boundary, side="left")), n)
        if end > pos:
            resident = _replay_epoch_segment(
                engine, st, memory, manager, times, pages, depths,
                pos, end, duration_s, resident,
            )
            pos = end
            if pos >= n:
                break
        # The next access sits at or past the boundary: fire exactly this
        # boundary (end_period + resize + timeout through the scalar
        # path), then observe the resize before classifying further.
        drain(st, boundary)
        resident = min(resident, memory.capacity_pages)


def _replay_epoch_segment(
    engine, st, memory, manager, times, pages, depths,
    lo: int, hi: int, duration_s: float, resident: int,
) -> int:
    """Replay accesses ``[lo, hi)`` of one epoch; returns the new resident count."""
    capacity = memory.capacity_pages
    # Feed the whole epoch's per-period log in one batch.  The manager
    # only reads it at end_period, so batching ahead of the misses is
    # equivalent to the scalar loop's interleaved record_access calls.
    manager.record_profiled(times[lo:hi], depths[lo:hi])

    miss_indices, resident = _epoch_misses(depths, lo, hi, resident, capacity)

    serve_miss = engine._serve_miss
    drain = engine._drain_events
    pos = lo
    for m in miss_indices.tolist():
        if pos < m:
            _consume_hits(engine, st, memory, times, pages, pos, m, duration_s)
        now = float(times[m])
        page = int(pages[m])
        drain(st, now)
        memory.charge_page_access(now, page)
        serve_miss(st, now, page)
        pos = m + 1
    if pos < hi:
        _consume_hits(engine, st, memory, times, pages, pos, hi, duration_s)
    return resident


def _epoch_misses(
    depths, lo: int, hi: int, resident: int, capacity: int
) -> Tuple[np.ndarray, int]:
    """Miss indices within ``[lo, hi)`` at fixed ``capacity``.

    Returns ``(global_miss_indices, resident_after)``.  With the cache
    full (``resident == capacity``) the Mattson rule vectorizes
    directly.  After an up-resize the cache is partially filled: only
    accesses that are cold or reach at least the starting resident count
    can miss, and each miss grows the resident set by one until it hits
    capacity -- walk exactly those candidates, then vectorize the rest.
    """
    window = depths[lo:hi]
    if resident >= capacity:
        miss = (window == COLD) | (window >= capacity)
        return np.flatnonzero(miss) + lo, resident

    candidates = np.flatnonzero((window == COLD) | (window >= resident))
    cand_depths = window[candidates].tolist()
    cand_list = candidates.tolist()
    misses = []
    for j, depth in enumerate(cand_depths):
        if resident >= capacity:
            # Filled up mid-epoch: the remaining candidates follow the
            # full-cache rule.
            rest = candidates[j:]
            rest_d = window[rest]
            rest_miss = rest[(rest_d == COLD) | (rest_d >= capacity)]
            return (
                np.concatenate(
                    [np.asarray(misses, dtype=np.int64), rest_miss]
                ) + lo,
                resident,
            )
        if depth != COLD and depth < resident:
            # The cache grew past this depth since the candidate scan.
            continue
        misses.append(cand_list[j])
        resident += 1
    return np.asarray(misses, dtype=np.int64) + lo, resident


def _consume_hits(
    engine, st, memory, times, pages, lo: int, hi: int, duration_s: float
) -> None:
    """Account the hit run ``times[lo:hi]``, firing events in time order.

    Within the run the only pending events are period boundaries (the
    fast paths exclude write-back flushes); each boundary splits the run
    with one ``searchsorted``.  An access at exactly the boundary time
    fires the boundary first (matching the scalar ``drain_events``
    ordering), hence ``side='left'``.
    """
    while lo < hi:
        event_at = st.next_boundary
        if event_at > duration_s:
            cut = hi
        else:
            cut = min(max(int(np.searchsorted(times, event_at, side="left")), lo), hi)
        count = cut - lo
        if count > 0:
            memory.charge_hit_run(times, pages, lo, cut)
            st.metrics.on_hits(count)
            lo = cut
        if lo < hi:
            drained_until = float(times[lo])
            engine._drain_events(st, drained_until)
            if st.next_boundary == event_at:
                raise SimulationError(
                    "vectorized replay made no progress at a period boundary"
                )
