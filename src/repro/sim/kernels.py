"""Vectorized replay kernels: segment-at-a-time trace consumption.

The scalar engine loop dispatches one Python call chain per access.  On
the dominant workload shape -- a read-only trace, a fixed-capacity LRU
cache under the nap memory model, any disk policy -- the outcome of every
access is already known before the replay starts: a
:class:`repro.cache.profile.TraceProfile` gives each access's stack
distance, and distance ``< capacity`` is a hit.  These kernels exploit
that to replay *runs of consecutive hits as single segments*: numpy
locates the misses and the period boundaries, and everything between two
such events collapses into two integer additions (metrics) plus one
dynamic-energy charge.  Misses, period boundaries, policy callbacks and
disk accounting still run through the exact scalar code paths
(:meth:`SimulationEngine._serve_miss` / ``_drain_events``), in the exact
same order and with the exact same floating-point operations, so a
vectorized replay is bit-identical to the scalar loop -- the differential
``kernels`` check and ``tests/sim/test_kernels.py`` assert as much.

Fallback conditions (any one routes the run through the scalar loop):

* a joint manager owns the run (it resizes memory at period boundaries,
  so per-access recency bookkeeping must stay live),
* the memory system is not exactly :class:`NapMemorySystem` (power-down /
  disable models charge energy per bank touch),
* the trace carries writes (write-back flushing interleaves with the
  access stream),
* no profile was supplied, or it does not cover the trace.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.profile import TraceProfile
from repro.errors import SimulationError
from repro.memory.system import NapMemorySystem

#: SimResult.replay_mode values.
MODE_SCALAR = "scalar"
MODE_VECTORIZED = "vectorized"


def fast_path_reason(engine, trace, profile: Optional[TraceProfile]) -> Optional[str]:
    """Why this run cannot take the vectorized path (None = it can)."""
    if profile is None:
        return "no trace profile supplied"
    if engine.manager is not None:
        return "joint manager resizes memory per period"
    if type(engine.memory) is not NapMemorySystem:
        return f"{type(engine.memory).__name__} charges energy per access placement"
    if trace.writes is not None and bool(trace.writes.any()):
        return "write-back traces interleave flushes with accesses"
    if len(profile) != trace.num_accesses:
        return "profile does not cover the trace"
    return None


def replay_vectorized(engine, st, trace, profile: TraceProfile, duration_s: float) -> None:
    """Drive one replay through the segmented fast path.

    ``st`` is the engine's mutable :class:`_ReplayState`; events and
    misses go through the same engine methods the scalar loop uses.
    """
    times = trace.times
    pages = trace.pages
    # Scalar loop: `if now >= duration_s: break` -- keep accesses < duration.
    n = int(np.searchsorted(times, duration_s, side="left"))
    hits = profile.hit_mask(engine.memory.capacity_pages, n)
    miss_indices = np.flatnonzero(~hits)

    memory = engine.memory
    drain = engine._drain_events
    serve_miss = engine._serve_miss
    pos = 0
    for m in miss_indices.tolist():
        if pos < m:
            _consume_hits(engine, st, memory, times, pos, m, duration_s)
        now = float(times[m])
        page = int(pages[m])
        drain(st, now)
        memory.charge_accesses(now, 1)
        serve_miss(st, now, page)
        pos = m + 1
    if pos < n:
        _consume_hits(engine, st, memory, times, pos, n, duration_s)


def _consume_hits(engine, st, memory, times, lo: int, hi: int, duration_s: float) -> None:
    """Account the hit run ``times[lo:hi]``, firing events in time order.

    Within the run the only pending events are period boundaries (the
    fast path excludes write-back flushes); each boundary splits the run
    with one ``searchsorted``.  An access at exactly the boundary time
    fires the boundary first (matching the scalar ``drain_events``
    ordering), hence ``side='left'``.
    """
    while lo < hi:
        event_at = st.next_boundary
        if event_at > duration_s:
            cut = hi
        else:
            cut = min(max(int(np.searchsorted(times, event_at, side="left")), lo), hi)
        count = cut - lo
        if count > 0:
            memory.charge_accesses(float(times[cut - 1]), count)
            st.metrics.on_hits(count)
            lo = cut
        if lo < hi:
            drained_until = float(times[lo])
            engine._drain_events(st, drained_until)
            if st.next_boundary == event_at:
                raise SimulationError(
                    "vectorized replay made no progress at a period boundary"
                )
