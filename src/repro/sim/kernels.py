"""Vectorized replay kernels: segment-at-a-time trace consumption.

The scalar engine loop dispatches one Python call chain per access.  On
the dominant workload shapes the outcome of every access is already
known before the replay starts: a
:class:`repro.cache.profile.TraceProfile` gives each access's stack
distance, and the LRU inclusion property turns distances into hits.
These kernels exploit that to replay *runs of consecutive hits as single
segments*: numpy locates the misses and the period boundaries, and
everything between two such events collapses into two integer additions
(metrics) plus one batched energy charge.  Misses, period boundaries,
policy callbacks and disk accounting still run through the exact scalar
code paths (:meth:`SimulationEngine._serve_miss` / ``_drain_events``),
in the exact same order and with the exact same floating-point
operations, so a fast replay is bit-identical to the scalar loop -- the
differential ``kernels``/``epoch`` checks and ``tests/sim/test_kernels.py``
assert as much.

Five fast modes exist:

* ``"vectorized"`` -- fixed-capacity read-only runs (no joint manager)
  under a memory system that opted into profiled replay (nap,
  power-down): one ``hit_mask`` call decides every access up front.
* ``"missrun"`` -- the vectorized mode plus *batched misses*: when the
  disk policy is request-blind (it overrides neither ``on_request`` nor
  ``on_idle_start``, so the timeout can only change at period
  boundaries) and the drive has no positioned service model, runs of
  consecutive misses replay through :meth:`SimDisk.submit_run` -- the
  per-miss busy/spin/wake recurrence advanced on local accumulators in
  the scalar loop's exact float64 operation order -- with the
  sequential-merge flags resolved by one vectorized compare, the
  clusterer advanced by :meth:`ReadaheadClusterer.add_run`, and metrics
  by :meth:`MetricsCollector.on_miss_run`.  Miss runs split at period
  boundaries exactly like hit runs, so every boundary still fires
  one at a time through the scalar ``_drain_events``.
* ``"epoch"`` -- joint-manager runs.  Between two period boundaries the
  cache capacity is fixed, so the replay walks the trace *epoch by
  epoch*: each epoch's ``(times, depths)`` slice feeds the manager's
  per-period log as one batch (:meth:`JointPowerManager.record_profiled`
  -- the profile already holds exactly the depths the manager's own
  tracker would have computed), hits collapse into segments at the
  epoch's capacity, and every boundary fires one at a time through
  ``_drain_events`` so each resize is observed before the next epoch is
  classified.  Because the joint manager may resize *up*, the cache is
  not always full; the kernel tracks the resident-page count ``r``
  analytically (hit iff ``0 <= depth < r``; each miss grows ``r`` to
  capacity; a down-resize clamps it), which is exactly the LRU stack's
  inclusion behaviour.
* ``"writes"`` -- fixed-capacity *write-carrying* runs under a
  profiled-replay memory.  Write-back is write-allocate, so the LRU
  evolves exactly as in a read-only replay and the profile's hit mask
  stays valid; hit runs keep the live cache and dirty set in sync
  through :meth:`MemorySystem.consume_hit_run_rw` (hits never evict, so
  no flush can arise inside a run), and every miss, periodic flush
  sweep and dirty eviction runs through the exact scalar
  ``access_rw``/``_flush``/``_drain_events`` path.
* ``"disable"`` -- the disable-state (2TDS) model on fixed-capacity
  read-only runs.  Bank invalidations make the stack-distance profile
  unusable (true reuse depths shrink when banks drop their pages), so
  this mode needs *no profile*: the live ``_page_bank`` map is the
  residency oracle, and :meth:`DisableMemorySystem.consume_hit_run`
  consumes maximal pure-hit prefixes in a tight loop, falling back to
  the scalar ``access`` at every miss/invalidation/resurrection.

Fallback conditions (any one routes the run through the scalar loop):

* the ``$REPRO_KERNELS`` kill switch is set;
* the memory system did not opt into profiled replay
  (:data:`MemorySystem.profiled_replay`) and is not the disable model;
* a joint run under anything but the nap model (only nap is resizable);
* a joint run whose trace carries writes (flushes interleave with
  resizes under the live manager);
* a disable-model run whose trace carries writes (invalidation spills
  interleave with the flush cadence);
* no profile was supplied, or it does not cover the trace (except the
  disable mode, which replays from live bank state alone).

Additional conditions demote ``"missrun"`` to plain ``"vectorized"``
(misses one at a time through the scalar ``_serve_miss``):

* the disk policy overrides ``on_request`` or ``on_idle_start`` (it may
  change the timeout mid-run, which the batched recurrence assumes
  cannot happen);
* the drive prices requests from geometry (a positioned service model);
* the drive instance carries a ``submit``/``submit_run`` attribute
  override (e.g. the runner's miss-time recorder), which the batch path
  would bypass.

Joint-manager (``"epoch"``) replays batch their misses the same way
when the drive qualifies -- the manager only moves the timeout at
period boundaries, so every epoch-interior miss run is timeout-free by
construction -- without changing the reported mode name.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.cache.profile import TraceProfile, kernels_enabled
from repro.cache.stack_distance import COLD
from repro.errors import SimulationError
from repro.memory.system import (
    DisableMemorySystem,
    NapMemorySystem,
    supports_profiled_replay,
)
from repro.policies.base import DiskPolicy

#: SimResult.replay_mode values.
MODE_SCALAR = "scalar"
MODE_VECTORIZED = "vectorized"
MODE_MISSRUN = "missrun"
MODE_EPOCH = "epoch"
MODE_WRITES = "writes"
MODE_DISABLE = "disable"


def _policy_is_request_blind(policy) -> bool:
    """True when ``policy`` never reacts to individual requests.

    A request-blind policy overrides neither hook the engine fires per
    miss -- the base implementations discard their arguments and return
    ``NO_CHANGE`` -- so between two period boundaries the disk timeout
    is a constant and the whole per-miss policy round trip (including
    the idle-hint lookup feeding ``on_idle_start``) can be skipped.
    Checked on the concrete class so any override opts out.
    """
    cls = type(policy)
    return (
        cls.on_request is DiskPolicy.on_request
        and cls.on_idle_start is DiskPolicy.on_idle_start
    )


def _batchable_disk(disk) -> bool:
    """True when ``disk`` may serve miss runs through ``submit_run``.

    A positioned service model prices each request from the head
    position, which the precomputed sequential/first split cannot
    express; and an instance-level ``submit``/``submit_run`` override
    (e.g. :func:`repro.sim.runner._collect_miss_times`'s recorder) would
    be silently bypassed by the batch path.  Class-level patches (the
    mutation tests) still take effect through ``submit_run`` itself.
    """
    return (
        disk.positioned is None
        and "submit" not in disk.__dict__
        and "submit_run" not in disk.__dict__
    )


def select_mode(
    engine, trace, profile: Optional[TraceProfile]
) -> Tuple[str, Optional[str]]:
    """Pick the replay mode for this run.

    Returns ``(mode, reason)``: ``reason`` explains a scalar fallback and
    is None when a fast mode applies.
    """
    if not kernels_enabled():
        return MODE_SCALAR, "the $REPRO_KERNELS kill switch disables the fast paths"
    has_writes = trace.writes is not None and bool(trace.writes.any())
    memory = engine.memory
    if engine.manager is None and type(memory) is DisableMemorySystem:
        # The disable mode replays from live bank state: no profile needed.
        if has_writes:
            return (
                MODE_SCALAR,
                "write-back flushing under disable-model invalidations "
                "needs the live scalar loop",
            )
        return MODE_DISABLE, None
    if profile is None:
        return MODE_SCALAR, "no trace profile supplied"
    if len(profile) != trace.num_accesses:
        return MODE_SCALAR, "profile does not cover the trace"
    if engine.manager is not None:
        if has_writes:
            return (
                MODE_SCALAR,
                "write-back traces interleave flushes with resizes under "
                "the joint manager",
            )
        if type(memory) is not NapMemorySystem:
            return (
                MODE_SCALAR,
                "joint replay supports only the nap memory model, not "
                f"{type(memory).__name__}",
            )
        return MODE_EPOCH, None
    if not supports_profiled_replay(memory):
        return (
            MODE_SCALAR,
            f"{type(memory).__name__} hit/miss outcomes depend on "
            "state the profile cannot predict",
        )
    if has_writes:
        return MODE_WRITES, None
    if _policy_is_request_blind(engine.policy) and _batchable_disk(engine.disk):
        return MODE_MISSRUN, None
    return MODE_VECTORIZED, None


def fast_path_reason(engine, trace, profile: Optional[TraceProfile]) -> Optional[str]:
    """Why this run cannot take a fast path (None = it can)."""
    return select_mode(engine, trace, profile)[1]


def replay_vectorized(engine, st, trace, profile: TraceProfile, duration_s: float) -> None:
    """Drive one fixed-capacity replay through the segmented fast path.

    ``st`` is the engine's mutable :class:`_ReplayState`; events and
    misses go through the same engine methods the scalar loop uses.
    """
    times = trace.times
    pages = trace.pages
    # Scalar loop: `if now >= duration_s: break` -- keep accesses < duration.
    n = int(np.searchsorted(times, duration_s, side="left"))
    hits = profile.hit_mask(engine.memory.capacity_pages, n)
    miss_indices = np.flatnonzero(~hits)

    memory = engine.memory
    drain = engine._drain_events
    serve_miss = engine._serve_miss
    pos = 0
    for m in miss_indices.tolist():
        if pos < m:
            _consume_hits(engine, st, memory, times, pages, pos, m, duration_s)
        now = float(times[m])
        page = int(pages[m])
        drain(st, now)
        memory.charge_page_access(now, page)
        serve_miss(st, now, page)
        pos = m + 1
    if pos < n:
        _consume_hits(engine, st, memory, times, pages, pos, n, duration_s)


def replay_missrun(engine, st, trace, profile: TraceProfile, duration_s: float) -> None:
    """The vectorized replay with runs of consecutive misses batched.

    Hit runs collapse exactly as in :func:`replay_vectorized`; miss runs
    go through :func:`_serve_missrun_span`, which splits them at period
    boundaries and serves each boundary-free stretch in one pass through
    the batched disk/metrics/clusterer recurrences.  Eligibility
    (:func:`select_mode`) guarantees no timeout can move inside a
    stretch: the policy is request-blind and the trace carries no
    writes, so the only interior events are period boundaries.
    """
    times = trace.times
    pages = trace.pages
    n = int(np.searchsorted(times, duration_s, side="left"))
    hits = profile.hit_mask(engine.memory.capacity_pages, n)
    miss_indices = np.flatnonzero(~hits)

    memory = engine.memory
    pos = 0
    for lo, hi in _miss_runs(miss_indices):
        if pos < lo:
            _consume_hits(engine, st, memory, times, pages, pos, lo, duration_s)
        _serve_missrun_span(engine, st, memory, times, pages, lo, hi, duration_s)
        pos = hi
    if pos < n:
        _consume_hits(engine, st, memory, times, pages, pos, n, duration_s)


def _miss_runs(miss_indices: np.ndarray):
    """Yield ``(lo, hi)`` half-open spans of consecutive miss indices."""
    if miss_indices.size == 0:
        return
    breaks = np.flatnonzero(np.diff(miss_indices) != 1) + 1
    starts = miss_indices[np.concatenate(([0], breaks))].tolist()
    ends = miss_indices[np.concatenate((breaks - 1, [miss_indices.size - 1]))].tolist()
    for lo, hi in zip(starts, ends):
        yield lo, hi + 1


def _serve_missrun_span(
    engine, st, memory, times, pages, lo: int, hi: int, duration_s: float
) -> None:
    """Serve the all-miss span ``[lo, hi)``, firing events in time order.

    The miss-run twin of :func:`_consume_hits`: each pending period
    boundary (the only interior event -- miss-run eligibility excludes
    writes) splits the span with one ``searchsorted``, the boundary-free
    stretch batches through :func:`_serve_miss_run`, and the boundary
    itself fires through the scalar ``_drain_events``.  An access at
    exactly the boundary fires the boundary first (``side='left'``),
    matching the scalar loop.
    """
    while lo < hi:
        flush_at = st.next_flush if st.has_writes else math.inf
        event_at = min(flush_at, st.next_boundary)
        if event_at > duration_s:
            cut = hi
        else:
            cut = min(max(int(np.searchsorted(times, event_at, side="left")), lo), hi)
        if cut > lo:
            _serve_miss_run(engine, st, memory, times, pages, lo, cut)
            lo = cut
        if lo < hi:
            engine._drain_events(st, float(times[lo]))
            flush_after = st.next_flush if st.has_writes else math.inf
            if min(flush_after, st.next_boundary) == event_at:
                raise SimulationError(
                    "miss-run replay made no progress at a pending event"
                )


def _serve_miss_run(engine, st, memory, times, pages, lo: int, hi: int) -> None:
    """Serve the boundary-free all-miss stretch ``[lo, hi)`` batched.

    Exactly what ``hi - lo`` iterations of ``charge_page_access`` +
    ``_serve_miss`` would do.  The scalar loop interleaves four objects
    per miss -- memory energy, the drive, metrics, the clusterer -- but
    their accumulators are disjoint, so advancing each object over the
    whole stretch in its own pass preserves every object's internal
    floating-point operation order bit-exactly.  The per-miss policy
    hooks are skipped entirely: eligibility guarantees they are the
    base-class no-ops.
    """
    # Deferred: engine.py imports this module at its own top level.
    from repro.sim.engine import SEQUENTIAL_MERGE_WINDOW_S

    run_times = times[lo:hi]
    run_pages = pages[lo:hi]
    n = hi - lo
    # The scalar flag: next page in sequence, within the merge window.
    # Element 0 continues the previous miss (possibly many hit runs and
    # boundaries ago); the rest compare against their left neighbour.
    seq = np.empty(n, dtype=bool)
    seq[0] = (
        int(run_pages[0]) == st.last_miss_page + 1
        and float(run_times[0]) - st.last_miss_time <= SEQUENTIAL_MERGE_WINDOW_S
    )
    if n > 1:
        np.logical_and(
            run_pages[1:] == run_pages[:-1] + 1,
            run_times[1:] - run_times[:-1] <= SEQUENTIAL_MERGE_WINDOW_S,
            out=seq[1:],
        )
    services = _miss_run_services(engine.disk.service, seq)
    times_list = run_times.tolist()

    memory.charge_miss_run(times, pages, lo, hi)
    latencies, wake_delays = engine.disk.submit_run(times_list, services)
    st.metrics.on_miss_run(times_list, latencies, wake_delays)
    completed = st.clusterer.add_run(times_list, run_pages.tolist())
    if completed:
        st.metrics.on_requests(completed)
    st.last_miss_page = int(run_pages[n - 1])
    st.last_miss_time = times_list[n - 1]


def _miss_run_services(service, seq: np.ndarray):
    """Per-miss service times for a run given its sequential flags.

    ``ServiceModel.service_time`` is a pure function of its arguments,
    so the two single-page prices are computed once -- bit-identical to
    the scalar loop's per-miss calls -- and spread by the flags.
    """
    svc_first = service.service_time(1, False)
    svc_seq = service.service_time(1, True)
    return np.where(seq, svc_seq, svc_first).tolist()


def replay_writes(engine, st, trace, profile: TraceProfile, duration_s: float) -> None:
    """Drive one fixed-capacity write-carrying replay through segments.

    Write-back is write-allocate: :meth:`MemorySystem.access_rw` loads
    on every miss (read or write), so the LRU evolves exactly as in a
    read-only replay and ``hit_mask`` classifies every access up front.
    Hit runs go through :meth:`MemorySystem.consume_hit_run_rw`, which
    keeps the live cache order and dirty set in step; misses, dirty
    evictions and periodic flush sweeps run the exact scalar path.
    """
    times = trace.times
    pages = trace.pages
    writes = trace.writes
    n = int(np.searchsorted(times, duration_s, side="left"))
    hits = profile.hit_mask(engine.memory.capacity_pages, n)
    miss_indices = np.flatnonzero(~hits)
    _replay_writes_inner(
        engine, st, engine.memory, times, pages, writes,
        miss_indices, 0, n, duration_s,
    )


def _replay_writes_inner(
    engine, st, memory, times, pages, writes, miss_indices,
    lo: int, hi: int, duration_s: float,
) -> None:
    """Replay ``[lo, hi)`` of a write-carrying trace given its misses.

    Shared by :func:`replay_writes` (misses from the profile's hit
    mask) and the streaming manager (misses from the incremental
    tracker's depth window).
    """
    drain = engine._drain_events
    serve_miss = engine._serve_miss
    flush = engine._flush
    pos = lo
    for m in miss_indices.tolist():
        if pos < m:
            _consume_hits(
                engine, st, memory, times, pages, pos, m, duration_s,
                writes=writes,
            )
        now = float(times[m])
        page = int(pages[m])
        is_write = bool(writes[m])
        drain(st, now)
        hit = memory.access_rw(now, page, is_write)
        pending = memory.take_pending_flushes()
        if pending:
            st.last_flush_page = flush(now, pending, st.metrics, st.last_flush_page)
        if is_write:
            if hit:
                st.metrics.on_hit(now)
            else:
                st.metrics.on_write(now)
        elif hit:
            st.metrics.on_hit(now)
        else:
            serve_miss(st, now, page)
        pos = m + 1
    if pos < hi:
        _consume_hits(
            engine, st, memory, times, pages, pos, hi, duration_s,
            writes=writes,
        )


def replay_disable(engine, st, trace, duration_s: float) -> None:
    """Drive one disable-model (2TDS) replay epoch by epoch, profile-free.

    Mirrors :func:`replay_epoch`'s boundary walk (period closings and
    policy callbacks must see hits attributed to the right period);
    within an epoch, :meth:`DisableMemorySystem.consume_hit_run`
    consumes maximal pure-hit prefixes against the live bank map and
    every stopping access replays through the exact scalar ``access``.
    """
    times = trace.times
    pages = trace.pages
    n = int(np.searchsorted(times, duration_s, side="left"))
    memory = engine.memory
    drain = engine._drain_events
    pos = 0
    while pos < n:
        boundary = st.next_boundary
        if boundary > st.duration_s:
            end = n
        else:
            end = min(int(np.searchsorted(times, boundary, side="left")), n)
        if end > pos:
            _replay_disable_span(engine, st, memory, times, pages, pos, end)
            pos = end
            if pos >= n:
                break
        drain(st, boundary)


def _replay_disable_span(engine, st, memory, times, pages, lo: int, hi: int) -> None:
    """Replay ``[lo, hi)`` (no interior events) via pure-hit prefixes.

    Shared by :func:`replay_disable` and the streaming manager; the
    caller guarantees no period boundary or flush falls inside the
    span, so the interior ``drain`` calls are order-keeping no-ops.
    """
    drain = engine._drain_events
    serve_miss = engine._serve_miss
    pos = lo
    while pos < hi:
        stop = memory.consume_hit_run(times, pages, pos, hi)
        if stop > pos:
            st.metrics.on_hits(stop - pos)
            pos = stop
            if pos >= hi:
                break
        now = float(times[pos])
        page = int(pages[pos])
        drain(st, now)
        if memory.access(now, page):
            st.metrics.on_hit(now)
        else:
            serve_miss(st, now, page)
        pos += 1


def replay_epoch(engine, st, trace, profile: TraceProfile, duration_s: float) -> None:
    """Drive one joint-manager replay epoch by epoch.

    Within an epoch the capacity is fixed; every boundary fires
    individually through ``_drain_events`` (running ``end_period`` and
    the resize through the scalar code path), and the resident-page
    count is re-clamped after each so the next epoch's hit
    classification sees every intermediate resize.
    """
    times = trace.times
    pages = trace.pages
    depths = profile.depths
    n = int(np.searchsorted(times, duration_s, side="left"))

    memory = engine.memory
    manager = engine.manager
    drain = engine._drain_events

    # The joint manager only moves the timeout at period boundaries, so
    # every epoch-interior miss run is timeout-free and may batch
    # through submit_run whenever the drive itself qualifies.
    batch_misses = _batchable_disk(engine.disk)

    # Invariant: the resident set is the top-`resident` pages of the
    # full-history LRU stack, so an access hits iff 0 <= depth < resident.
    # Holds after prefill (the warm start keeps the hottest tail -- the
    # stack top) and is maintained below: hits reorder within the top,
    # each miss loads at the top (growing the set until it reaches
    # capacity), and a shrink evicts from the bottom.
    resident = len(memory.cache)

    pos = 0
    while pos < n:
        boundary = st.next_boundary
        if boundary > st.duration_s:
            end = n
        else:
            # An access exactly at the boundary belongs to the next
            # epoch: the scalar loop drains events before recording it.
            end = min(int(np.searchsorted(times, boundary, side="left")), n)
        if end > pos:
            resident = _replay_epoch_segment(
                engine, st, memory, manager, times, pages, depths,
                pos, end, duration_s, resident, batch_misses,
            )
            pos = end
            if pos >= n:
                break
        # The next access sits at or past the boundary: fire exactly this
        # boundary (end_period + resize + timeout through the scalar
        # path), then observe the resize before classifying further.
        drain(st, boundary)
        resident = min(resident, memory.capacity_pages)


def _replay_epoch_segment(
    engine, st, memory, manager, times, pages, depths,
    lo: int, hi: int, duration_s: float, resident: int,
    batch_misses: bool = False,
) -> int:
    """Replay accesses ``[lo, hi)`` of one epoch; returns the new resident count."""
    capacity = memory.capacity_pages
    # Feed the whole epoch's per-period log in one batch.  The manager
    # only reads it at end_period, so batching ahead of the misses is
    # equivalent to the scalar loop's interleaved record_access calls.
    manager.record_profiled(times[lo:hi], depths[lo:hi])

    miss_indices, resident = _epoch_misses(depths, lo, hi, resident, capacity)

    if batch_misses:
        # The segment lies strictly inside one epoch, so no boundary (or
        # flush -- epoch mode excludes writes) can interrupt a miss run:
        # the per-miss drain calls of the scalar walk below are no-ops
        # and each run serves in one batched pass.
        pos = lo
        for run_lo, run_hi in _miss_runs(miss_indices):
            if pos < run_lo:
                _consume_hits(
                    engine, st, memory, times, pages, pos, run_lo, duration_s
                )
            _serve_miss_run(engine, st, memory, times, pages, run_lo, run_hi)
            pos = run_hi
        if pos < hi:
            _consume_hits(engine, st, memory, times, pages, pos, hi, duration_s)
        return resident

    serve_miss = engine._serve_miss
    drain = engine._drain_events
    pos = lo
    for m in miss_indices.tolist():
        if pos < m:
            _consume_hits(engine, st, memory, times, pages, pos, m, duration_s)
        now = float(times[m])
        page = int(pages[m])
        drain(st, now)
        memory.charge_page_access(now, page)
        serve_miss(st, now, page)
        pos = m + 1
    if pos < hi:
        _consume_hits(engine, st, memory, times, pages, pos, hi, duration_s)
    return resident


def _epoch_misses(
    depths, lo: int, hi: int, resident: int, capacity: int
) -> Tuple[np.ndarray, int]:
    """Miss indices within ``[lo, hi)`` at fixed ``capacity``.

    Returns ``(global_miss_indices, resident_after)``.  With the cache
    full (``resident == capacity``) the Mattson rule vectorizes
    directly.  After an up-resize the cache is partially filled: only
    accesses that are cold or reach at least the starting resident count
    can miss, and each miss grows the resident set by one until it hits
    capacity -- walk exactly those candidates, then vectorize the rest.
    """
    window = depths[lo:hi]
    if resident >= capacity:
        miss = (window == COLD) | (window >= capacity)
        return np.flatnonzero(miss) + lo, resident

    candidates = np.flatnonzero((window == COLD) | (window >= resident))
    cand_depths = window[candidates].tolist()
    cand_list = candidates.tolist()
    misses = []
    for j, depth in enumerate(cand_depths):
        if resident >= capacity:
            # Filled up mid-epoch: the remaining candidates follow the
            # full-cache rule.
            rest = candidates[j:]
            rest_d = window[rest]
            rest_miss = rest[(rest_d == COLD) | (rest_d >= capacity)]
            return (
                np.concatenate(
                    [np.asarray(misses, dtype=np.int64), rest_miss]
                ) + lo,
                resident,
            )
        if depth != COLD and depth < resident:
            # The cache grew past this depth since the candidate scan.
            continue
        misses.append(cand_list[j])
        resident += 1
    return np.asarray(misses, dtype=np.int64) + lo, resident


def _consume_hits(
    engine, st, memory, times, pages, lo: int, hi: int, duration_s: float,
    writes=None,
) -> None:
    """Account the hit run ``times[lo:hi]``, firing events in time order.

    Within the run the pending events are period boundaries and -- for
    write-carrying replays (``writes`` given) -- periodic flush sweeps;
    each splits the run with one ``searchsorted``, so a sweep at
    ``flush_at`` sees exactly the dirty marks of accesses before it.
    An access at exactly the event time fires the event first (matching
    the scalar ``drain_events`` ordering), hence ``side='left'``.
    """
    while lo < hi:
        flush_at = st.next_flush if st.has_writes else math.inf
        event_at = min(flush_at, st.next_boundary)
        if event_at > duration_s:
            cut = hi
        else:
            cut = min(max(int(np.searchsorted(times, event_at, side="left")), lo), hi)
        count = cut - lo
        if count > 0:
            if writes is None:
                memory.charge_hit_run(times, pages, lo, cut)
            else:
                memory.consume_hit_run_rw(times, pages, writes, lo, cut)
            st.metrics.on_hits(count)
            lo = cut
        if lo < hi:
            drained_until = float(times[lo])
            engine._drain_events(st, drained_until)
            flush_after = st.next_flush if st.has_writes else math.inf
            if min(flush_after, st.next_boundary) == event_at:
                raise SimulationError(
                    "vectorized replay made no progress at a pending event"
                )
