"""Reproducible run specifications.

A :class:`RunSpec` captures everything needed to regenerate one result --
machine scale and overrides, workload parameters and seed, method name,
horizon -- as a small JSON document.  ``execute`` rebuilds the machine
and trace from scratch and runs the method, so two executions of the
same spec (any host, any time) produce identical results; ``save`` /
``load`` round-trip the spec through a file.

This is the unit of provenance for EXPERIMENTS.md-style claims: every
number can be pinned to a spec file.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Union

from repro.config.machine import MachineConfig, paper_machine
from repro.errors import ReproError
from repro.sim.results import SimResult
from repro.sim.runner import run_method
from repro.traces.specweb import generate_trace
from repro.units import GB, MB

PathLike = Union[str, Path]

#: Format version for forwards compatibility.
SPEC_VERSION = 1


@dataclass(frozen=True)
class RunSpec:
    """A fully deterministic simulation recipe."""

    method: str
    dataset_gb: float = 16.0
    rate_mb: float = 100.0
    popularity: float = 0.10
    write_fraction: float = 0.0
    scale: int = 1024
    periods: int = 5
    warmup_periods: int = 1
    period_s: float = 600.0
    seed: int = 42
    #: Free-form annotations (kept through save/load).
    notes: Dict[str, str] = field(default_factory=dict)

    # --- construction ------------------------------------------------------------

    def machine(self) -> MachineConfig:
        base = paper_machine().scaled(self.scale)
        manager = dataclasses.replace(base.manager, period_s=self.period_s)
        return MachineConfig(
            memory=base.memory,
            disk=base.disk,
            manager=manager,
            scale=base.scale,
        )

    @property
    def duration_s(self) -> float:
        return (self.periods + self.warmup_periods) * self.period_s

    @property
    def warmup_s(self) -> float:
        return self.warmup_periods * self.period_s

    def execute(self, audit: bool = True) -> SimResult:
        """Rebuild machine + workload and run the method."""
        machine = self.machine()
        trace = generate_trace(
            dataset_bytes=self.dataset_gb * GB,
            data_rate=self.rate_mb * MB,
            duration_s=self.duration_s,
            popularity=self.popularity,
            page_size=machine.page_bytes,
            seed=self.seed,
            file_scale=machine.scale,
            write_fraction=self.write_fraction,
        )
        return run_method(
            self.method,
            trace,
            machine,
            duration_s=self.duration_s,
            warmup_s=self.warmup_s,
            audit=audit,
        )

    # --- persistence -----------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["version"] = SPEC_VERSION
        return data

    def save(self, path: PathLike) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunSpec":
        payload = dict(data)
        version = payload.pop("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ReproError(f"unsupported run-spec version {version}")
        unknown = set(payload) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ReproError(f"unknown run-spec fields {sorted(unknown)}")
        return cls(**payload)  # type: ignore[arg-type]

    @classmethod
    def load(cls, path: PathLike) -> "RunSpec":
        path = Path(path)
        if not path.exists():
            raise ReproError(f"run spec not found: {path}")
        return cls.from_dict(json.loads(path.read_text()))


def fingerprint(result: SimResult) -> Dict[str, object]:
    """The stable facts of a result, for equality across executions."""
    return {
        "total_accesses": result.total_accesses,
        "disk_page_accesses": result.disk_page_accesses,
        "disk_write_pages": result.disk_write_pages,
        "spin_down_cycles": result.spin_down_cycles,
        "long_latency": result.long_latency,
        "memory_energy_j": round(result.memory_energy_j, 6),
        "disk_energy_j": round(result.disk_energy_j, 6),
    }
