"""Warm-start computation: which pages a long-running server would hold.

The paper's traces come from a web server that has been up for a while,
so its disk cache is warm.  A fresh simulation would instead spend
``data set / 10.4 MB/s`` seconds (scale-invariant!) faulting everything
in, drowning the measurement window in cold misses.  ``warm_start_pages``
returns the trace's *reused* pages (two or more accesses) ordered so the
hottest end up most recently used; pages touched only once stay out, so
the simulated server keeps exactly the unavoidable first-access misses
the paper describes ("these disk accesses cannot be avoided by changing
the memory size").
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.traces.trace import Trace


def warm_start_pages(trace: Trace, min_accesses: int = 2) -> List[int]:
    """Pages to prefill, coldest first (insert in order; last = MRU)."""
    if trace.num_accesses == 0:
        return []
    pages, counts = np.unique(trace.pages, return_counts=True)
    reused = counts >= min_accesses
    pages, counts = pages[reused], counts[reused]
    if pages.size == 0:
        return []
    # Last-access position breaks count ties: more recently used later.
    last_position = np.zeros(int(trace.pages.max()) + 1, dtype=np.int64)
    last_position[trace.pages] = np.arange(trace.num_accesses)
    order = np.lexsort((last_position[pages], counts))
    return pages[order].tolist()
