"""The trace-driven simulation engine.

Replays a disk-cache access trace through a memory system (LRU cache +
memory power policy), a simulated drive and a disk power policy -- or the
joint manager, which owns both knobs.  Mirrors the paper's evaluation
pipeline (Fig. 6(b)): synthesized traces -> disk-cache simulation -> disk
simulation + power managers.

Misses are priced individually; a miss that continues the previous miss's
sequential run within a short merge window is charged the sequential
service time (track-to-track positioning), which reproduces what request
clustering/read-ahead achieves while keeping submissions in time order.
The merged *request count* statistics still come from a
:class:`~repro.cache.readahead.ReadaheadClusterer` fed with the same miss
stream.
"""

from __future__ import annotations

import itertools
import math
from typing import Optional

import numpy as np

from repro.cache.profile import TraceProfile
from repro.cache.readahead import ReadaheadClusterer
from repro.config.machine import MachineConfig
from repro.core.joint import JointPowerManager
from repro.disk.drive import SimDisk
from repro.disk.service import ServiceModel
from repro.errors import SimulationError
from repro.memory.system import MemorySystem
from repro.policies.base import NO_CHANGE, DiskPolicy
from repro.sim import kernels
from repro.sim.metrics import MetricsCollector
from repro.sim.results import SimResult
from repro.traces.trace import Trace

#: Misses this close in time to the previous, next-page miss are priced as
#: sequential continuations (the block layer would have merged them).
SEQUENTIAL_MERGE_WINDOW_S = 0.05

#: Default write-back flush cadence (Linux pdflush-style sweep).
FLUSH_INTERVAL_S = 30.0


class _ReplayState:
    """Mutable per-run bookkeeping shared by the scalar loop, the
    vectorized kernels and the event drainer.

    Everything the original closure-based loop kept in ``nonlocal``
    variables lives here, so both replay paths mutate one place and the
    post-loop tail reads one place.
    """

    __slots__ = (
        "metrics",
        "clusterer",
        "has_writes",
        "duration_s",
        "warmup_s",
        "period_s",
        "next_flush",
        "next_boundary",
        "last_flush_page",
        "last_miss_page",
        "last_miss_time",
        "current_timeout",
        "mem_mark",
        "disk_mark",
    )


class SimulationEngine:
    """One configured run: machine + memory system + disk policy/manager."""

    def __init__(
        self,
        machine: MachineConfig,
        memory: MemorySystem,
        disk_policy: Optional[DiskPolicy] = None,
        joint_manager: Optional[JointPowerManager] = None,
        idle_hints: Optional[np.ndarray] = None,
        label: str = "run",
        use_geometry: bool = False,
        flush_interval_s: float = FLUSH_INTERVAL_S,
        record_events: bool = False,
    ) -> None:
        if (disk_policy is None) == (joint_manager is None):
            raise SimulationError(
                "provide exactly one of disk_policy or joint_manager"
            )
        if joint_manager is not None and not memory.resizable:
            raise SimulationError("the joint manager needs a resizable memory")
        self.machine = machine
        self.memory = memory
        self.policy = disk_policy
        self.manager = joint_manager
        self.label = label
        self.service = ServiceModel(machine.disk, machine.page_bytes)
        positioned = None
        if use_geometry:
            from repro.disk.positioned import PositionedServiceModel

            positioned = PositionedServiceModel(
                machine.disk, machine.page_bytes
            )
        events = None
        if record_events:
            from repro.disk.events import DiskEventLog

            events = DiskEventLog()
        self.disk = SimDisk(
            machine.disk, self.service, positioned=positioned, events=events
        )
        self.idle_hints = (
            None if idle_hints is None else np.asarray(idle_hints, dtype=float)
        )
        if flush_interval_s <= 0:
            raise SimulationError("flush interval must be positive")
        self.flush_interval_s = flush_interval_s
        #: Which replay loop the most recent :meth:`run` used.
        self.last_replay_mode = kernels.MODE_SCALAR

    # --- helpers ---------------------------------------------------------------

    def _initial_timeout(self) -> Optional[float]:
        if self.manager is not None:
            return self.manager.timeout_s
        assert self.policy is not None
        return self.policy.initial_timeout()

    def _next_hint(self, after_s: float) -> Optional[float]:
        if self.idle_hints is None or self.idle_hints.size == 0:
            return None
        index = int(np.searchsorted(self.idle_hints, after_s, side="right"))
        if index >= self.idle_hints.size:
            return None
        return float(self.idle_hints[index])

    # --- main loop ----------------------------------------------------------------

    def run(
        self,
        trace: Trace,
        duration_s: Optional[float] = None,
        warmup_s: float = 0.0,
        profile: Optional[TraceProfile] = None,
    ) -> SimResult:
        """Replay ``trace`` and return the run's result.

        ``warmup_s`` (a whole number of periods) excludes the cold-start
        window from every reported metric and energy figure: the cache
        fills and the managers adapt during warm-up, but observation
        starts at its end.

        ``profile`` (a :class:`repro.cache.profile.TraceProfile` computed
        for this exact trace *and* the prefill actually applied to the
        memory system) enables the vectorized replay kernels when the run
        is eligible (:func:`repro.sim.kernels.fast_path_reason`); results
        are bit-identical either way.
        """
        machine = self.machine
        manager_cfg = machine.manager
        period = manager_cfg.period_s
        if duration_s is None:
            periods = max(int(np.ceil(trace.duration_s / period)), 1)
            duration_s = periods * period
        if duration_s <= 0:
            raise SimulationError("duration must be positive")
        if warmup_s < 0 or warmup_s >= duration_s:
            raise SimulationError("warm-up must be within the duration")
        if warmup_s and abs(warmup_s / period - round(warmup_s / period)) > 1e-9:
            raise SimulationError("warm-up must be a whole number of periods")

        if self.manager is not None and (
            self.memory.capacity_bytes != self.manager.memory_bytes
        ):
            raise SimulationError(
                "memory system and joint manager disagree on the initial size"
            )

        disk = self.disk
        memory = self.memory
        manager = self.manager
        disk.set_timeout(0.0, self._initial_timeout())

        st = _ReplayState()
        st.metrics = MetricsCollector(
            period_s=period,
            long_latency_threshold_s=manager_cfg.long_latency_threshold_s,
            aggregation_window_s=manager_cfg.aggregation_window_s,
        )
        st.clusterer = ReadaheadClusterer(
            merge_window_s=SEQUENTIAL_MERGE_WINDOW_S
        )
        st.has_writes = trace.writes is not None and bool(trace.writes.any())
        st.duration_s = duration_s
        st.warmup_s = warmup_s
        st.period_s = period
        st.next_flush = self.flush_interval_s
        st.next_boundary = period
        st.last_flush_page = -2
        st.last_miss_page = -2
        st.last_miss_time = -np.inf
        st.current_timeout = disk.timeout_s
        st.mem_mark = memory.energy.snapshot() if warmup_s == 0 else None
        st.disk_mark = disk.energy.snapshot() if warmup_s == 0 else None

        mode, _ = kernels.select_mode(self, trace, profile)
        self.last_replay_mode = mode
        if mode == kernels.MODE_VECTORIZED:
            kernels.replay_vectorized(self, st, trace, profile, duration_s)
        elif mode == kernels.MODE_MISSRUN:
            kernels.replay_missrun(self, st, trace, profile, duration_s)
        elif mode == kernels.MODE_EPOCH:
            kernels.replay_epoch(self, st, trace, profile, duration_s)
        elif mode == kernels.MODE_WRITES:
            kernels.replay_writes(self, st, trace, profile, duration_s)
        elif mode == kernels.MODE_DISABLE:
            kernels.replay_disable(self, st, trace, duration_s)
        else:
            self._replay_scalar(st, trace, duration_s)

        if st.clusterer.flush() is not None:
            st.metrics.on_request()

        # Fire the trailing events (flushes and periods in the idle tail).
        self._drain_events(st, duration_s)
        metrics = st.metrics
        last_closed = (
            metrics.periods[-1].end_s
            if metrics.periods
            else metrics.current_period_start
        )
        if not metrics.periods or last_closed < duration_s - 1e-9:
            # Close the trailing (possibly partial) window so the period
            # spans always tile the measured window exactly.
            metrics.close_period(
                duration_s,
                memory_bytes=memory.capacity_bytes,
                timeout_s=st.current_timeout,
            )

        if st.has_writes:
            # Final write-back sweep: everything still dirty goes to disk.
            remaining = memory.take_pending_flushes() + memory.flush_all()
            if remaining:
                self._flush(duration_s, remaining, metrics, st.last_flush_page)

        disk.finalize(duration_s)
        memory.finalize(duration_s)

        if st.mem_mark is None or st.disk_mark is None:
            raise SimulationError("warm-up window never closed")
        memory_energy = memory.energy.minus(st.mem_mark)
        disk_energy = disk.energy.minus(st.disk_mark)
        observed_s = duration_s - warmup_s

        return SimResult(
            label=self.label,
            duration_s=observed_s,
            memory_energy_j=memory_energy.total_j,
            disk_energy_j=disk_energy.total_joules(machine.disk),
            memory_energy=memory_energy,
            disk_energy=disk_energy,
            total_accesses=metrics.total_accesses,
            disk_page_accesses=metrics.total_disk_pages,
            disk_requests=metrics.total_disk_requests,
            disk_write_pages=metrics.total_flush_pages,
            mean_latency_s=metrics.mean_latency_s,
            long_latency=metrics.total_long_latency,
            wake_long_latency=metrics.total_wake_long_latency,
            spin_down_cycles=disk_energy.spin_down_cycles,
            utilization=disk_energy.utilization(observed_s),
            periods=metrics.periods,
            decisions=list(manager.decisions) if manager is not None else [],
            replay_mode=self.last_replay_mode,
        )

    # --- replay loops -----------------------------------------------------------

    def _replay_scalar(
        self, st: _ReplayState, trace: Trace, duration_s: float
    ) -> None:
        """The per-access reference loop (joint write-back runs,
        profile-less replays, and the ``REPRO_KERNELS=0`` kill switch)."""
        memory = self.memory
        manager = self.manager
        has_writes = st.has_writes
        drain_events = self._drain_events
        serve_miss = self._serve_miss

        times = trace.times.tolist()
        pages = trace.pages.tolist()
        # Write-free traces (the common case) iterate a constant instead
        # of materializing a [False] * n list or a tolist() copy.
        writes = (
            trace.writes.tolist() if has_writes else itertools.repeat(False)
        )

        for now, page, is_write in zip(times, pages, writes):
            if now >= duration_s:
                break
            drain_events(st, now)

            if manager is not None:
                manager.record_access(now, page)

            if has_writes:
                hit = memory.access_rw(now, page, is_write)
                pending = memory.take_pending_flushes()
                if pending:
                    st.last_flush_page = self._flush(
                        now, pending, st.metrics, st.last_flush_page
                    )
                if is_write:
                    # Write-back: the cache absorbs the write (allocate
                    # without fetch on a miss) -- no disk read, no
                    # user-visible disk latency.
                    if hit:
                        st.metrics.on_hit(now)
                    else:
                        st.metrics.on_write(now)
                    continue
            else:
                hit = memory.access(now, page)
            if hit:
                st.metrics.on_hit(now)
                continue
            serve_miss(st, now, page)

    def _serve_miss(self, st: _ReplayState, now: float, page: int) -> None:
        """One disk page access: pricing, metrics, policy callbacks."""
        disk = self.disk
        sequential = (
            page == st.last_miss_page + 1
            and now - st.last_miss_time <= SEQUENTIAL_MERGE_WINDOW_S
        )
        st.last_miss_page = page
        st.last_miss_time = now

        idle_before = max(now - disk.busy_until, 0.0)
        result = disk.submit(now, 1, sequential=sequential, page=page)
        st.metrics.on_miss(now, result.latency_s, result.wake_delay_s)
        if st.clusterer.add(now, page) is not None:
            st.metrics.on_request()

        policy = self.policy
        if policy is not None:
            update = policy.on_request(
                now, result.latency_s, result.wake_delay_s, idle_before
            )
            if update is not NO_CHANGE:
                disk.set_timeout(now, update)
                st.current_timeout = disk.timeout_s
            hint = self._next_hint(now)
            update = policy.on_idle_start(result.finish_s, hint)
            if update is not NO_CHANGE:
                disk.set_timeout(now, update)
                st.current_timeout = disk.timeout_s

    def _drain_events(self, st: _ReplayState, until_s: float) -> None:
        """Fire pending flush/boundary events in time order up to
        ``until_s`` (inclusive, capped at the run's duration)."""
        while True:
            flush_at = st.next_flush if st.has_writes else math.inf
            event_at = min(flush_at, st.next_boundary)
            if event_at > until_s or event_at > st.duration_s:
                break
            if flush_at <= st.next_boundary:
                st.last_flush_page = self._flush(
                    flush_at,
                    self.memory.flush_all(),
                    st.metrics,
                    st.last_flush_page,
                )
                st.next_flush += self.flush_interval_s
            else:
                st.current_timeout = self._handle_boundary(
                    st.next_boundary, st.metrics, st.current_timeout
                )
                if st.mem_mark is None and st.next_boundary >= st.warmup_s - 1e-9:
                    st.metrics, st.mem_mark, st.disk_mark = (
                        self._begin_measurement(st.next_boundary)
                    )
                st.next_boundary += st.period_s

    def _begin_measurement(self, at_s: float):
        """Close the warm-up window: snapshot energies, fresh metrics."""
        manager_cfg = self.machine.manager
        self.memory.checkpoint(at_s)
        self.disk.checkpoint(at_s)
        metrics = MetricsCollector(
            period_s=manager_cfg.period_s,
            long_latency_threshold_s=manager_cfg.long_latency_threshold_s,
            aggregation_window_s=manager_cfg.aggregation_window_s,
            start_s=at_s,
        )
        return metrics, self.memory.energy.snapshot(), self.disk.energy.snapshot()

    def _flush(
        self,
        now: float,
        dirty_pages,
        metrics: MetricsCollector,
        last_flush_page: int,
    ) -> int:
        """Write dirty pages back; contiguous runs stream sequentially."""
        for page in sorted(dirty_pages):
            sequential = page == last_flush_page + 1
            self.disk.submit(now, 1, sequential=sequential, page=page)
            last_flush_page = page
        metrics.on_flush(len(dirty_pages))
        return last_flush_page

    def _handle_boundary(
        self,
        boundary_s: float,
        metrics: MetricsCollector,
        current_timeout: Optional[float],
    ) -> Optional[float]:
        """Period housekeeping; returns the timeout now in effect."""
        disk = self.disk
        disk.advance(boundary_s)
        metrics.close_period(
            boundary_s,
            memory_bytes=self.memory.capacity_bytes,
            timeout_s=current_timeout,
        )
        if self.manager is not None:
            self.manager.avg_request_pages = metrics.avg_request_pages
            decision = self.manager.end_period(boundary_s)
            self.memory.resize(boundary_s, decision.memory_bytes)
            disk.set_timeout(boundary_s, decision.timeout_s)
            return disk.timeout_s
        assert self.policy is not None
        update = self.policy.on_period(boundary_s)
        if update is not NO_CHANGE:
            disk.set_timeout(boundary_s, update)
        return disk.timeout_s
