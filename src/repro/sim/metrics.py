"""Performance metrics collected during a simulation run.

Latency accounting follows the paper: every disk-cache access has a
latency (hits are free -- "we ignore the memory access time because the
disk cache's data rate is considerably lower than the memory's
bandwidth"); an access is *long-latency* when it exceeds the half-second
threshold (Section IV-D).  Wake-attributed long latencies (those whose
delay includes a spin-up) are tracked separately as a diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import SimulationError


@dataclass
class PeriodMetrics:
    """Per-period observation record (drives Fig. 9 and Table IV)."""

    index: int
    start_s: float
    end_s: float
    accesses: int = 0
    disk_page_accesses: int = 0
    disk_requests: int = 0
    long_latency: int = 0
    wake_long_latency: int = 0
    latency_sum_s: float = 0.0
    #: Mean filtered idle-interval length observed in the period.
    mean_idle_s: float = 0.0
    #: Memory size in effect during this period, bytes.
    memory_bytes: int = 0
    #: Disk timeout in effect during this period (None = never).
    timeout_s: Optional[float] = None

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def long_latency_per_s(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.long_latency / self.duration_s


class MetricsCollector:
    """Streaming collection of latency, miss and per-period statistics."""

    def __init__(
        self,
        period_s: float,
        long_latency_threshold_s: float = 0.5,
        aggregation_window_s: float = 0.1,
        start_s: float = 0.0,
    ) -> None:
        if period_s <= 0:
            raise SimulationError("period must be positive")
        self.period_s = period_s
        self.threshold_s = long_latency_threshold_s
        self.window_s = aggregation_window_s

        self.total_accesses = 0
        self.total_disk_pages = 0
        self.total_disk_requests = 0
        self.total_writes = 0
        self.total_flush_pages = 0
        self.total_long_latency = 0
        self.total_wake_long_latency = 0
        self.latency_sum_s = 0.0
        self.max_latency_s = 0.0

        self.periods: List[PeriodMetrics] = []
        self._current = PeriodMetrics(
            index=0, start_s=start_s, end_s=start_s + period_s
        )
        self._idle_lengths: List[float] = []
        self._last_disk_access: Optional[float] = None

    # --- events ---------------------------------------------------------------

    def on_hit(self, now: float) -> None:
        del now
        self.total_accesses += 1
        self._current.accesses += 1

    def on_hits(self, count: int) -> None:
        """``count`` memory hits at once (vectorized hit runs).

        Hits carry no latency and no timestamp-dependent state, so a
        whole run of consecutive hits inside one period folds into two
        integer additions -- exactly equivalent to ``count`` calls to
        :meth:`on_hit`.
        """
        self.total_accesses += count
        self._current.accesses += count

    def on_miss(self, now: float, latency_s: float, wake_delay_s: float) -> None:
        """One disk page access with its observed latency."""
        self.total_accesses += 1
        self.total_disk_pages += 1
        self.latency_sum_s += latency_s
        self.max_latency_s = max(self.max_latency_s, latency_s)
        self._current.accesses += 1
        self._current.disk_page_accesses += 1
        self._current.latency_sum_s += latency_s
        if latency_s > self.threshold_s:
            self.total_long_latency += 1
            self._current.long_latency += 1
            if wake_delay_s > 0.0:
                self.total_wake_long_latency += 1
                self._current.wake_long_latency += 1
        if self._last_disk_access is not None:
            gap = now - self._last_disk_access
            if gap >= self.window_s:
                self._idle_lengths.append(gap)
        self._last_disk_access = now

    def on_miss_run(self, times, latencies, wake_delays) -> None:
        """A run of disk page accesses with their observed latencies.

        Equivalent to one :meth:`on_miss` call per element.  The integer
        counters and comparisons are order-free, but the float latency
        sums are not, so they advance element by element in the scalar
        call order on local accumulators (the miss-run kernel contract:
        bit-identical totals, see :mod:`repro.sim.kernels`).
        """
        n = len(times)
        total_latency = self.latency_sum_s
        current_latency = self._current.latency_sum_s
        max_latency = self.max_latency_s
        long_total = 0
        wake_total = 0
        threshold = self.threshold_s
        window = self.window_s
        last = self._last_disk_access
        idle_lengths = self._idle_lengths
        for i in range(n):
            latency_s = latencies[i]
            total_latency += latency_s
            if latency_s > max_latency:
                max_latency = latency_s
            current_latency += latency_s
            if latency_s > threshold:
                long_total += 1
                if wake_delays[i] > 0.0:
                    wake_total += 1
            now = times[i]
            if last is not None:
                gap = now - last
                if gap >= window:
                    idle_lengths.append(gap)
            last = now
        self.total_accesses += n
        self.total_disk_pages += n
        self.latency_sum_s = total_latency
        self.max_latency_s = max_latency
        self._current.accesses += n
        self._current.disk_page_accesses += n
        self._current.latency_sum_s = current_latency
        self.total_long_latency += long_total
        self._current.long_latency += long_total
        self.total_wake_long_latency += wake_total
        self._current.wake_long_latency += wake_total
        self._last_disk_access = last

    def on_request(self) -> None:
        """One merged disk request began (request-size statistics)."""
        self.total_disk_requests += 1
        self._current.disk_requests += 1

    def on_requests(self, count: int) -> None:
        """``count`` merged disk requests at once (batched miss runs)."""
        self.total_disk_requests += count
        self._current.disk_requests += count

    def on_write(self, now: float) -> None:
        """One write access absorbed by the cache (no disk read)."""
        del now
        self.total_accesses += 1
        self.total_writes += 1
        self._current.accesses += 1

    def on_flush(self, num_pages: int) -> None:
        """``num_pages`` dirty pages written back to disk."""
        self.total_flush_pages += num_pages

    # --- periods -----------------------------------------------------------------

    def close_period(
        self,
        now: float,
        memory_bytes: int = 0,
        timeout_s: Optional[float] = None,
    ) -> PeriodMetrics:
        """Finish the current period at ``now`` and start the next."""
        current = self._current
        current.end_s = now
        current.memory_bytes = memory_bytes
        current.timeout_s = timeout_s
        if self._idle_lengths:
            current.mean_idle_s = float(np.mean(self._idle_lengths))
        self.periods.append(current)
        self._idle_lengths = []
        self._current = PeriodMetrics(
            index=current.index + 1, start_s=now, end_s=now + self.period_s
        )
        return current

    # --- summary --------------------------------------------------------------------

    @property
    def current_period_start(self) -> float:
        return self._current.start_s

    @property
    def current_period_accesses(self) -> int:
        return self._current.accesses

    @property
    def mean_latency_s(self) -> float:
        """Average latency over *all* disk-cache accesses (hits are free)."""
        if self.total_accesses == 0:
            return 0.0
        return self.latency_sum_s / self.total_accesses

    def long_latency_per_s(self, duration_s: float) -> float:
        if duration_s <= 0:
            return 0.0
        return self.total_long_latency / duration_s

    @property
    def avg_request_pages(self) -> float:
        if self.total_disk_requests == 0:
            return 1.0
        return self.total_disk_pages / self.total_disk_requests
