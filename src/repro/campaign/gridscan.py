"""Cross-trace batched candidate grids: one tensorized pass per sweep.

The paper's joint policy search scores every (memory size x disk
timeout) candidate on every workload.  Done naively that is
``traces x sizes x timeouts`` independent evaluations, each re-deriving
the trace's hit/miss outcomes from scratch.  But the expensive part --
the stack-distance profile -- depends only on the trace, and the
timeout axis depends only on the idle-gap distribution of each
``(trace, size)`` pair.  :func:`grid_scan` therefore factors the sweep:

* one shared :class:`~repro.cache.profile.TraceProfile` per trace (via
  the process memo / result cache -- raise ``$REPRO_PROFILE_MEMO`` for
  wide sweeps, see :func:`repro.cache.profile.memo_capacity`);
* one sorted-depth Mattson count for *all* memory sizes at once
  (:meth:`TraceProfile.hit_counts`);
* one miss-gap array per ``(trace, size)``, with every timeout scored
  against it as a single broadcast reduction.

The result is **bit-identical** to :func:`naive_grid_scan`, the
per-cell reference evaluator (``tests/campaign/test_gridscan.py``
asserts exact equality): the broadcast ``max(gap - timeout, 0)`` rows
reduce in the same pairwise order numpy uses for each cell's 1-D sum,
and the count fields are integers.

The scored quantity is the paper's spin-down arithmetic applied to the
profile-predicted miss stream: a disk with timeout ``t`` spins down
once per idle gap longer than ``t``, sleeps the remainder of each such
gap, and each spin-down costs the transition energy.  It is an
*estimator* for ranking candidates (it prices neither latency nor
memory energy), not a replacement for the full simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.cache.profile import get_profile
from repro.errors import SimulationError


@dataclass(frozen=True)
class GridScanResult:
    """Per-cell scores of a (trace x memory size x timeout) sweep."""

    #: Candidate cache sizes, bytes -- axis 1 of the tensors.
    memory_bytes: np.ndarray
    #: Candidate spin-down timeouts, seconds -- axis 2 of the tensors.
    timeouts_s: np.ndarray
    #: Profile content keys, one per trace -- axis 0 of the tensors.
    trace_keys: Tuple[str, ...]
    #: Predicted disk misses, shape ``(traces, sizes)``.
    miss_counts: np.ndarray
    #: Disk spin-downs, shape ``(traces, sizes, timeouts)``.
    spin_downs: np.ndarray
    #: Disk standby seconds, shape ``(traces, sizes, timeouts)``.
    sleep_s: np.ndarray
    #: Estimated net disk savings, joules, same shape.
    est_savings_j: np.ndarray

    @property
    def num_traces(self) -> int:
        return len(self.trace_keys)

    def total_savings(self) -> np.ndarray:
        """Fleet view: savings summed over traces, shape ``(S, T)``."""
        return self.est_savings_j.sum(axis=0)

    def best_candidate(self) -> Tuple[int, float]:
        """The ``(memory_bytes, timeout_s)`` maximizing total savings."""
        totals = self.total_savings()
        flat = int(np.argmax(totals))
        s, t = np.unravel_index(flat, totals.shape)
        return int(self.memory_bytes[s]), float(self.timeouts_s[t])


def _candidate_arrays(machine, memory_bytes, timeouts_s):
    sizes = np.asarray(list(memory_bytes), dtype=np.int64)
    taus = np.asarray(list(timeouts_s), dtype=np.float64)
    if sizes.size == 0 or taus.size == 0:
        raise SimulationError("grid needs at least one size and one timeout")
    if np.any(sizes < 0):
        raise SimulationError("memory sizes must be non-negative")
    if np.any(taus < 0):
        raise SimulationError("timeouts must be non-negative")
    page = machine.page_bytes
    if np.any(sizes % page):
        raise SimulationError("memory sizes must be whole pages")
    return sizes, taus, sizes // page


def _miss_gaps(trace, profile, capacity_pages: int) -> np.ndarray:
    """Idle gaps the disk sees under an LRU cache of ``capacity_pages``.

    Gap boundaries are the predicted miss times, plus the observation
    edges at 0 and the trace's last access (the paper's idle-period
    bookkeeping).  Shared verbatim by the tensor and naive paths so
    their floating point cannot diverge.
    """
    hits = profile.hit_mask(capacity_pages, trace.num_accesses)
    miss_times = trace.times[~hits]
    edges = np.concatenate(([0.0], miss_times, [trace.duration_s]))
    return np.diff(edges)


def grid_scan(
    traces: Sequence,
    machine,
    memory_bytes: Sequence[int],
    timeouts_s: Sequence[float],
    warm_start: bool = True,
    cache=None,
) -> GridScanResult:
    """Score every (trace, memory size, timeout) cell in one batched pass.

    ``cache`` optionally overrides the process-wide profile backend
    (see :func:`repro.cache.profile.get_profile`).
    """
    sizes, taus, capacities = _candidate_arrays(
        machine, memory_bytes, timeouts_s
    )
    n_traces = len(traces)
    if n_traces == 0:
        raise SimulationError("grid needs at least one trace")

    disk = machine.disk
    static_w = disk.static_power_watts
    transition_j = disk.transition_energy_joules

    keys = []
    misses = np.empty((n_traces, sizes.size), dtype=np.int64)
    spins = np.empty((n_traces, sizes.size, taus.size), dtype=np.int64)
    sleeps = np.empty((n_traces, sizes.size, taus.size), dtype=np.float64)
    for r, trace in enumerate(traces):
        kwargs = {} if cache is None else {"cache": cache}
        profile = get_profile(trace, warm_start=warm_start, **kwargs)
        keys.append(profile.key)
        misses[r] = profile.miss_counts(capacities)
        for s, capacity in enumerate(capacities.tolist()):
            gaps = _miss_gaps(trace, profile, capacity)
            # One broadcast per (trace, size): every timeout's sleep and
            # spin-down count falls out of a single (T, gaps) reduction.
            excess = np.maximum(gaps[None, :] - taus[:, None], 0.0)
            sleeps[r, s] = excess.sum(axis=1)
            spins[r, s] = (gaps[None, :] > taus[:, None]).sum(axis=1)
    savings = static_w * sleeps - spins * transition_j
    return GridScanResult(
        memory_bytes=sizes,
        timeouts_s=taus,
        trace_keys=tuple(keys),
        miss_counts=misses,
        spin_downs=spins,
        sleep_s=sleeps,
        est_savings_j=savings,
    )


def naive_grid_scan(
    traces: Sequence,
    machine,
    memory_bytes: Sequence[int],
    timeouts_s: Sequence[float],
    warm_start: bool = True,
    cache=None,
) -> GridScanResult:
    """Reference evaluator: every cell recomputed independently.

    Exists to pin :func:`grid_scan` down -- the differential test
    asserts exact (bitwise) equality between the two -- and as the
    baseline the ``fullres`` bench suite measures the batched pass
    against.
    """
    sizes, taus, capacities = _candidate_arrays(
        machine, memory_bytes, timeouts_s
    )
    n_traces = len(traces)
    if n_traces == 0:
        raise SimulationError("grid needs at least one trace")

    disk = machine.disk
    static_w = disk.static_power_watts
    transition_j = disk.transition_energy_joules

    keys = []
    misses = np.empty((n_traces, sizes.size), dtype=np.int64)
    spins = np.empty((n_traces, sizes.size, taus.size), dtype=np.int64)
    sleeps = np.empty((n_traces, sizes.size, taus.size), dtype=np.float64)
    savings = np.empty_like(sleeps)
    for r, trace in enumerate(traces):
        kwargs = {} if cache is None else {"cache": cache}
        for s, capacity in enumerate(capacities.tolist()):
            for t, tau in enumerate(taus.tolist()):
                profile = get_profile(trace, warm_start=warm_start, **kwargs)
                gaps = _miss_gaps(trace, profile, capacity)
                hits = profile.hit_mask(capacity, trace.num_accesses)
                misses[r, s] = trace.num_accesses - int(hits.sum())
                sleep = float(np.maximum(gaps - tau, 0.0).sum())
                spin = int((gaps > tau).sum())
                sleeps[r, s, t] = sleep
                spins[r, s, t] = spin
                savings[r, s, t] = static_w * sleep - spin * transition_j
        keys.append(get_profile(trace, warm_start=warm_start, **kwargs).key)
    return GridScanResult(
        memory_bytes=sizes,
        timeouts_s=taus,
        trace_keys=tuple(keys),
        miss_counts=misses,
        spin_downs=spins,
        sleep_s=sleeps,
        est_savings_j=savings,
    )
