"""Content hashing for campaign tasks.

A task's *key* is a SHA-256 digest over a canonical JSON encoding of
everything that determines its result: the machine configuration, the
workload parameters, the seed, the method, and a fingerprint of the
``repro`` source tree itself.  Two tasks with the same key are guaranteed
to compute the same rows, so the key doubles as the content address of
the on-disk result cache (:mod:`repro.campaign.cache`) and the identity
used by the run journal for checkpoint/resume.

Presentation metadata (row labels, experiment names, point indices) is
deliberately *excluded* from the key: overlapping grids from different
experiments share cache entries whenever their simulations coincide.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Any

#: Bump when the task payload schema or result payload shape changes in a
#: way that invalidates old cache entries.
SCHEMA_VERSION = 1


def _default(value: Any) -> Any:
    """JSON fallback: dataclasses, numpy scalars, paths, sets."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(f"cannot canonicalise {type(value).__name__}: {value!r}")


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, stable float repr."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), default=_default
    )


def digest(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (sorted, path-tagged).

    Any edit to the package changes every task key, so a stale cache can
    never leak results computed by different code.
    """
    root = Path(__file__).resolve().parent.parent  # src/repro
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode("utf-8"))
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    return h.hexdigest()


def task_key(payload: Any) -> str:
    """The content address of one task: schema + code + task payload."""
    return digest(
        {
            "schema": SCHEMA_VERSION,
            "code": code_fingerprint(),
            "task": payload,
        }
    )
