"""Campaign orchestration: parallel experiment fan-out with caching.

Turns experiment suites, parameter sweeps and differential-verification
seed ranges into DAGs of independent tasks; executes them on a process
pool with a content-addressed result cache, a resumable JSONL run
journal, per-task retry, and run telemetry.  See ``docs/API.md`` for the
task model and cache-key definition.
"""

from repro.campaign.cache import CACHE_ENV, NullCache, ResultCache, default_cache_root
from repro.campaign.gridscan import GridScanResult, grid_scan, naive_grid_scan
from repro.campaign.executor import (
    CampaignReport,
    CampaignStats,
    TaskRecord,
    run_campaign,
)
from repro.campaign.hashing import canonical_json, code_fingerprint, digest, task_key
from repro.campaign.journal import RunJournal, completed_payloads, read_events
from repro.campaign.plan import (
    CampaignPlan,
    GridPoint,
    grid_tasks,
    resolve_methods,
    run_plan,
    split_by_point,
)
from repro.campaign.tasks import (
    ExperimentTask,
    SimSummary,
    SimTask,
    VerifyTask,
    WorkloadSpec,
    execute_task,
)

__all__ = [
    "CACHE_ENV",
    "CampaignPlan",
    "CampaignReport",
    "CampaignStats",
    "ExperimentTask",
    "GridPoint",
    "GridScanResult",
    "NullCache",
    "ResultCache",
    "RunJournal",
    "SimSummary",
    "SimTask",
    "TaskRecord",
    "VerifyTask",
    "WorkloadSpec",
    "canonical_json",
    "code_fingerprint",
    "completed_payloads",
    "default_cache_root",
    "digest",
    "execute_task",
    "grid_scan",
    "grid_tasks",
    "naive_grid_scan",
    "read_events",
    "resolve_methods",
    "run_campaign",
    "run_plan",
    "split_by_point",
    "task_key",
]
