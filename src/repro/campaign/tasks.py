"""The campaign task model.

A *task* is one independent, deterministic, picklable unit of work with a
stable content hash (:func:`repro.campaign.hashing.task_key`).  Three
kinds exist:

* :class:`SimTask` -- one (workload point, method) simulation, the unit
  the grid experiments and :func:`repro.sim.sweep.sweep` decompose into;
* :class:`ExperimentTask` -- a whole registered experiment, for runners
  that do not decompose into per-method units (fig5, fig9, idlefit);
* :class:`VerifyTask` -- one differential-verification check over a
  contiguous seed range (see :mod:`repro.verify.parallel`).

Every task's ``execute()`` returns a JSON-serialisable payload dict, so
results can be shipped across process boundaries, journaled, and stored
in the content-addressed cache without custom picklers.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Dict, Optional, Tuple

from repro.config.machine import MachineConfig
from repro.policies.registry import MethodSpec
from repro.sim.results import NormalizedResult, SimResult
from repro.traces.trace import Trace

from repro.campaign.hashing import task_key


# --- workload ----------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything that determines a generated trace, seed included."""

    dataset_gb: float
    rate_mb: float
    popularity: float
    duration_s: float
    seed: int
    write_fraction: float = 0.0
    page_bytes: int = 4096
    file_scale: int = 1

    @classmethod
    def for_machine(
        cls,
        machine: MachineConfig,
        dataset_gb: float,
        rate_mb: float,
        popularity: float,
        duration_s: float,
        seed: int,
        write_fraction: float = 0.0,
    ) -> "WorkloadSpec":
        return cls(
            dataset_gb=float(dataset_gb),
            rate_mb=float(rate_mb),
            popularity=float(popularity),
            duration_s=float(duration_s),
            seed=int(seed),
            write_fraction=float(write_fraction),
            page_bytes=machine.page_bytes,
            file_scale=machine.scale,
        )

    def build(self) -> Trace:
        from repro.traces.specweb import generate_trace
        from repro.units import GB, MB

        return generate_trace(
            dataset_bytes=self.dataset_gb * GB,
            data_rate=self.rate_mb * MB,
            duration_s=self.duration_s,
            popularity=self.popularity,
            page_size=self.page_bytes,
            seed=self.seed,
            file_scale=self.file_scale,
            write_fraction=self.write_fraction,
        )


# --- result summary ----------------------------------------------------------


@dataclass(frozen=True)
class SimSummary:
    """The JSON-safe slice of :class:`repro.sim.results.SimResult`.

    Carries every scalar the experiment assemblers read, plus the
    joint manager's per-period memory decisions (hw-sensitivity rows).
    The normalisation arithmetic mirrors ``SimResult.normalized_to``
    bit-for-bit so assembled rows are byte-identical to the direct path.
    """

    label: str
    duration_s: float
    memory_energy_j: float
    disk_energy_j: float
    total_accesses: int
    disk_page_accesses: int
    disk_requests: int
    disk_write_pages: int
    mean_latency_s: float
    long_latency: int
    wake_long_latency: int
    spin_down_cycles: int
    utilization: float
    decision_memory_bytes: Tuple[int, ...] = ()
    #: Which replay loop produced the run ("scalar", "vectorized",
    #: "missrun", "epoch", "writes" or "disable"); defaulted so payloads
    #: cached before the field existed still load.
    replay_mode: str = "scalar"
    #: Seconds the disk spent spun down in the measured window; the fleet
    #: report derives sleeping-disk counts from it.  Defaulted so
    #: pre-fleet cached payloads still load.
    disk_standby_s: float = 0.0
    #: Offline-optimality regret (see :mod:`repro.analysis.regret`);
    #: None unless the task asked for it (``SimTask(regret=True)``), and
    #: defaulted so pre-regret cached payloads still load.
    opt_misses: Optional[int] = None
    excess_misses: Optional[int] = None
    energy_lower_bound_j: Optional[float] = None
    energy_ratio: Optional[float] = None

    @property
    def total_energy_j(self) -> float:
        return self.memory_energy_j + self.disk_energy_j

    @property
    def long_latency_per_s(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.long_latency / self.duration_s

    @property
    def miss_ratio(self) -> float:
        if self.total_accesses == 0:
            return 0.0
        return self.disk_page_accesses / self.total_accesses

    def normalized_to(self, baseline: "SimSummary") -> NormalizedResult:
        def ratio(x: float, base: float) -> float:
            return x / base if base > 0 else 0.0

        return NormalizedResult(
            label=self.label,
            total_energy=ratio(self.total_energy_j, baseline.total_energy_j),
            disk_energy=ratio(self.disk_energy_j, baseline.disk_energy_j),
            memory_energy=ratio(self.memory_energy_j, baseline.memory_energy_j),
            mean_latency_s=self.mean_latency_s,
            utilization=self.utilization,
            long_latency_per_s=self.long_latency_per_s,
        )

    @classmethod
    def from_result(cls, result: SimResult) -> "SimSummary":
        return cls(
            label=result.label,
            duration_s=result.duration_s,
            memory_energy_j=result.memory_energy_j,
            disk_energy_j=result.disk_energy_j,
            total_accesses=result.total_accesses,
            disk_page_accesses=result.disk_page_accesses,
            disk_requests=result.disk_requests,
            disk_write_pages=result.disk_write_pages,
            mean_latency_s=result.mean_latency_s,
            long_latency=result.long_latency,
            wake_long_latency=result.wake_long_latency,
            spin_down_cycles=result.spin_down_cycles,
            utilization=result.utilization,
            decision_memory_bytes=tuple(
                int(d.memory_bytes) for d in result.decisions
            ),
            replay_mode=result.replay_mode,
            disk_standby_s=float(result.disk_energy.standby_s),
            opt_misses=(
                None if result.regret is None else result.regret.opt_misses
            ),
            excess_misses=(
                None if result.regret is None else result.regret.excess_misses
            ),
            energy_lower_bound_j=(
                None
                if result.regret is None
                else result.regret.energy_lower_bound_j
            ),
            energy_ratio=(
                None if result.regret is None else result.regret.energy_ratio
            ),
        )

    def to_payload(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["decision_memory_bytes"] = list(self.decision_memory_bytes)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SimSummary":
        data = dict(payload)
        data["decision_memory_bytes"] = tuple(
            int(b) for b in data.get("decision_memory_bytes", ())
        )
        return cls(**data)


# --- tasks -------------------------------------------------------------------


@dataclass(frozen=True)
class SimTask:
    """One (workload point, method) simulation unit."""

    method: MethodSpec
    machine: MachineConfig
    workload: WorkloadSpec
    duration_s: float
    warmup_s: float = 0.0
    #: Also score the run against the offline oracles
    #: (:mod:`repro.analysis.regret`); needs ``warmup_s == 0``.
    regret: bool = False

    kind = "sim"

    def payload(self) -> Dict[str, Any]:
        payload = {
            "kind": self.kind,
            "method": dataclasses.asdict(self.method),
            "machine": dataclasses.asdict(self.machine),
            "workload": dataclasses.asdict(self.workload),
            "duration_s": self.duration_s,
            "warmup_s": self.warmup_s,
        }
        # Only present when set, so every pre-regret cache key is stable.
        if self.regret:
            payload["regret"] = True
        return payload

    @cached_property
    def key(self) -> str:
        return task_key(self.payload())

    def describe(self) -> str:
        w = self.workload
        return (
            f"sim:{self.method.label} "
            f"({w.dataset_gb:g}GB, {w.rate_mb:g}MB/s, p={w.popularity:g}, "
            f"seed {w.seed})"
        )

    def execute(self) -> Dict[str, Any]:
        from repro.sim.runner import run_method

        trace = self.workload.build()
        result = run_method(
            self.method,
            trace,
            self.machine,
            duration_s=self.duration_s,
            warmup_s=self.warmup_s,
            regret=self.regret,
        )
        return {
            "kind": self.kind,
            "summary": SimSummary.from_result(result).to_payload(),
        }


@dataclass(frozen=True)
class ExperimentTask:
    """A whole registered experiment as one atomic, cacheable unit."""

    name: str
    config: Any  # repro.experiments.base.ExperimentConfig (kept lazy)

    kind = "experiment"

    def payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "config": dataclasses.asdict(self.config),
        }

    @cached_property
    def key(self) -> str:
        return task_key(self.payload())

    def describe(self) -> str:
        return f"experiment:{self.name}"

    def execute(self) -> Dict[str, Any]:
        from repro.experiments.registry import get_experiment

        result = get_experiment(self.name)(self.config)
        return {
            "kind": self.kind,
            "name": result.name,
            "title": result.title,
            "rows": result.rows,
            "notes": result.notes,
        }


@dataclass(frozen=True)
class VerifyTask:
    """One differential check over ``seeds`` fuzzed workloads."""

    check: str
    first_seed: int
    seeds: int
    max_accesses: int = 300

    kind = "verify"

    def payload(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "check": self.check,
            "first_seed": self.first_seed,
            "seeds": self.seeds,
            "max_accesses": self.max_accesses,
        }

    @cached_property
    def key(self) -> str:
        return task_key(self.payload())

    def describe(self) -> str:
        stop = self.first_seed + self.seeds
        return f"verify:{self.check}[{self.first_seed}..{stop})"

    def execute(self) -> Dict[str, Any]:
        from repro.verify.differential import run_differential

        report = run_differential(
            seeds=self.seeds,
            checks=[self.check],
            first_seed=self.first_seed,
            max_accesses=self.max_accesses,
        )
        outcome = report.outcomes[0]
        divergence = (
            None
            if outcome.divergence is None
            else dataclasses.asdict(outcome.divergence)
        )
        return {
            "kind": self.kind,
            "check": outcome.name,
            "first_seed": self.first_seed,
            "seeds": self.seeds,
            "seeds_run": outcome.seeds_run,
            "divergence": divergence,
        }


#: Anything run_campaign accepts.
Task = Any


def execute_task(task: Task) -> Dict[str, Any]:
    """Run one task; the module-level entry point worker processes import."""
    return task.execute()


def timed_execute(task: Task) -> Tuple[Dict[str, Any], float]:
    """``execute_task`` plus the task's own wall-clock, measured in-worker."""
    start = time.perf_counter()
    payload = execute_task(task)
    return payload, time.perf_counter() - start
