"""Content-addressed on-disk result cache.

Results are stored one JSON file per task key under
``<root>/objects/<key[:2]>/<key>.json``.  The key already encodes the
code fingerprint and the full task payload (:mod:`repro.campaign.hashing`),
so a lookup can never return a result computed by different code or
different parameters; there is no expiry logic.  Writes are atomic
(temp file + ``os.replace``) so concurrent campaigns sharing one cache
directory never observe half-written entries.

The default root is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

CACHE_ENV = "REPRO_CACHE_DIR"


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_ENV, "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """Get/put JSON payloads by task key."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root).expanduser() if root else default_cache_root()

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def _path(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None  # missing or corrupt entry is simply a miss
        if not isinstance(entry, dict) or entry.get("key") != key:
            return None
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "created": time.time(), "payload": payload}
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.objects_dir.is_dir():
            return 0
        return sum(1 for _ in self.objects_dir.glob("*/*.json"))


class NullCache:
    """The ``--no-cache`` cache: remembers nothing."""

    root = None

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        del key
        return None

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        del key, payload

    def __len__(self) -> int:
        return 0
