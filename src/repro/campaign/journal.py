"""JSONL run journal: the checkpoint/resume backbone of a campaign.

Each campaign run owns a directory ``<runs_root>/<run_id>/`` holding

* ``journal.jsonl`` -- one event per line, appended and flushed as the
  run progresses (``run_started``, ``task_done``, ``task_failed``,
  ``run_finished``); ``task_done`` events embed the full result payload,
  so a journal is self-contained -- resuming does not require the result
  cache to still exist;
* ``campaign.json`` -- the machine-readable telemetry summary written at
  the end of the run (see :mod:`repro.campaign.executor`).

``repro campaign --resume RUN_ID`` replays the journal, seeds the result
table with every completed task key, and only executes what is missing.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, TextIO, Union

from repro.errors import CampaignError

JOURNAL_NAME = "journal.jsonl"
SUMMARY_NAME = "campaign.json"


class RunJournal:
    """Append-only event log for one campaign run."""

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.run_dir / JOURNAL_NAME
        self._handle: Optional[TextIO] = None

    def _file(self) -> TextIO:
        if self._handle is None or self._handle.closed:
            self._handle = self.path.open("a", encoding="utf-8")
        return self._handle

    def append(self, event: str, **fields: Any) -> None:
        record = {"event": event, "ts": time.time()}
        record.update(fields)
        handle = self._file()
        handle.write(json.dumps(record) + "\n")
        handle.flush()

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_events(run_dir: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield journal events, skipping lines truncated by a crash."""
    path = Path(run_dir) / JOURNAL_NAME
    if not path.is_file():
        raise CampaignError(f"no journal at {path}; nothing to resume")
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue  # interrupted mid-write; later events rewrite it
            if isinstance(event, dict):
                yield event


def completed_payloads(run_dir: Union[str, Path]) -> Dict[str, Dict[str, Any]]:
    """Task key -> result payload for every ``task_done`` in the journal."""
    done: Dict[str, Dict[str, Any]] = {}
    for event in read_events(run_dir):
        if event.get("event") != "task_done":
            continue
        key = event.get("key")
        payload = event.get("payload")
        if isinstance(key, str) and isinstance(payload, dict):
            done[key] = payload
    return done
