"""The campaign executor: fan tasks out, cache, journal, retry, report.

``run_campaign`` takes any list of campaign tasks (:mod:`repro.campaign.tasks`)
and resolves each one, in order of preference:

1. the run journal of the run being resumed (``resume=RUN_ID``),
2. the content-addressed result cache,
3. execution -- on a ``ProcessPoolExecutor`` with ``jobs`` workers, or
   serially in-process when ``jobs <= 1`` (graceful degradation, and the
   path used by tests that monkeypatch task internals).

Identical task keys within one campaign execute once and fan the result
out.  Worker crashes (``BrokenProcessPool``) and in-task exceptions are
retried with exponential backoff up to ``retries`` times; what still
fails is recorded per-task and surfaces in ``CampaignReport.ok`` rather
than aborting the rest of the campaign.

Telemetry -- per-task wall-clock (measured inside the worker), cache
hit/miss counters, worker utilization -- is returned on the report,
rendered by ``render_summary()`` and written as ``campaign.json`` next to
the journal.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.errors import CampaignError

from repro.cache import profile as trace_profiles
from repro.campaign.cache import NullCache, ResultCache
from repro.campaign.hashing import code_fingerprint, digest
from repro.campaign.journal import SUMMARY_NAME, RunJournal, completed_payloads
from repro.campaign.tasks import Task, timed_execute

#: How a task's result was obtained.
SOURCE_EXECUTED = "executed"
SOURCE_CACHE = "cache"
SOURCE_JOURNAL = "journal"
SOURCE_DEDUP = "dedup"


@dataclass
class TaskRecord:
    """One input task's outcome, aligned with the input task list."""

    index: int
    key: str
    kind: str
    label: str
    payload: Optional[Dict[str, Any]] = None
    source: str = SOURCE_EXECUTED
    wall_s: float = 0.0
    attempts: int = 0
    error: Optional[str] = None

    @property
    def cached(self) -> bool:
        return self.source in (SOURCE_CACHE, SOURCE_JOURNAL, SOURCE_DEDUP)

    @property
    def ok(self) -> bool:
        return self.payload is not None


@dataclass
class CampaignStats:
    """Run telemetry: counters, wall-clock, worker utilization."""

    tasks: int = 0
    unique: int = 0
    executed: int = 0
    cache_hits: int = 0
    journal_hits: int = 0
    dedup_hits: int = 0
    failures: int = 0
    retries: int = 0
    jobs: int = 1
    elapsed_s: float = 0.0
    busy_s: float = 0.0

    @property
    def hits(self) -> int:
        return self.cache_hits + self.journal_hits + self.dedup_hits

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.tasks if self.tasks else 0.0

    @property
    def speedup(self) -> float:
        """Aggregate task time over elapsed time: >1 means parallel won."""
        return self.busy_s / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def utilization(self) -> float:
        denom = self.jobs * self.elapsed_s
        return self.busy_s / denom if denom > 0 else 0.0


@dataclass
class CampaignReport:
    """Everything one ``run_campaign`` invocation produced."""

    run_id: str
    records: List[TaskRecord] = field(default_factory=list)
    stats: CampaignStats = field(default_factory=CampaignStats)
    run_dir: Optional[Path] = None

    @property
    def ok(self) -> bool:
        return all(record.ok for record in self.records)

    def payloads(self) -> List[Optional[Dict[str, Any]]]:
        return [record.payload for record in self.records]

    def failures(self) -> List[TaskRecord]:
        return [record for record in self.records if not record.ok]

    def replay_mode_counts(self) -> Dict[str, int]:
        """Replay-loop usage across the campaign's sim payloads.

        Counts every resolved sim-kind and fleet-shard record (cached
        payloads included) by the ``replay_mode`` its summary recorded;
        payloads cached before the field existed count as ``"scalar"``,
        and multi-disk fleet shards (no single replay loop) count as
        ``"multidisk"``.  A surprise ``"scalar"`` majority on an
        eligible workload usually means the fast paths are being
        skipped (kill switch, missing profiles).
        """
        counts: Dict[str, int] = {}
        for record in self.records:
            if record.payload is None:
                continue
            kind = record.payload.get("kind")
            if kind not in ("sim", "fleet-shard"):
                continue
            if kind == "fleet-shard" and "summary" not in record.payload:
                mode = "multidisk"
            else:
                summary = record.payload.get("summary") or {}
                mode = str(summary.get("replay_mode", "scalar"))
            counts[mode] = counts.get(mode, 0) + 1
        return dict(sorted(counts.items()))

    def fleet_summary(self) -> Optional[Dict[str, Any]]:
        """Aggregate fleet-shard telemetry: shard tasks, migration stats.

        None when the campaign resolved no fleet-shard records (the
        common case: experiment campaigns carry only sim tasks).
        """
        shard_tasks = 0
        tenants = 0
        pages_migrated = 0
        migration_energy_j = 0.0
        for record in self.records:
            payload = record.payload
            if payload is None or payload.get("kind") != "fleet-shard":
                continue
            shard_tasks += 1
            tenants += int(payload.get("tenants") or 0)
            fleet = payload.get("fleet") or {}
            pages_migrated += int(fleet.get("pages_migrated") or 0)
            migration_energy_j += float(fleet.get("migration_energy_j") or 0.0)
        if not shard_tasks:
            return None
        return {
            "shard_tasks": shard_tasks,
            "tenants": tenants,
            "pages_migrated": pages_migrated,
            "migration_energy_j": round(migration_energy_j, 6),
        }

    def regret_summary(self) -> Optional[Dict[str, Any]]:
        """Aggregate offline-optimality regret across sim payloads.

        None when no resolved sim record carried regret fields (the
        common case: regret scoring is opt-in per :class:`SimTask`).
        """
        ratios: List[float] = []
        excess = 0
        for record in self.records:
            if record.payload is None or record.payload.get("kind") != "sim":
                continue
            summary = record.payload.get("summary") or {}
            ratio = summary.get("energy_ratio")
            if ratio is None:
                continue
            ratios.append(float(ratio))
            excess += int(summary.get("excess_misses") or 0)
        if not ratios:
            return None
        return {
            "runs": len(ratios),
            "mean_energy_ratio": round(sum(ratios) / len(ratios), 4),
            "max_energy_ratio": round(max(ratios), 4),
            "excess_misses": excess,
        }

    def telemetry(self) -> Dict[str, Any]:
        s = self.stats
        return {
            "run_id": self.run_id,
            "code_fingerprint": code_fingerprint(),
            "jobs": s.jobs,
            "tasks": s.tasks,
            "unique_tasks": s.unique,
            "executed": s.executed,
            "cache_hits": s.cache_hits,
            "journal_hits": s.journal_hits,
            "dedup_hits": s.dedup_hits,
            "hits": s.hits,
            "hit_ratio": round(s.hit_ratio, 4),
            "failures": s.failures,
            "retries": s.retries,
            "elapsed_s": round(s.elapsed_s, 6),
            "busy_s": round(s.busy_s, 6),
            "speedup": round(s.speedup, 4),
            "worker_utilization": round(s.utilization, 4),
            "replay_modes": self.replay_mode_counts(),
            "regret": self.regret_summary(),
            "fleet": self.fleet_summary(),
            "tasks_detail": [
                {
                    "index": r.index,
                    "key": r.key,
                    "kind": r.kind,
                    "label": r.label,
                    "source": r.source,
                    "wall_s": round(r.wall_s, 6),
                    "attempts": r.attempts,
                    "error": r.error,
                }
                for r in self.records
            ],
        }

    def render_summary(self) -> str:
        s = self.stats
        lines = [
            f"campaign {self.run_id}: {s.tasks} task(s), "
            f"{s.unique} unique, jobs={s.jobs}",
            f"  executed      {s.executed}",
            f"  cache hits    {s.cache_hits}",
            f"  journal hits  {s.journal_hits}",
            f"  dedup hits    {s.dedup_hits}",
            f"  hit ratio     {s.hit_ratio:.1%}",
            f"  failures      {s.failures}",
            f"  retries       {s.retries}",
            f"  wall clock    {s.elapsed_s:.2f} s "
            f"(task time {s.busy_s:.2f} s, speedup {s.speedup:.2f}x, "
            f"worker utilization {s.utilization:.1%})",
        ]
        modes = self.replay_mode_counts()
        if modes:
            detail = " ".join(f"{k}={v}" for k, v in modes.items())
            lines.append(f"  replay modes  {detail}")
        fleet = self.fleet_summary()
        if fleet is not None:
            lines.append(
                f"  fleet         {fleet['shard_tasks']} shard task(s), "
                f"{fleet['tenants']} tenant(s), "
                f"{fleet['pages_migrated']} page(s) migrated "
                f"({fleet['migration_energy_j']:.1f} J)"
            )
        regret = self.regret_summary()
        if regret is not None:
            lines.append(
                f"  regret        {regret['runs']} run(s), energy ratio "
                f"mean {regret['mean_energy_ratio']:.3f} max "
                f"{regret['max_energy_ratio']:.3f}, excess misses "
                f"{regret['excess_misses']}"
            )
        if self.run_dir is not None:
            lines.append(f"  run dir       {self.run_dir}")
        return "\n".join(lines)


# --- executor ----------------------------------------------------------------


def _make_run_id(keys: Sequence[str]) -> str:
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{stamp}-{digest(list(keys))[:8]}"


def run_campaign(
    tasks: Sequence[Task],
    *,
    jobs: int = 1,
    cache: Optional[Union[ResultCache, NullCache]] = None,
    runs_root: Optional[Union[str, Path]] = None,
    run_id: Optional[str] = None,
    resume: Optional[str] = None,
    retries: int = 2,
    backoff_s: float = 0.25,
    on_progress: Optional[Callable[[TaskRecord, int, int], None]] = None,
) -> CampaignReport:
    """Resolve every task; return payloads aligned with ``tasks``.

    ``cache=None`` disables the result cache.  ``runs_root`` (defaulting
    to ``<cache root>/runs`` when a disk cache is used) is where journals
    and ``campaign.json`` live; without it the run is journal-less and
    cannot be resumed.  ``resume`` names an earlier run id under
    ``runs_root`` whose completed tasks are reused verbatim.
    """
    if jobs < 1:
        raise CampaignError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise CampaignError(f"retries must be >= 0, got {retries}")
    cache = cache if cache is not None else NullCache()
    if runs_root is None and getattr(cache, "root", None) is not None:
        runs_root = cache.root / "runs"

    start = time.monotonic()
    tasks = list(tasks)
    keys = [task.key for task in tasks]
    records = [
        TaskRecord(index=i, key=key, kind=task.kind, label=task.describe())
        for i, (task, key) in enumerate(zip(tasks, keys))
    ]
    stats = CampaignStats(tasks=len(tasks), jobs=jobs, retries=0)

    # Unique keys, first occurrence wins; later duplicates are dedup hits.
    first_index: Dict[str, int] = {}
    for i, key in enumerate(keys):
        first_index.setdefault(key, i)
    stats.unique = len(first_index)

    if resume is not None:
        if runs_root is None:
            raise CampaignError(
                "resume requires a runs directory (enable the cache or "
                "pass runs_root)"
            )
        run_id = resume
    elif run_id is None:
        run_id = _make_run_id(keys)

    run_dir: Optional[Path] = None
    journal: Optional[RunJournal] = None
    if runs_root is not None:
        run_dir = Path(runs_root) / run_id
        if resume is not None:
            # Raises CampaignError when the journal does not exist.
            journal_payloads = completed_payloads(run_dir)
        else:
            journal_payloads = {}
        journal = RunJournal(run_dir)
    else:
        journal_payloads = {}

    resolved: Dict[str, Dict[str, Any]] = {}
    source_of: Dict[str, str] = {}
    wall_of: Dict[str, float] = {}
    attempts_of: Dict[str, int] = {}
    errors: Dict[str, str] = {}
    done_count = 0

    def note(record: TaskRecord) -> None:
        nonlocal done_count
        done_count += 1
        if on_progress is not None:
            on_progress(record, done_count, stats.unique)

    def finish_key(key: str, payload: Dict[str, Any], source: str,
                   wall: float = 0.0, attempts: int = 0) -> None:
        resolved[key] = payload
        source_of[key] = source
        wall_of[key] = wall
        attempts_of[key] = attempts
        rep = records[first_index[key]]
        rep.payload = payload
        rep.source = source
        rep.wall_s = wall
        rep.attempts = attempts
        if journal is not None:
            journal.append(
                "task_done",
                key=key,
                kind=rep.kind,
                label=rep.label,
                source=source,
                wall_s=wall,
                attempts=attempts,
                payload=payload,
            )
        if source == SOURCE_EXECUTED:
            cache.put(key, payload)
        note(rep)

    def fail_key(key: str, error: str, attempts: int) -> None:
        errors[key] = error
        attempts_of[key] = attempts
        rep = records[first_index[key]]
        rep.error = error
        rep.attempts = attempts
        if journal is not None:
            journal.append(
                "task_failed",
                key=key,
                kind=rep.kind,
                label=rep.label,
                attempts=attempts,
                error=error,
            )
        note(rep)

    if journal is not None:
        journal.append(
            "run_started",
            run_id=run_id,
            tasks=len(tasks),
            unique=stats.unique,
            jobs=jobs,
            resumed_from=resume,
            code_fingerprint=code_fingerprint(),
        )

    # 1/2: resolve from the resumed journal, then the cache.
    for key in first_index:
        if key in journal_payloads:
            stats.journal_hits += 1
            finish_key(key, journal_payloads[key], SOURCE_JOURNAL)
    for key in first_index:
        if key in resolved:
            continue
        hit = cache.get(key)
        if hit is not None:
            stats.cache_hits += 1
            finish_key(key, hit, SOURCE_CACHE)

    # 3: execute what is left.  While tasks run, point the trace-profile
    # layer at the campaign's result cache so every sweep point, method
    # and later resumed run shares one stack-distance pass per trace.
    todo = [key for key in first_index if key not in resolved]
    if todo:
        previous_backend = _install_profile_cache(cache)
        try:
            if jobs <= 1:
                _execute_serial(
                    todo, tasks, first_index, retries, backoff_s,
                    finish_key, fail_key, stats,
                )
            else:
                _execute_parallel(
                    todo, tasks, first_index, jobs, retries, backoff_s,
                    finish_key, fail_key, stats,
                    profile_cache_root=getattr(cache, "root", None),
                )
        finally:
            trace_profiles.set_active_cache(previous_backend)

    # Fan results out to duplicate tasks.
    for i, key in enumerate(keys):
        if i == first_index[key]:
            continue
        record = records[i]
        if key in resolved:
            record.payload = resolved[key]
            record.source = SOURCE_DEDUP
            stats.dedup_hits += 1
        else:
            record.error = errors.get(key, "task failed")
            record.attempts = attempts_of.get(key, 0)

    stats.executed = sum(
        1 for key in first_index if source_of.get(key) == SOURCE_EXECUTED
    )
    stats.failures = sum(1 for record in records if not record.ok)
    stats.busy_s = sum(wall_of.values())
    stats.elapsed_s = time.monotonic() - start

    report = CampaignReport(
        run_id=run_id, records=records, stats=stats, run_dir=run_dir
    )
    if journal is not None:
        journal.append(
            "run_finished",
            run_id=run_id,
            executed=stats.executed,
            cache_hits=stats.cache_hits,
            journal_hits=stats.journal_hits,
            dedup_hits=stats.dedup_hits,
            failures=stats.failures,
            elapsed_s=stats.elapsed_s,
        )
        journal.close()
    if run_dir is not None:
        import json

        summary_path = run_dir / SUMMARY_NAME
        summary_path.write_text(
            json.dumps(report.telemetry(), indent=2) + "\n", encoding="utf-8"
        )
    return report


def _install_profile_cache(cache) -> Any:
    """Make the campaign's disk cache the profile backend; returns the
    previous backend (unchanged when the cache is memory-less)."""
    if getattr(cache, "root", None) is None:
        return trace_profiles.active_cache()
    return trace_profiles.set_active_cache(cache)


def _pool_profile_initializer(cache_root: Optional[str]) -> None:
    """Worker-process bootstrap: share the profile cache across the pool."""
    if cache_root:
        trace_profiles.set_active_cache(cache_root)


def _execute_serial(
    todo: List[str],
    tasks: Sequence[Task],
    first_index: Dict[str, int],
    retries: int,
    backoff_s: float,
    finish_key: Callable[..., None],
    fail_key: Callable[..., None],
    stats: CampaignStats,
) -> None:
    for key in todo:
        task = tasks[first_index[key]]
        attempt = 0
        while True:
            attempt += 1
            try:
                payload, wall = timed_execute(task)
            except Exception as exc:  # noqa: BLE001 - per-task isolation
                if attempt > retries:
                    fail_key(key, f"{type(exc).__name__}: {exc}", attempt)
                    break
                stats.retries += 1
                time.sleep(backoff_s * (2 ** (attempt - 1)))
                continue
            finish_key(key, payload, SOURCE_EXECUTED, wall, attempt)
            break


def _execute_parallel(
    todo: List[str],
    tasks: Sequence[Task],
    first_index: Dict[str, int],
    jobs: int,
    retries: int,
    backoff_s: float,
    finish_key: Callable[..., None],
    fail_key: Callable[..., None],
    stats: CampaignStats,
    profile_cache_root: Optional[Path] = None,
) -> None:
    """Pool execution with per-task retry and pool-crash recovery.

    A ``BrokenProcessPool`` kills every in-flight future; the whole batch
    is resubmitted on a fresh pool, each casualty costing one attempt.
    ``retries`` therefore bounds both in-task exceptions and crash
    collateral.
    """
    attempts: Dict[str, int] = {key: 0 for key in todo}
    batch = list(todo)
    round_index = 0
    while batch:
        if round_index > 0:
            time.sleep(backoff_s * (2 ** min(round_index - 1, 5)))
        round_index += 1
        retry: List[str] = []
        pool = ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_pool_profile_initializer,
            initargs=(
                str(profile_cache_root)
                if profile_cache_root is not None
                else None,
            ),
        )
        try:
            futures = {
                pool.submit(timed_execute, tasks[first_index[key]]): key
                for key in batch
            }
            for future in as_completed(futures):
                key = futures[future]
                attempts[key] += 1
                try:
                    payload, wall = future.result()
                except Exception as exc:  # noqa: BLE001 - includes pool death
                    if attempts[key] > retries:
                        fail_key(
                            key, f"{type(exc).__name__}: {exc}", attempts[key]
                        )
                    else:
                        stats.retries += 1
                        retry.append(key)
                    if isinstance(exc, BrokenProcessPool):
                        continue  # siblings fail fast; drain them all
                    continue
                finish_key(key, payload, SOURCE_EXECUTED, wall, attempts[key])
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        batch = retry
