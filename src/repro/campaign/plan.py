"""Campaign plans: task lists plus the pure function that assembles rows.

A :class:`CampaignPlan` is the contract between the experiment/sweep
modules and the executor: ``tasks`` is the flat list of independent
units, ``assemble`` turns the aligned list of result payloads back into
the artefact (an ``ExperimentResult`` or sweep rows).  Both the serial
path (``run_plan`` with no runner) and ``repro campaign`` share this one
code path, so parallel runs are byte-identical to serial ones by
construction -- assembly only ever sees payloads in task order.

:class:`GridPoint` models the shape every grid experiment has: one
machine + one workload, simulated under several methods, with the
always-on baseline among them for normalisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import CampaignError
from repro.config.machine import MachineConfig
from repro.policies.registry import MethodSpec, parse_method

from repro.campaign.tasks import SimSummary, SimTask, Task, WorkloadSpec, execute_task

#: Assemblers receive one payload dict per task, in task order.
Assembler = Callable[[Sequence[Mapping[str, Any]]], Any]


@dataclass
class CampaignPlan:
    """Tasks plus the function that turns their payloads into the artefact."""

    tasks: List[Task]
    assemble: Assembler


@dataclass(frozen=True)
class GridPoint:
    """One workload point simulated under several methods."""

    machine: MachineConfig
    workload: WorkloadSpec
    methods: Tuple[MethodSpec, ...]
    duration_s: float
    warmup_s: float = 0.0
    #: Row-identifying columns for this point, e.g. (("dataset_gb", 4.0),).
    meta: Tuple[Tuple[str, Any], ...] = ()

    def tasks(self) -> List[SimTask]:
        return [
            SimTask(
                method=method,
                machine=self.machine,
                workload=self.workload,
                duration_s=self.duration_s,
                warmup_s=self.warmup_s,
            )
            for method in self.methods
        ]


def resolve_methods(
    methods: Sequence[Union[str, MethodSpec]]
) -> Tuple[MethodSpec, ...]:
    return tuple(
        parse_method(m) if isinstance(m, str) else m for m in methods
    )


def grid_tasks(points: Sequence[GridPoint]) -> List[SimTask]:
    """Flatten points into tasks: point-major, method order preserved."""
    tasks: List[SimTask] = []
    for point in points:
        tasks.extend(point.tasks())
    return tasks


def split_by_point(
    points: Sequence[GridPoint],
    payloads: Sequence[Mapping[str, Any]],
) -> List[Tuple[GridPoint, Dict[str, SimSummary]]]:
    """Regroup flat task payloads into per-point ``label -> summary`` maps.

    The inverse of :func:`grid_tasks`; method order within each point is
    preserved, which keeps assembled row order identical to the serial
    comparison loop the experiments used before campaigns existed.
    """
    grouped: List[Tuple[GridPoint, Dict[str, SimSummary]]] = []
    cursor = 0
    for point in points:
        by_label: Dict[str, SimSummary] = {}
        for method in point.methods:
            payload = payloads[cursor]
            cursor += 1
            if payload is None:
                raise CampaignError(
                    f"missing result for {method.label} at point "
                    f"{dict(point.meta)!r}"
                )
            by_label[method.label] = SimSummary.from_payload(
                payload["summary"]
            )
        grouped.append((point, by_label))
    if cursor != len(payloads):
        raise CampaignError(
            f"grid shape mismatch: {len(payloads)} payload(s) for "
            f"{cursor} task(s)"
        )
    return grouped


def run_plan(
    plan: CampaignPlan,
    runner: Optional[Callable[[Sequence[Task]], Sequence[Mapping[str, Any]]]] = None,
) -> Any:
    """Execute a plan's tasks (serially unless ``runner`` says otherwise)
    and assemble the artefact."""
    if runner is None:
        payloads: Sequence[Mapping[str, Any]] = [
            execute_task(task) for task in plan.tasks
        ]
    else:
        payloads = runner(plan.tasks)
    return plan.assemble(payloads)
