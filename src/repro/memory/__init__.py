"""RDRAM memory simulation: banks, power modes, energy and policies.

The engine talks to a :class:`~repro.memory.system.MemorySystem`, which
combines the resident-page LRU cache with one of the paper's memory power
policies:

* :class:`~repro.memory.system.NapMemorySystem` -- enabled banks stay in
  the nap mode between accesses (the paper's baseline behaviour, used by
  the always-on, FM and joint methods; resizable).
* :class:`~repro.memory.system.PowerDownMemorySystem` -- the PD policy:
  banks drop to the power-down mode after a 2-competitive timeout; data
  survive, so no extra disk accesses.
* :class:`~repro.memory.system.DisableMemorySystem` -- the DS policy:
  banks are *disabled* after their break-even timeout; data are lost and
  later accesses go to disk.
"""

from repro.memory.energy import MemoryEnergy
from repro.memory.modes import MemoryMode
from repro.memory.system import (
    DisableMemorySystem,
    MemorySystem,
    NapMemorySystem,
    PowerDownMemorySystem,
)

__all__ = [
    "DisableMemorySystem",
    "MemoryEnergy",
    "MemoryMode",
    "MemorySystem",
    "NapMemorySystem",
    "PowerDownMemorySystem",
]
