"""Memory systems: the disk cache plus a memory power policy.

A memory system owns the resident-page LRU cache and accounts memory
energy under one of the paper's memory power-management schemes.  The
engine drives it with one call per disk-cache access and learns whether
the access hit memory or must go to disk.

Dynamic energy is charged for every access (hit or miss -- a missed page
is written into memory when it arrives), using the per-access energy
derived from the chip's peak power and bandwidth (paper Section III).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from repro.cache.lru import LRUCache
from repro.config.memory_spec import MemorySpec
from repro.errors import SimulationError
from repro.memory.energy import MemoryEnergy


class MemorySystem:
    """Base class: capacity bookkeeping, cache and energy buckets."""

    #: Whether :meth:`resize` is supported (the joint manager requires it).
    resizable = False

    #: Whether the vectorized replay kernels may drive this system from a
    #: stack-distance profile alone.  Requires that (a) cache behaviour is
    #: plain LRU over a fixed capacity -- so hit/miss is decided by the
    #: profile -- and (b) :meth:`charge_page_access` /
    #: :meth:`charge_hit_run` reproduce :meth:`access`'s energy accounting
    #: exactly, minus the cache maintenance.  Deliberately *not* inherited
    #: (checked on the concrete class): a subclass must opt in explicitly.
    profiled_replay = False

    def __init__(self, spec: MemorySpec, capacity_bytes: int) -> None:
        if capacity_bytes < 0 or capacity_bytes > spec.installed_bytes:
            raise SimulationError(
                f"capacity {capacity_bytes} outside [0, {spec.installed_bytes}]"
            )
        if capacity_bytes % spec.bank_bytes:
            raise SimulationError("capacity must be a whole number of banks")
        self.spec = spec
        self.energy = MemoryEnergy()
        self._capacity_bytes = capacity_bytes
        self.cache = LRUCache(capacity_bytes // spec.page_bytes)
        self._clock = 0.0
        #: Resident pages with modifications not yet on disk.
        self._dirty: Set[int] = set()
        #: Dirty pages pushed out (evicted/invalidated) awaiting writeback.
        self._pending_flush: List[int] = []

    # --- shared bookkeeping ---------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        """Bytes of memory currently enabled for the disk cache."""
        return self._capacity_bytes

    @property
    def capacity_pages(self) -> int:
        return self._capacity_bytes // self.spec.page_bytes

    @property
    def enabled_banks(self) -> int:
        return self._capacity_bytes // self.spec.bank_bytes

    def _advance_clock(self, now: float) -> None:
        if now < self._clock - 1e-9:
            raise SimulationError(
                f"memory time went backwards: {now} < {self._clock}"
            )
        self._clock = max(self._clock, now)

    def _charge_access(self) -> None:
        self.energy.add_access(self.spec.dynamic_energy_per_access)

    def charge_accesses(self, now: float, count: int) -> None:
        """Account ``count`` accesses ending at ``now``, cache untouched.

        The vectorized replay kernels (:mod:`repro.sim.kernels`) resolve
        hit/miss outcomes ahead of time from a stack-distance profile, so
        they only need the clock advanced and the dynamic energy charged
        -- the LRU structure itself is never consulted.  Only meaningful
        for memory systems whose energy does not depend on individual
        access placement (the nap model); the kernels' eligibility check
        enforces that.
        """
        self._advance_clock(now)
        self.energy.add_accesses(count, self.spec.dynamic_energy_per_access)

    def charge_page_access(self, now: float, page: int) -> None:
        """Account one access to ``page`` at ``now``, cache untouched.

        The per-access twin of :meth:`charge_accesses` for kernels that
        already know the outcome but must still attribute the access to
        its bank (the power-down model).  The base implementation is
        placement-free.
        """
        del page
        self.charge_accesses(now, 1)

    def charge_hit_run(self, times, pages, lo: int, hi: int) -> None:
        """Account the hit run ``times[lo:hi]`` / ``pages[lo:hi]``.

        Must charge exactly what ``hi - lo`` consecutive :meth:`access`
        hits would have charged, in the same floating-point order, while
        leaving the LRU structure alone.  The base implementation charges
        the run as one batch at the run's final timestamp.
        """
        del pages
        self.charge_accesses(float(times[hi - 1]), hi - lo)

    def charge_miss_run(self, times, pages, lo: int, hi: int) -> None:
        """Account the miss run ``times[lo:hi]`` / ``pages[lo:hi]``.

        Memory energy accounting is hit/miss-agnostic: a miss charges the
        same dynamic access energy (the fetched page is written into
        memory) and moves the same bank idle clocks as a hit on the same
        page at the same time -- only the LRU maintenance differs, and
        the batch charge methods skip that on both paths.  So a miss run
        charges exactly what :meth:`charge_hit_run` charges; the alias
        keeps the kernel call sites honest about which path they batch.
        """
        self.charge_hit_run(times, pages, lo, hi)

    def consume_hit_run_rw(self, times, pages, writes, lo: int, hi: int) -> None:
        """Account a hit run of a write-carrying trace, keeping the LRU live.

        Exactly what ``hi - lo`` consecutive :meth:`access_rw` hits would
        have done: the energy of :meth:`charge_hit_run`, every page's
        recency refreshed in order, and the write hits' pages marked
        dirty.  Hits never evict, so no dirty page can spill to the
        flush queue mid-run, and ``flush_all`` sorts its sweep, so
        batching the dirty marks into one set update is order-exact.
        Only valid when every access in the run is a hit on the live
        cache (:meth:`LRUCache.touch_run` raises otherwise).
        """
        self.charge_hit_run(times, pages, lo, hi)
        run_pages = pages[lo:hi]
        self.cache.touch_run(run_pages.tolist())
        flags = writes[lo:hi]
        if flags.any():
            self._dirty.update(run_pages[flags].tolist())

    # --- interface ----------------------------------------------------------------

    def access(self, now: float, page: int) -> bool:
        """Serve one disk-cache access; True = memory hit, False = disk miss.

        On a miss the page is loaded into the cache (the engine charges
        the disk separately).
        """
        raise NotImplementedError

    def resize(self, now: float, capacity_bytes: int) -> List[int]:
        """Change the enabled memory size; return evicted pages."""
        raise SimulationError(f"{type(self).__name__} does not support resizing")

    def finalize(self, now: float) -> None:
        """Account static energy up to ``now`` (end of simulation/period)."""
        raise NotImplementedError

    def checkpoint(self, now: float) -> None:
        """Bring static accounting up to ``now`` without ending the run.

        All finalizers in this module are pure accruals, so a checkpoint
        is the same operation; the alias documents the intent at call
        sites (e.g. warm-up boundaries).
        """
        self.finalize(now)

    # --- write-back support -----------------------------------------------------

    @property
    def dirty_pages(self) -> int:
        return len(self._dirty)

    def access_rw(self, now: float, page: int, is_write: bool) -> bool:
        """Read/write-aware access (write-back, write-allocate).

        A write dirties its page; if the page cannot be cached (zero
        capacity) the write goes straight to the flush queue.  A page
        evicted to make room carries its dirty state into the flush
        queue.  Returns hit/miss like :meth:`access`; note a *write*
        miss allocates without reading the disk -- the engine must not
        issue a read for it.
        """
        self.cache.last_evicted = None
        hit = self.access(now, page)
        evicted = self.cache.last_evicted
        if evicted is not None and evicted in self._dirty:
            self._dirty.discard(evicted)
            self._pending_flush.append(evicted)
        if is_write:
            if self.cache.peek(page):
                self._dirty.add(page)
            else:
                self._pending_flush.append(page)
        return hit

    def take_pending_flushes(self) -> List[int]:
        """Dirty pages forced out since the last call (must be written)."""
        pending, self._pending_flush = self._pending_flush, []
        return pending

    def flush_all(self) -> List[int]:
        """Write-back every dirty page (the periodic flusher's sweep)."""
        dirty = sorted(self._dirty)
        self._dirty.clear()
        return dirty

    def _spill_dirty(self, pages) -> None:
        """Move evicted/invalidated pages' dirty state to the flush queue."""
        for page in pages:
            if page in self._dirty:
                self._dirty.discard(page)
                self._pending_flush.append(page)

    def prefill(self, pages: Iterable[int]) -> int:
        """Warm-start the cache at t=0 with already-resident pages.

        Emulates the long-running server the paper traces: the pages are
        inserted in the given order (last = most recently used) with no
        energy or latency charged.  When the list exceeds the free space,
        the *tail* (the hottest pages, by the warm-start ordering) is
        kept, exactly what an LRU cache would have retained.  Returns how
        many pages were placed.
        """
        pages = list(pages)
        room = self.cache.capacity_pages - len(self.cache)
        if room <= 0:
            return 0
        selected = pages[-room:] if len(pages) > room else pages
        placed = 0
        for page in selected:
            if not self.cache.peek(page):
                self.cache.load(page)
                self._register_prefill(page)
                placed += 1
        return placed

    def _register_prefill(self, page: int) -> None:
        """Hook for subclasses that track page placement."""
        del page


class NapMemorySystem(MemorySystem):
    """Enabled banks always in nap between accesses (always-on, FM, joint).

    Static power is simply ``nap power x enabled banks``; disabled banks
    consume nothing.  This is the memory model behind the always-on
    baseline, the fixed-size (FM) methods and the joint method, which
    resizes it at period boundaries.
    """

    resizable = True
    profiled_replay = True

    def __init__(self, spec: MemorySpec, capacity_bytes: int) -> None:
        super().__init__(spec, capacity_bytes)
        self._accounted_until = 0.0

    def _accrue(self, now: float) -> None:
        duration = now - self._accounted_until
        if duration < 0:
            raise SimulationError("static accounting went backwards")
        power = self.spec.bank_power("nap") * self.enabled_banks
        self.energy.add_static(power, duration)
        self._accounted_until = now

    def access(self, now: float, page: int) -> bool:
        self._advance_clock(now)
        self._charge_access()
        return self.cache.access(page)

    def resize(self, now: float, capacity_bytes: int) -> List[int]:
        if capacity_bytes < 0 or capacity_bytes > self.spec.installed_bytes:
            raise SimulationError("capacity outside installed memory")
        if capacity_bytes % self.spec.bank_bytes:
            raise SimulationError("capacity must be a whole number of banks")
        self._advance_clock(now)
        self._accrue(now)
        self._capacity_bytes = capacity_bytes
        evicted = self.cache.resize(capacity_bytes // self.spec.page_bytes)
        self._spill_dirty(evicted)
        return evicted

    def finalize(self, now: float) -> None:
        self._advance_clock(now)
        self._accrue(now)


class PowerDownMemorySystem(MemorySystem):
    """The PD policy: banks power down after a 2-competitive timeout.

    Data are retained, so cache behaviour is identical to
    :class:`NapMemorySystem`; only the energy differs.  Each bank spends
    ``min(gap, timeout)`` of every inter-access gap in nap and the rest in
    power-down; waking charges the transition at the chip's peak power
    (the paper's estimate, Section V-A).

    Pages map to banks statically (``page mod num_banks``); since data
    survive power-down, the mapping affects only how accesses refresh
    bank idle clocks, and a uniform spread matches a physically
    interleaved layout.

    Because data survive power-down, cache behaviour is exactly the
    fixed-capacity LRU the stack-distance profile models, so the
    vectorized kernels can replay PD runs -- the batch charge methods
    below repeat :meth:`access`'s per-bank accounting access by access
    (identical floating-point operations in identical order), skipping
    only the LRU maintenance.
    """

    profiled_replay = True

    def __init__(
        self,
        spec: MemorySpec,
        capacity_bytes: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> None:
        super().__init__(
            spec, spec.installed_bytes if capacity_bytes is None else capacity_bytes
        )
        self.timeout_s = spec.powerdown_timeout_s if timeout_s is None else timeout_s
        if self.timeout_s < 0:
            raise SimulationError("power-down timeout must be non-negative")
        banks = max(self.enabled_banks, 1)
        self._last_access = np.zeros(banks, dtype=np.float64)
        self._accounted_until = np.zeros(banks, dtype=np.float64)
        chips_per_bank = spec.bank_bytes / spec.chip_bytes
        self._wake_energy = spec.peak_power_watts * chips_per_bank * 30e-6

    def _bank_of(self, page: int) -> int:
        return page % self._last_access.size

    def _accrue_bank(self, bank: int, now: float) -> None:
        """Charge the bank's static power from its accounting mark to ``now``.

        Within the stretch the bank naps until ``last_access + timeout``
        and sits in power-down beyond it.
        """
        start = self._accounted_until[bank]
        if now <= start:
            return
        boundary = self._last_access[bank] + self.timeout_s
        nap_power = self.spec.bank_power("nap")
        pd_power = self.spec.bank_power("powerdown")
        nap_end = min(now, boundary)
        if nap_end > start:
            self.energy.add_static(nap_power, nap_end - start)
        if now > boundary:
            self.energy.add_static(pd_power, now - max(boundary, start))
        self._accounted_until[bank] = now

    def access(self, now: float, page: int) -> bool:
        self._advance_clock(now)
        self._charge_access()
        bank = self._bank_of(page)
        self._accrue_bank(bank, now)
        if now > self._last_access[bank] + self.timeout_s:
            # The bank had powered down and must wake to serve this access.
            self.energy.add_transition(self._wake_energy)
        self._last_access[bank] = now
        return self.cache.access(page)

    def charge_page_access(self, now: float, page: int) -> None:
        self._advance_clock(now)
        self._charge_access()
        bank = self._bank_of(page)
        self._accrue_bank(bank, now)
        if now > self._last_access[bank] + self.timeout_s:
            self.energy.add_transition(self._wake_energy)
        self._last_access[bank] = now

    def charge_hit_run(self, times, pages, lo: int, hi: int) -> None:
        # Dynamic energy is a recomputed product (count x per-access
        # energy), so charging it in one batch is exact; the per-bank
        # static/transition accounting must run access by access because
        # each access moves its bank's idle clock.
        self._advance_clock(float(times[hi - 1]))
        self.energy.add_accesses(hi - lo, self.spec.dynamic_energy_per_access)
        last = self._last_access
        nbanks = last.size
        timeout = self.timeout_s
        accrue = self._accrue_bank
        add_transition = self.energy.add_transition
        wake = self._wake_energy
        for now, page in zip(times[lo:hi].tolist(), pages[lo:hi].tolist()):
            bank = page % nbanks
            accrue(bank, now)
            if now > last[bank] + timeout:
                add_transition(wake)
            last[bank] = now

    def finalize(self, now: float) -> None:
        self._advance_clock(now)
        for bank in range(self._last_access.size):
            self._accrue_bank(bank, now)


def supports_profiled_replay(memory: MemorySystem) -> bool:
    """True when the replay kernels may drive ``memory`` from a profile.

    Checked on the concrete class (not inherited), so an unknown subclass
    of an eligible system conservatively falls back to the scalar loop.
    """
    return bool(type(memory).__dict__.get("profiled_replay", False))


class DisableMemorySystem(MemorySystem):
    """The DS policy: banks are disabled after their break-even timeout.

    Disabling loses the contents: later accesses to those pages miss and
    go to disk.  Bank disabling is evaluated lazily -- a bank idle longer
    than the timeout is treated as having been disabled exactly at
    ``last_access + timeout``; touching it re-enables it (the transition
    energy is negligible next to the disk energy of refetching, which the
    paper also ignores, Section V-A).

    Pages are placed in banks on load (filling the most recently used
    bank first) so invalidation drops exactly the pages the bank held.
    """

    def __init__(
        self,
        spec: MemorySpec,
        capacity_bytes: Optional[int] = None,
        timeout_s: Optional[float] = None,
        disk_refetch_energy_j: float = 7.7,
    ) -> None:
        super().__init__(
            spec, spec.installed_bytes if capacity_bytes is None else capacity_bytes
        )
        if timeout_s is None:
            # Break-even to disable: refetch energy over nap power
            # (paper: 7.7 J / 10.5 mW = 732 s for a 16-MB bank).  Both the
            # refetch energy and the nap power scale with the bank size,
            # so the timeout itself is bank-size invariant.
            chips_per_bank = spec.bank_bytes / spec.chip_bytes
            refetch = disk_refetch_energy_j * chips_per_bank
            timeout_s = refetch / spec.bank_power("nap")
        if timeout_s <= 0:
            raise SimulationError("disable timeout must be positive")
        self.timeout_s = timeout_s
        banks = max(self.enabled_banks, 1)
        self._last_access = np.zeros(banks, dtype=np.float64)
        self._accounted_until = np.zeros(banks, dtype=np.float64)
        self._bank_pages: List[Set[int]] = [set() for _ in range(banks)]
        self._page_bank: Dict[int, int] = {}
        self._fill_bank = 0
        #: Disk accesses caused purely by bank disabling (for diagnostics).
        self.invalidation_misses = 0
        self.banks_disabled = 0

    # --- bank bookkeeping -------------------------------------------------------

    def _disable_time(self, bank: int) -> float:
        return self._last_access[bank] + self.timeout_s

    def _accrue_bank(self, bank: int, now: float) -> None:
        """Charge nap power from the last accounting point up to ``now``,
        stopping at the bank's (lazy) disable time."""
        start = self._accounted_until[bank]
        end = min(now, self._disable_time(bank))
        if end > start:
            self.energy.add_static(self.spec.bank_power("nap"), end - start)
        self._accounted_until[bank] = max(now, start)

    def _is_disabled(self, bank: int, now: float) -> bool:
        return now > self._disable_time(bank)

    def _invalidate_bank(self, bank: int) -> None:
        pages = self._bank_pages[bank]
        if pages:
            self.cache.invalidate(pages)
            self._spill_dirty(pages)
            for page in pages:
                self._page_bank.pop(page, None)
            pages.clear()
        self.banks_disabled += 1

    def _place_page(self, page: int) -> None:
        """Record the freshly loaded page in a bank with room."""
        banks = self._last_access.size
        per_bank = self.spec.pages_per_bank
        for probe in range(banks):
            bank = (self._fill_bank + probe) % banks
            if len(self._bank_pages[bank]) < per_bank:
                self._bank_pages[bank].add(page)
                self._page_bank[page] = bank
                self._fill_bank = bank
                return
        raise SimulationError("no bank has a free frame despite cache room")

    def _evict_bookkeeping(self, evicted: List[int]) -> None:
        for page in evicted:
            bank = self._page_bank.pop(page, None)
            if bank is not None:
                self._bank_pages[bank].discard(page)

    def _register_prefill(self, page: int) -> None:
        self._place_page(page)

    # --- interface ------------------------------------------------------------------

    def access(self, now: float, page: int) -> bool:
        self._advance_clock(now)
        self._charge_access()
        bank = self._page_bank.get(page)
        if bank is not None and self._is_disabled(bank, now):
            # The bank was disabled while this page sat in it: the data
            # are gone, so this access is really a miss.
            self._accrue_bank(bank, now)
            self._invalidate_bank(bank)
            self._last_access[bank] = now
            self._accounted_until[bank] = now
            self.invalidation_misses += 1
            self._load(now, page)
            return False
        if self.cache.peek(page):
            if bank is None:
                raise SimulationError("resident page has no bank assignment")
            self._accrue_bank(bank, now)
            self._last_access[bank] = now
            self.cache.access(page)
            return True
        self._load(now, page)
        return False

    def consume_hit_run(self, times, pages, lo: int, hi: int) -> int:
        """Consume the longest pure-hit prefix of ``[lo, hi)``; return its end.

        A *pure hit* touches a resident page whose bank has not passed
        its lazy disable deadline: :meth:`access` would charge dynamic
        energy, accrue the bank's nap power up to ``now``, refresh the
        bank's idle clock and the page's recency, and return True --
        nothing else.  This scans accesses in order, performing exactly
        those operations (the accrual inlined with the identical
        floating-point sequence), and stops at the first access that
        would miss, invalidate a disabled bank, or resurrect one; the
        caller replays that access through the live :meth:`access`.

        The stack-distance profile cannot classify these runs -- bank
        invalidations shrink the true reuse depths -- so the residency
        oracle here is the live ``_page_bank`` map itself.
        """
        pb_get = self._page_bank.get
        last = self._last_access
        acc = self._accounted_until
        timeout = self.timeout_s
        nap_power = self.spec.bank_power("nap")
        energy = self.energy
        static = energy.static_j
        move = self.cache._pages.move_to_end
        pos = lo
        stopped = False
        # Convert to Python scalars in geometrically growing blocks: the
        # run usually ends after a handful of hits (miss-heavy spans), so
        # a whole-tail -- or even fixed-large-block -- tolist() per call
        # pays for thousands of elements the loop never reads.  Doubling
        # keeps the conversion within 4x of the consumed prefix while
        # still amortizing long runs.
        block = 32
        while pos < hi and not stopped:
            stop = min(pos + block, hi)
            block = min(block * 2, 1 << 16)
            for now, page in zip(
                times[pos:stop].tolist(), pages[pos:stop].tolist()
            ):
                bank = pb_get(page)
                if bank is None or now > last[bank] + timeout:
                    stopped = True
                    break
                # _accrue_bank inlined: the disable deadline is >= now
                # here, so the nap stretch ends at now.
                start = acc[bank]
                if now > start:
                    static += nap_power * (now - start)
                    acc[bank] = now
                last[bank] = now
                move(page)
                pos += 1
        energy.static_j = static
        count = pos - lo
        if count:
            self.cache.last_evicted = None
            self._advance_clock(float(times[pos - 1]))
            energy.add_accesses(count, self.spec.dynamic_energy_per_access)
        return pos

    def _load(self, now: float, page: int) -> None:
        evicted = self.cache.load(page)
        if evicted is not None:
            self._evict_bookkeeping([evicted])
        if not self.cache.peek(page):
            # Zero-capacity cache: nothing to place.
            return
        self._place_page(page)
        bank = self._page_bank[page]
        self._accrue_bank(bank, now)
        self._last_access[bank] = now
        self._accounted_until[bank] = max(self._accounted_until[bank], now)

    def finalize(self, now: float) -> None:
        self._advance_clock(now)
        for bank in range(self._last_access.size):
            self._accrue_bank(bank, now)
