"""RDRAM power modes (paper Fig. 1(a))."""

from __future__ import annotations

import enum


class MemoryMode(enum.Enum):
    """Power modes of one RDRAM bank.

    ``ATTENTION`` is the working mode; ``IDLE``, ``NAP`` and ``POWERDOWN``
    retain data at decreasing power; ``DISABLE`` loses the contents.
    The paper keeps banks in NAP after accesses (the best energy/
    performance trade-off per [13], [14]).
    """

    ATTENTION = "attention"
    IDLE = "idle"
    NAP = "nap"
    POWERDOWN = "powerdown"
    DISABLE = "disable"

    @property
    def retains_data(self) -> bool:
        return self is not MemoryMode.DISABLE
