"""Memory energy bookkeeping.

The paper splits memory energy into static (mode-residency), dynamic
(per-access) and mode-transition energy (Section III).  This accumulator
keeps the three buckets separate so the experiment tables can report the
breakdown of Fig. 7(c).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MemoryEnergy:
    """Accumulated memory energy, joules, by category."""

    static_j: float = 0.0
    dynamic_j: float = 0.0
    transition_j: float = 0.0
    #: Number of bank mode transitions charged.
    transitions: int = 0
    #: Number of memory accesses charged.
    accesses: int = field(default=0)

    @property
    def total_j(self) -> float:
        return self.static_j + self.dynamic_j + self.transition_j

    def add_static(self, power_w: float, duration_s: float) -> None:
        if duration_s < 0:
            raise ValueError(f"negative duration {duration_s}")
        self.static_j += power_w * duration_s

    def add_access(self, energy_j: float) -> None:
        self.add_accesses(1, energy_j)

    def add_accesses(self, count: int, energy_j: float) -> None:
        """Charge ``count`` accesses at ``energy_j`` joules each.

        The per-access energy is a property of the chip
        (:attr:`repro.config.memory_spec.MemorySpec.dynamic_energy_per_access`),
        constant over one accumulator's lifetime, so the dynamic bucket is
        recomputed as ``accesses x energy_j`` rather than accumulated.
        This keeps the figure bit-identical whether accesses are charged
        one at a time (the scalar engine loop) or in batches (the
        vectorized replay kernels), and is also the exact value the audit
        checks against.
        """
        self.accesses += count
        self.dynamic_j = self.accesses * energy_j

    def add_transition(self, energy_j: float) -> None:
        self.transition_j += energy_j
        self.transitions += 1

    def snapshot(self) -> "MemoryEnergy":
        """A frozen copy of the current counters."""
        return MemoryEnergy(
            static_j=self.static_j,
            dynamic_j=self.dynamic_j,
            transition_j=self.transition_j,
            transitions=self.transitions,
            accesses=self.accesses,
        )

    def minus(self, earlier: "MemoryEnergy") -> "MemoryEnergy":
        """Counters accumulated since an earlier snapshot."""
        return MemoryEnergy(
            static_j=self.static_j - earlier.static_j,
            dynamic_j=self.dynamic_j - earlier.dynamic_j,
            transition_j=self.transition_j - earlier.transition_j,
            transitions=self.transitions - earlier.transitions,
            accesses=self.accesses - earlier.accesses,
        )
