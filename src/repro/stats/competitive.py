"""Competitive analysis of spin-down policies (Karlin et al. [41]).

The paper's 2T policy rests on the classic ski-rental result: a timeout
equal to the break-even time consumes at most **twice** the energy of the
offline optimum on *every* idle-interval sequence.  This module computes
both sides exactly so the bound can be checked (and is, property-based,
in the tests) and so users can measure how close a policy lands on their
own workloads.

Energy accounting matches the paper's static+transition split: during an
idle interval of length ``l`` under timeout ``t_o``,

* the disk stays up for ``min(l, t_o)`` at power ``p_d``,
* and pays one round trip (``p_d * t_be``) iff ``l > t_o``;

the offline optimum pays ``min(p_d * l, p_d * t_be)`` per interval (stay
up if the gap is short, spin down instantly if it is long).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config.disk_spec import DiskSpec
from repro.errors import FitError


def timeout_policy_energy(
    intervals: Sequence[float],
    timeout_s: float,
    spec: Optional[DiskSpec] = None,
) -> float:
    """Static + transition joules a fixed timeout spends on the intervals."""
    spec = spec or DiskSpec()
    if timeout_s < 0:
        raise FitError("timeout must be non-negative")
    power = spec.static_power_watts
    t_be = spec.break_even_time_s
    total = 0.0
    for length in intervals:
        if length < 0:
            raise FitError("idle intervals must be non-negative")
        if length > timeout_s:
            total += power * (timeout_s + t_be)
        else:
            total += power * length
    return total


def offline_optimal_energy(
    intervals: Sequence[float], spec: Optional[DiskSpec] = None
) -> float:
    """Joules spent by the clairvoyant optimum on the intervals."""
    spec = spec or DiskSpec()
    power = spec.static_power_watts
    t_be = spec.break_even_time_s
    total = 0.0
    for length in intervals:
        if length < 0:
            raise FitError("idle intervals must be non-negative")
        total += power * min(length, t_be)
    return total


def competitive_ratio(
    intervals: Sequence[float],
    timeout_s: float,
    spec: Optional[DiskSpec] = None,
) -> float:
    """Policy energy over offline-optimal energy (1.0 = optimal).

    Returns 1.0 for an empty or all-zero sequence (nothing to spend).
    """
    spec = spec or DiskSpec()
    optimal = offline_optimal_energy(intervals, spec)
    if optimal <= 0.0:
        return 1.0
    return timeout_policy_energy(intervals, timeout_s, spec) / optimal


def worst_case_ratio(timeout_s: float, spec: Optional[DiskSpec] = None) -> float:
    """The adversarial bound for a fixed timeout.

    The adversary ends every interval right after the spin-down: the
    policy pays ``t_o + t_be`` where the optimum pays ``min(t_o, t_be)``
    (it either stayed up through the barely-longer-than-``t_o`` gap, or
    spun down instantly if ``t_o > t_be``).  Minimised at
    ``t_o = t_be`` where the bound is exactly 2 -- Karlin's theorem.
    """
    spec = spec or DiskSpec()
    if timeout_s < 0:
        raise FitError("timeout must be non-negative")
    t_be = spec.break_even_time_s
    return (timeout_s + t_be) / min(max(timeout_s, 1e-12), t_be)
