"""The paper's timeout analysis: equations (2) through (6).

Given a Pareto model of idle lengths with parameters ``(alpha, beta)``,
``n_i`` idle intervals per period ``T``, disk static power ``p_d`` and
break-even time ``t_be``:

* eq. (2) expected off time          ``t_s = n_i * (beta/t_o)**(alpha-1) * beta/(alpha-1)``
* eq. (3) expected spin-downs        ``h = n_i * (beta/t_o)**alpha``
* eq. (4) expected power             ``(p_d/T) * (T - t_s) + p_d*t_be*h/T``
* eq. (5) optimal timeout            ``t_o = alpha * t_be``
* eq. (6) performance constraint     ``t_o >= beta * (n_i*n_d*(t_tr-0.5)/(N*T*D))**(1/alpha)``

All functions treat a timeout below ``beta`` as ``beta``: the disk can never
be turned off before the shortest idle interval elapses, so the expressions
are only meaningful for ``t_o >= beta``.
"""

from __future__ import annotations

import math

from repro.errors import FitError
from repro.stats.pareto import ParetoDistribution


def _check_timeout(timeout_s: float) -> None:
    if timeout_s < 0 or not math.isfinite(timeout_s):
        raise FitError(f"timeout must be finite and non-negative, got {timeout_s}")


def expected_off_time(
    dist: ParetoDistribution, num_intervals: float, timeout_s: float
) -> float:
    """Expected total off time ``t_s`` per period (paper eq. 2).

    ``t_s = n_i * integral_{t_o}^{inf} (l - t_o) f(l) dl
          = n_i * (beta / t_o)**(alpha - 1) * beta / (alpha - 1)``
    """
    _check_timeout(timeout_s)
    if num_intervals < 0:
        raise FitError("interval count must be non-negative")
    if dist.alpha <= 1.0:
        return math.inf if num_intervals > 0 else 0.0
    t_o = max(timeout_s, dist.beta)
    return (
        num_intervals
        * (dist.beta / t_o) ** (dist.alpha - 1.0)
        * dist.beta
        / (dist.alpha - 1.0)
    )


def expected_spin_downs(
    dist: ParetoDistribution, num_intervals: float, timeout_s: float
) -> float:
    """Expected number of spin-downs ``h`` per period (paper eq. 3).

    ``h = n_i * P[l > t_o] = n_i * (beta / t_o)**alpha``
    """
    _check_timeout(timeout_s)
    if num_intervals < 0:
        raise FitError("interval count must be non-negative")
    t_o = max(timeout_s, dist.beta)
    return num_intervals * (dist.beta / t_o) ** dist.alpha


def expected_power(
    dist: ParetoDistribution,
    num_intervals: float,
    timeout_s: float,
    period_s: float,
    static_power_w: float,
    break_even_s: float,
) -> float:
    """Expected static + transition power under timeout ``t_o`` (paper eq. 4).

    ``(p_d / T) * [T - t_s] + p_d * t_be * h / T``

    The standby-mode floor power is excluded, exactly as in the paper
    ("we exclude the power consumed in the standby mode for simplification
    since the power remains constant").
    """
    if period_s <= 0:
        raise FitError("period must be positive")
    if static_power_w < 0 or break_even_s < 0:
        raise FitError("power and break-even time must be non-negative")
    t_s = expected_off_time(dist, num_intervals, timeout_s)
    t_s = min(t_s, period_s)  # the disk cannot be off longer than the period
    h = expected_spin_downs(dist, num_intervals, timeout_s)
    idle_power = static_power_w * (period_s - t_s) / period_s
    transition_power = static_power_w * break_even_s * h / period_s
    return idle_power + transition_power


def optimal_timeout(dist: ParetoDistribution, break_even_s: float) -> float:
    """Energy-optimal timeout ``t_o = alpha * t_be`` (paper eq. 5)."""
    if break_even_s <= 0:
        raise FitError("break-even time must be positive")
    return dist.alpha * break_even_s


def constrained_min_timeout(
    dist: ParetoDistribution,
    num_intervals: float,
    num_disk_accesses: float,
    num_cache_accesses: float,
    period_s: float,
    transition_time_s: float,
    max_delayed_ratio: float,
    long_latency_threshold_s: float = 0.5,
) -> float:
    """Smallest timeout meeting the delayed-request constraint (paper eq. 6).

    eq. (6):  ``n_i * (beta/t_o)**alpha * (t_tr - 0.5) * n_d / T / N <= D``
    giving    ``t_o >= beta * (n_i * n_d * (t_tr - 0.5) / (N * T * D))**(1/alpha)``

    Returns 0 when the constraint is satisfied for every timeout (e.g. no
    disk accesses, or a transition faster than the latency threshold).
    """
    if period_s <= 0:
        raise FitError("period must be positive")
    if not 0.0 < max_delayed_ratio <= 1.0:
        raise FitError("delayed-ratio limit must be in (0, 1]")
    if num_cache_accesses <= 0:
        # No accesses at all: nothing can be delayed.
        return 0.0
    delay_window = transition_time_s - long_latency_threshold_s
    if delay_window <= 0 or num_intervals <= 0 or num_disk_accesses <= 0:
        return 0.0
    numerator = num_intervals * num_disk_accesses * delay_window
    denominator = num_cache_accesses * period_s * max_delayed_ratio
    ratio = numerator / denominator
    if ratio <= 1.0:
        # Even spinning down after every interval stays within the limit.
        return 0.0
    return dist.beta * ratio ** (1.0 / dist.alpha)
