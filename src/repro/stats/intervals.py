"""Idle-interval extraction with the aggregation window (paper Section IV-A).

The joint manager observes the *disk* access stream and derives the idle
intervals between consecutive accesses.  Intervals shorter than the
aggregation window ``w`` "provide no opportunity for saving energy" and are
dropped; the accesses bounding them are treated as one busy burst.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import TraceError


@dataclass(frozen=True)
class IdleIntervals:
    """Idle intervals of the disk over one observation period."""

    #: Interval lengths after aggregation-window filtering, seconds.
    lengths: np.ndarray
    #: The aggregation window used to filter, seconds.
    window_s: float
    #: Number of disk accesses observed.
    num_accesses: int

    @property
    def count(self) -> int:
        """``n_i``: the number of usable idle intervals."""
        return int(self.lengths.size)

    @property
    def mean_length(self) -> float:
        """Average usable idle length, or 0 when there are none."""
        if self.lengths.size == 0:
            return 0.0
        return float(self.lengths.mean())

    @property
    def min_length(self) -> float:
        """Shortest usable idle interval (the Pareto ``beta``), or 0."""
        if self.lengths.size == 0:
            return 0.0
        return float(self.lengths.min())

    @property
    def total_idle_time(self) -> float:
        """Sum of usable idle time, seconds."""
        return float(self.lengths.sum())


def extract_idle_intervals(
    access_times: Sequence[float],
    window_s: float,
    period_end: float | None = None,
    period_start: float | None = None,
) -> IdleIntervals:
    """Compute filtered idle intervals from disk-access timestamps.

    ``access_times`` must be non-decreasing.  If ``period_start`` /
    ``period_end`` are given, the leading gap from the period start to the
    first access and the trailing gap from the last access to the period
    end are included as idle intervals too -- the disk is genuinely idle
    during them.
    """
    times = np.asarray(access_times, dtype=float)
    inner = np.diff(times)
    if times.size and np.any(inner < 0.0):
        raise TraceError("disk access times must be non-decreasing")
    if window_s < 0:
        raise TraceError("aggregation window must be non-negative")

    # Build the gap vector without a per-element Python loop: the same
    # subtractions as before (leading gap, np.diff, trailing gap), so the
    # float64 values -- and therefore the filtered lengths -- are
    # bit-identical to the historical list-based construction.
    if times.size:
        pieces = []
        if period_start is not None:
            if times[0] < period_start:
                raise TraceError("access before the period start")
            pieces.append(np.array([times[0] - period_start]))
        pieces.append(inner)
        if period_end is not None:
            if times[-1] > period_end:
                raise TraceError("access after the period end")
            pieces.append(np.array([period_end - times[-1]]))
        gaps = pieces[0] if len(pieces) == 1 else np.concatenate(pieces)
    elif period_start is not None and period_end is not None:
        if period_end < period_start:
            raise TraceError("period end precedes period start")
        gaps = np.array([period_end - period_start])
    else:
        gaps = np.empty(0)

    lengths = gaps[(gaps >= window_s) & (gaps > 0.0)].astype(float, copy=True)
    return IdleIntervals(
        lengths=lengths, window_s=window_s, num_accesses=int(times.size)
    )
