"""Pareto model of disk idle-interval lengths (paper eq. 1).

The density of an idle length ``l`` is::

    f(l) = alpha * beta**alpha / l**(alpha + 1),    l > beta, alpha > 1

``beta`` is the shortest possible idle interval; smaller ``alpha`` or larger
``beta`` makes long intervals more likely (paper Fig. 5).

The paper estimates ``alpha`` by the method of moments: the Pareto mean is
``alpha * beta / (alpha - 1)``, so ``alpha = mean / (mean - beta)``
(Section IV-C, last paragraph).  This module also provides the maximum-
likelihood and Hill estimators as cross-checks; the fig5 benchmark compares
all three.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import FitError

#: Estimated alpha values are clamped to this range.  alpha must exceed 1
#: for the mean to exist (paper eq. 1); very large alpha means "all idle
#: intervals are essentially beta" and the exact value stops mattering.
ALPHA_MIN = 1.0 + 1e-6
ALPHA_MAX = 1e6


@dataclass(frozen=True)
class ParetoDistribution:
    """A Pareto distribution with shape ``alpha`` and scale ``beta``."""

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise FitError(f"alpha must be positive, got {self.alpha}")
        if self.beta <= 0:
            raise FitError(f"beta must be positive, got {self.beta}")

    # --- distribution functions ----------------------------------------------

    def pdf(self, x: float) -> float:
        """Probability density at ``x`` (0 below ``beta``)."""
        if x <= self.beta:
            return 0.0
        return self.alpha * self.beta**self.alpha / x ** (self.alpha + 1.0)

    def cdf(self, x: float) -> float:
        """``P[l <= x]``."""
        if x <= self.beta:
            return 0.0
        return 1.0 - (self.beta / x) ** self.alpha

    def survival(self, x: float) -> float:
        """``P[l > x]`` -- the integral of f from ``x`` to infinity."""
        if x <= self.beta:
            return 1.0
        return (self.beta / x) ** self.alpha

    def ppf(self, q: float) -> float:
        """Quantile function (inverse CDF)."""
        if not 0.0 <= q < 1.0:
            raise FitError(f"quantile must be in [0, 1), got {q}")
        return self.beta / (1.0 - q) ** (1.0 / self.alpha)

    @property
    def mean(self) -> float:
        """``alpha * beta / (alpha - 1)``; infinite when ``alpha <= 1``."""
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.beta / (self.alpha - 1.0)

    @property
    def variance(self) -> float:
        """Variance; infinite when ``alpha <= 2``."""
        if self.alpha <= 2.0:
            return math.inf
        a, b = self.alpha, self.beta
        return (b * b * a) / ((a - 1.0) ** 2 * (a - 2.0))

    def mean_excess(self, threshold: float) -> float:
        """``E[l - t | l > t]`` -- expected residual idle time past ``t``.

        For a Pareto this is ``(t) / (alpha - 1)`` scaled appropriately:
        ``E[l - t | l > t] = max(t, beta) / (alpha - 1)`` for ``t >= beta``.
        """
        if self.alpha <= 1.0:
            return math.inf
        t = max(threshold, self.beta)
        return t / (self.alpha - 1.0)

    def sample(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Draw ``n`` idle-interval lengths (inverse-transform sampling)."""
        if n < 0:
            raise FitError("sample size must be non-negative")
        if rng is None:
            rng = np.random.default_rng()
        u = rng.random(n)
        return self.beta / (1.0 - u) ** (1.0 / self.alpha)


def _validate(samples: Sequence[float]) -> np.ndarray:
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise FitError("cannot fit a Pareto distribution to zero samples")
    if np.any(data <= 0.0) or not np.all(np.isfinite(data)):
        raise FitError("idle-interval samples must be positive and finite")
    return data


def _degenerate(reason: str, strict: bool) -> float:
    """Degenerate-sample policy shared by the estimators.

    The simulation path keeps the historical behaviour -- clamp alpha to
    :data:`ALPHA_MAX`, which models "every idle interval is essentially
    beta" and lets a period's decision proceed.  Verification callers pass
    ``strict=True`` to get a :class:`FitError` instead of a clamp, so a
    silently degenerate fit cannot masquerade as a measurement.
    """
    if strict:
        raise FitError(f"degenerate Pareto sample: {reason}")
    return ALPHA_MAX


def fit_moments(
    samples: Sequence[float],
    beta: Optional[float] = None,
    strict: bool = False,
) -> ParetoDistribution:
    """The paper's estimator: ``alpha = mean / (mean - beta)``.

    ``beta`` defaults to the smallest observed interval, which is the
    paper's definition of beta ("the length of the shortest idle
    interval").  When the sample mean does not exceed ``beta`` (all
    intervals nearly equal, or an explicit ``beta`` above the data), alpha
    is clamped to :data:`ALPHA_MAX` -- or, with ``strict=True``, a
    :class:`FitError` is raised.
    """
    data = _validate(samples)
    if beta is None:
        beta = float(data.min())
    if beta <= 0:
        raise FitError(f"beta must be positive, got {beta}")
    mean = float(data.mean())
    if mean <= beta:
        alpha = _degenerate(
            f"sample mean {mean} does not exceed beta {beta}", strict
        )
    else:
        alpha = mean / (mean - beta)
    alpha = min(max(alpha, ALPHA_MIN), ALPHA_MAX)
    return ParetoDistribution(alpha=alpha, beta=beta)


def fit_mle(
    samples: Sequence[float],
    beta: Optional[float] = None,
    strict: bool = False,
) -> ParetoDistribution:
    """Maximum-likelihood fit: ``alpha = n / sum(log(x_i / beta))``."""
    data = _validate(samples)
    if beta is None:
        beta = float(data.min())
    if beta <= 0:
        raise FitError(f"beta must be positive, got {beta}")
    if strict and bool(np.any(data < beta)):
        raise FitError("samples below the explicit beta scale")
    logs = np.log(np.maximum(data, beta) / beta)
    total = float(logs.sum())
    if total <= 0.0:
        alpha = _degenerate("all samples equal the beta scale", strict)
    else:
        alpha = data.size / total
    alpha = min(max(alpha, ALPHA_MIN), ALPHA_MAX)
    return ParetoDistribution(alpha=alpha, beta=beta)


def fit_hill(
    samples: Sequence[float],
    tail_fraction: float = 0.5,
    strict: bool = False,
) -> ParetoDistribution:
    """Hill estimator over the largest ``tail_fraction`` of the samples.

    Robust when only the tail is Pareto (the usual case for measured disk
    idleness, paper Section I references [19], [20]).
    """
    if not 0.0 < tail_fraction <= 1.0:
        raise FitError("tail fraction must be in (0, 1]")
    data = np.sort(_validate(samples))[::-1]
    k = max(int(data.size * tail_fraction), 1)
    if k >= data.size:
        k = data.size - 1
    if k < 1:
        # A single sample: degenerate, treat it as the scale.
        alpha = _degenerate("a single sample has no tail to fit", strict)
        return ParetoDistribution(alpha=alpha, beta=float(data[0]))
    threshold = float(data[k])
    logs = np.log(data[:k] / threshold)
    total = float(logs.sum())
    if total <= 0.0:
        alpha = _degenerate("tail samples all equal the threshold", strict)
    else:
        alpha = k / total
    alpha = min(max(alpha, ALPHA_MIN), ALPHA_MAX)
    return ParetoDistribution(alpha=alpha, beta=threshold)


def fit_scipy(samples: Sequence[float]) -> ParetoDistribution:
    """Cross-check fit using :func:`scipy.stats.pareto.fit`."""
    data = _validate(samples)
    alpha, loc, scale = scipy_stats.pareto.fit(data, floc=0.0)
    del loc
    alpha = min(max(float(alpha), ALPHA_MIN), ALPHA_MAX)
    return ParetoDistribution(alpha=alpha, beta=float(scale))
