"""Statistical models used by the joint power manager.

* :mod:`repro.stats.pareto` -- the Pareto idle-time model (paper eq. 1).
* :mod:`repro.stats.intervals` -- idle-interval extraction with the
  aggregation window (paper Section IV-A).
* :mod:`repro.stats.timeout_math` -- expected off time, spin-down count,
  expected power and optimal/constrained timeouts (paper eqs. 2-6).
"""

from repro.stats.competitive import (
    competitive_ratio,
    offline_optimal_energy,
    timeout_policy_energy,
    worst_case_ratio,
)
from repro.stats.intervals import IdleIntervals, extract_idle_intervals
from repro.stats.pareto import ParetoDistribution, fit_hill, fit_mle, fit_moments
from repro.stats.timeout_math import (
    constrained_min_timeout,
    expected_off_time,
    expected_power,
    expected_spin_downs,
    optimal_timeout,
)

__all__ = [
    "IdleIntervals",
    "competitive_ratio",
    "offline_optimal_energy",
    "timeout_policy_energy",
    "worst_case_ratio",
    "ParetoDistribution",
    "constrained_min_timeout",
    "expected_off_time",
    "expected_power",
    "expected_spin_downs",
    "extract_idle_intervals",
    "fit_hill",
    "fit_mle",
    "fit_moments",
    "optimal_timeout",
]
