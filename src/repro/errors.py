"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(ReproError):
    """A configuration object is internally inconsistent."""


class TraceError(ReproError):
    """A workload trace is malformed or violates an invariant."""


class SimulationError(ReproError):
    """The simulation engine reached an impossible state."""


class FitError(ReproError):
    """A statistical fit could not be computed from the given data."""


class PolicyError(ReproError):
    """A power-management policy was configured or driven incorrectly."""


class CampaignError(ReproError):
    """A campaign run was configured or resumed incorrectly."""
