"""SPECWeb99-class trace generator (paper Fig. 6, "benchmark" stage).

Requests arrive as a Poisson process; each request selects a file by a
bounded Zipf popularity distribution and reads the whole file as a run of
sequential page accesses.  Intra-file page accesses are spaced by the
server's per-connection service rate, so a large file occupies the stream
for a proportionally longer window -- this is what makes long files break
disk idleness differently from short ones.

The request rate is calibrated so the generated trace hits a target *byte*
rate, the quantity the paper sweeps (5-200 MB/s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import TraceError
from repro.traces.fileset import FileSet, specweb_fileset
from repro.traces.trace import Trace
from repro.traces.zipf import ZipfSampler, calibrate_exponent
from repro.units import MB, PAGE_SIZE


@dataclass(frozen=True)
class SpecWebGenerator:
    """Generator configuration.

    ``popularity`` is the paper's popularity ratio (hot-90 % footprint over
    data-set size): 0.1 means 10 % of the data receives 90 % of accesses.
    """

    fileset: FileSet
    data_rate: float  # target bytes/second
    popularity: float = 0.10
    #: Per-connection service bandwidth: spacing of page accesses within
    #: one file read.  100 Mb/s client links give about 12.5 MB/s.
    connection_rate: float = 12.5 * MB
    #: Fraction of *requests* that are uploads (their pages are writes).
    #: Web-serving workloads are read-dominated; SPECWeb99 models ~5%
    #: POSTs.
    write_fraction: float = 0.0
    #: Request arrival process: "poisson" (smooth) or "selfsimilar"
    #: (b-model cascade -- the bursty, heavy-tailed traffic of measured
    #: storage traces [20], [21]).
    arrival_process: str = "poisson"
    #: Burstiness of the self-similar process (b-model bias, [0.5, 1)).
    burst_bias: float = 0.75
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.data_rate <= 0:
            raise TraceError("data rate must be positive")
        if not 0.0 < self.popularity <= 1.0:
            raise TraceError("popularity ratio must be in (0, 1]")
        if self.connection_rate <= 0:
            raise TraceError("connection rate must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise TraceError("write fraction must be in [0, 1]")
        if self.arrival_process not in ("poisson", "selfsimilar"):
            raise TraceError(
                f"unknown arrival process {self.arrival_process!r}"
            )

    def generate(self, duration_s: float) -> Trace:
        """Generate a trace covering ``[0, duration_s)``."""
        if duration_s <= 0:
            raise TraceError("duration must be positive")
        rng = np.random.default_rng(self.seed)
        fs = self.fileset

        exponent = calibrate_exponent(fs.sizes_bytes, self.popularity)
        sampler = ZipfSampler(fs.num_files, exponent)

        # Expected bytes per request under this popularity distribution.
        # Requests move whole pages, so the byte cost of a request is its
        # file's page footprint -- calibrating with raw file sizes would
        # overshoot the target rate whenever files round up to pages.
        mean_request_bytes = float(
            (sampler.probabilities * fs.num_pages).sum()
        ) * fs.page_size
        request_rate = self.data_rate / mean_request_bytes

        # Request arrivals over the duration.
        from repro.traces.arrivals import bmodel_arrivals, poisson_arrivals

        if self.arrival_process == "selfsimilar":
            arrivals = bmodel_arrivals(
                request_rate, duration_s, bias=self.burst_bias, rng=rng
            )
        else:
            arrivals = poisson_arrivals(request_rate, duration_s, rng=rng)
        if arrivals.size == 0:
            raise TraceError(
                "no requests generated; duration too short for the data rate"
            )
        file_ids = sampler.sample(arrivals.size, rng)

        # Expand each request into its file's sequential page accesses.
        pages_per_req = fs.num_pages[file_ids]
        total_accesses = int(pages_per_req.sum())
        req_index = np.repeat(np.arange(arrivals.size), pages_per_req)
        # Offset of each access within its request: 0, 1, 2, ...
        starts = np.concatenate(([0], np.cumsum(pages_per_req)[:-1]))
        offsets = np.arange(total_accesses) - starts[req_index]

        pages = fs.first_page[file_ids][req_index] + offsets
        page_gap = fs.page_size / self.connection_rate
        times = arrivals[req_index] + offsets * page_gap
        files = file_ids[req_index]
        writes = None
        if self.write_fraction > 0.0:
            request_is_write = rng.random(arrivals.size) < self.write_fraction
            writes = request_is_write[req_index]

        # Interleaved connections make the merged stream non-monotonic;
        # the disk cache sees accesses in arrival order.
        order = np.argsort(times, kind="stable")
        return Trace(
            times=times[order],
            pages=pages[order],
            page_size=fs.page_size,
            files=files[order],
            writes=None if writes is None else writes[order],
            meta={
                "generator": "specweb",
                "data_rate": self.data_rate,
                "popularity": self.popularity,
                "zipf_exponent": exponent,
                "dataset_bytes": fs.total_bytes,
                "num_files": fs.num_files,
                "duration_s": duration_s,
                "write_fraction": self.write_fraction,
                "arrival_process": self.arrival_process,
                "seed": self.seed,
            },
        )


def generate_trace(
    dataset_bytes: float,
    data_rate: float,
    duration_s: float,
    popularity: float = 0.10,
    page_size: int = PAGE_SIZE,
    seed: Optional[int] = None,
    file_scale: float = 1.0,
    write_fraction: float = 0.0,
) -> Trace:
    """One-call helper: build a file set and generate a trace.

    This is the entry point the experiments use; parameters mirror the
    paper's three workload characteristics plus duration.  For a
    granularity-scaled machine pass ``file_scale=machine.scale`` so file
    sizes keep the paper's ratio to the page size.
    """
    rng = np.random.default_rng(seed)
    fileset = specweb_fileset(
        dataset_bytes, page_size=page_size, rng=rng, file_scale=file_scale
    )
    generator = SpecWebGenerator(
        fileset=fileset,
        data_rate=data_rate,
        popularity=popularity,
        # Keep the intra-file page spacing at the paper's time scale: the
        # per-connection rate grows with the granularity factor so a file
        # read occupies the same wall-clock window at every scale.
        connection_rate=12.5 * MB * file_scale,
        write_fraction=write_fraction,
        seed=None if seed is None else seed + 1,
    )
    return generator.generate(duration_s)
