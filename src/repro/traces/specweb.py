"""SPECWeb99-class trace generator (paper Fig. 6, "benchmark" stage).

Requests arrive as a Poisson process; each request selects a file by a
bounded Zipf popularity distribution and reads the whole file as a run of
sequential page accesses.  Intra-file page accesses are spaced by the
server's per-connection service rate, so a large file occupies the stream
for a proportionally longer window -- this is what makes long files break
disk idleness differently from short ones.

The request rate is calibrated so the generated trace hits a target *byte*
rate, the quantity the paper sweeps (5-200 MB/s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import TraceError
from repro.traces.fileset import FileSet, specweb_fileset
from repro.traces.trace import Trace
from repro.traces.zipf import ZipfSampler, calibrate_exponent
from repro.units import MB, PAGE_SIZE


@dataclass(frozen=True)
class SpecWebGenerator:
    """Generator configuration.

    ``popularity`` is the paper's popularity ratio (hot-90 % footprint over
    data-set size): 0.1 means 10 % of the data receives 90 % of accesses.
    """

    fileset: FileSet
    data_rate: float  # target bytes/second
    popularity: float = 0.10
    #: Per-connection service bandwidth: spacing of page accesses within
    #: one file read.  100 Mb/s client links give about 12.5 MB/s.
    connection_rate: float = 12.5 * MB
    #: Fraction of *requests* that are uploads (their pages are writes).
    #: Web-serving workloads are read-dominated; SPECWeb99 models ~5%
    #: POSTs.
    write_fraction: float = 0.0
    #: Request arrival process: "poisson" (smooth) or "selfsimilar"
    #: (b-model cascade -- the bursty, heavy-tailed traffic of measured
    #: storage traces [20], [21]).
    arrival_process: str = "poisson"
    #: Burstiness of the self-similar process (b-model bias, [0.5, 1)).
    burst_bias: float = 0.75
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.data_rate <= 0:
            raise TraceError("data rate must be positive")
        if not 0.0 < self.popularity <= 1.0:
            raise TraceError("popularity ratio must be in (0, 1]")
        if self.connection_rate <= 0:
            raise TraceError("connection rate must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise TraceError("write fraction must be in [0, 1]")
        if self.arrival_process not in ("poisson", "selfsimilar"):
            raise TraceError(
                f"unknown arrival process {self.arrival_process!r}"
            )

    def _plan(self, duration_s: float):
        """The request-level plan: every RNG draw, before any expansion.

        Returns ``(arrivals, file_ids, request_is_write, exponent)``.
        Both :meth:`generate` and :meth:`generate_chunked` start from
        this exact draw sequence, which is what makes them bit-identical
        for the same seed: arrivals first, then file choices, then write
        flags, all at request granularity (O(requests) memory).
        """
        if duration_s <= 0:
            raise TraceError("duration must be positive")
        rng = np.random.default_rng(self.seed)
        fs = self.fileset

        exponent = calibrate_exponent(fs.sizes_bytes, self.popularity)
        sampler = ZipfSampler(fs.num_files, exponent)

        # Expected bytes per request under this popularity distribution.
        # Requests move whole pages, so the byte cost of a request is its
        # file's page footprint -- calibrating with raw file sizes would
        # overshoot the target rate whenever files round up to pages.
        mean_request_bytes = float(
            (sampler.probabilities * fs.num_pages).sum()
        ) * fs.page_size
        request_rate = self.data_rate / mean_request_bytes

        # Request arrivals over the duration.
        from repro.traces.arrivals import bmodel_arrivals, poisson_arrivals

        if self.arrival_process == "selfsimilar":
            arrivals = bmodel_arrivals(
                request_rate, duration_s, bias=self.burst_bias, rng=rng
            )
        else:
            arrivals = poisson_arrivals(request_rate, duration_s, rng=rng)
        if arrivals.size == 0:
            raise TraceError(
                "no requests generated; duration too short for the data rate"
            )
        file_ids = sampler.sample(arrivals.size, rng)
        request_is_write = None
        if self.write_fraction > 0.0:
            request_is_write = rng.random(arrivals.size) < self.write_fraction
        return arrivals, file_ids, request_is_write, exponent

    def _meta(self, duration_s: float, exponent: float) -> dict:
        fs = self.fileset
        return {
            "generator": "specweb",
            "data_rate": self.data_rate,
            "popularity": self.popularity,
            "zipf_exponent": exponent,
            "dataset_bytes": fs.total_bytes,
            "num_files": fs.num_files,
            "duration_s": duration_s,
            "write_fraction": self.write_fraction,
            "arrival_process": self.arrival_process,
            "seed": self.seed,
        }

    def generate(self, duration_s: float) -> Trace:
        """Generate a trace covering ``[0, duration_s)``."""
        arrivals, file_ids, request_is_write, exponent = self._plan(duration_s)
        fs = self.fileset

        # Expand each request into its file's sequential page accesses.
        pages_per_req = fs.num_pages[file_ids]
        total_accesses = int(pages_per_req.sum())
        req_index = np.repeat(np.arange(arrivals.size), pages_per_req)
        # Offset of each access within its request: 0, 1, 2, ...
        starts = np.concatenate(([0], np.cumsum(pages_per_req)[:-1]))
        offsets = np.arange(total_accesses) - starts[req_index]

        pages = fs.first_page[file_ids][req_index] + offsets
        page_gap = fs.page_size / self.connection_rate
        times = arrivals[req_index] + offsets * page_gap
        files = file_ids[req_index]
        writes = None
        if request_is_write is not None:
            writes = request_is_write[req_index]

        # Interleaved connections make the merged stream non-monotonic;
        # the disk cache sees accesses in arrival order.
        order = np.argsort(times, kind="stable")
        return Trace(
            times=times[order],
            pages=pages[order],
            page_size=fs.page_size,
            files=files[order],
            writes=None if writes is None else writes[order],
            meta=self._meta(duration_s, exponent),
        )

    def generate_chunked(
        self, duration_s: float, chunk_accesses: Optional[int] = None
    ):
        """Chunked twin of :meth:`generate`: same stream, bounded memory.

        Concatenating the chunks is bit-identical to :meth:`generate`
        with the same seed.  Requests are expanded block by block; an
        expanded access is emitted only once the next *unexpanded*
        request's arrival time proves nothing can still sort before it
        (intra-file offsets are non-negative, so every future access is
        at or past that arrival, and ties resolve to the earlier
        expansion index exactly as the materialized stable sort does).
        Peak memory is O(requests + chunk + carryover), where carryover
        is the accesses of still-open connections.
        """
        from repro.traces.chunked import (
            DEFAULT_CHUNK_ACCESSES,
            ChunkedTrace,
            TraceChunk,
        )

        chunk = DEFAULT_CHUNK_ACCESSES if chunk_accesses is None else chunk_accesses
        if chunk <= 0:
            raise TraceError("chunk size must be positive")
        arrivals, file_ids, request_is_write, exponent = self._plan(duration_s)
        fs = self.fileset
        pages_per_req = fs.num_pages[file_ids]
        # cum[i] = accesses expanded by requests before i (global indices).
        cum = np.concatenate(([0], np.cumsum(pages_per_req)))
        total_accesses = int(cum[-1])
        page_gap = fs.page_size / self.connection_rate
        last_time = float(
            (arrivals + (pages_per_req - 1) * page_gap).max()
        )
        n_req = int(arrivals.size)
        has_writes = request_is_write is not None and bool(
            request_is_write.any()
        )

        def factory():
            empty_w = (
                np.empty(0, dtype=bool) if request_is_write is not None else None
            )
            pend_t = np.empty(0, dtype=np.float64)
            pend_p = np.empty(0, dtype=np.int64)
            pend_f = np.empty(0, dtype=np.int64)
            pend_w = empty_w
            pend_i = np.empty(0, dtype=np.int64)
            req = 0
            while req < n_req:
                # Expand a block of requests totalling ~one chunk.
                end = (
                    int(np.searchsorted(cum, cum[req] + chunk, side="right"))
                    - 1
                )
                end = min(max(end, req + 1), n_req)
                ids = file_ids[req:end]
                ppr = pages_per_req[req:end]
                block_n = int(cum[end] - cum[req])
                req_local = np.repeat(np.arange(end - req), ppr)
                starts = np.concatenate(([0], np.cumsum(ppr)[:-1]))
                offsets = np.arange(block_n) - starts[req_local]
                pend_t = np.concatenate(
                    (pend_t, arrivals[req:end][req_local] + offsets * page_gap)
                )
                pend_p = np.concatenate(
                    (pend_p, fs.first_page[ids][req_local] + offsets)
                )
                pend_f = np.concatenate((pend_f, ids[req_local]))
                if pend_w is not None:
                    pend_w = np.concatenate(
                        (pend_w, request_is_write[req:end][req_local])
                    )
                pend_i = np.concatenate(
                    (pend_i, int(cum[req]) + np.arange(block_n))
                )
                req = end

                # Stable-sort the carryover by time (expansion index
                # breaks ties, matching argsort(times, kind="stable")).
                order = np.lexsort((pend_i, pend_t))
                pend_t = pend_t[order]
                pend_p = pend_p[order]
                pend_f = pend_f[order]
                if pend_w is not None:
                    pend_w = pend_w[order]
                pend_i = pend_i[order]

                # Everything at or before the next unexpanded arrival is
                # final: future accesses arrive at or past it with larger
                # expansion indices, so they sort strictly after.
                if req < n_req:
                    safe = int(
                        np.searchsorted(
                            pend_t, float(arrivals[req]), side="right"
                        )
                    )
                else:
                    safe = int(pend_t.size)
                for lo in range(0, safe, chunk):
                    hi = min(lo + chunk, safe)
                    yield TraceChunk(
                        times=pend_t[lo:hi],
                        pages=pend_p[lo:hi],
                        files=pend_f[lo:hi],
                        writes=None if pend_w is None else pend_w[lo:hi],
                    )
                pend_t = pend_t[safe:]
                pend_p = pend_p[safe:]
                pend_f = pend_f[safe:]
                if pend_w is not None:
                    pend_w = pend_w[safe:]
                pend_i = pend_i[safe:]

        return ChunkedTrace(
            factory=factory,
            page_size=fs.page_size,
            num_accesses=total_accesses,
            duration_s=last_time,
            has_writes=has_writes,
            meta=self._meta(duration_s, exponent),
        )


def generate_trace(
    dataset_bytes: float,
    data_rate: float,
    duration_s: float,
    popularity: float = 0.10,
    page_size: int = PAGE_SIZE,
    seed: Optional[int] = None,
    file_scale: float = 1.0,
    write_fraction: float = 0.0,
) -> Trace:
    """One-call helper: build a file set and generate a trace.

    This is the entry point the experiments use; parameters mirror the
    paper's three workload characteristics plus duration.  For a
    granularity-scaled machine pass ``file_scale=machine.scale`` so file
    sizes keep the paper's ratio to the page size.
    """
    rng = np.random.default_rng(seed)
    fileset = specweb_fileset(
        dataset_bytes, page_size=page_size, rng=rng, file_scale=file_scale
    )
    generator = SpecWebGenerator(
        fileset=fileset,
        data_rate=data_rate,
        popularity=popularity,
        # Keep the intra-file page spacing at the paper's time scale: the
        # per-connection rate grows with the granularity factor so a file
        # read occupies the same wall-clock window at every scale.
        connection_rate=12.5 * MB * file_scale,
        write_fraction=write_fraction,
        seed=None if seed is None else seed + 1,
    )
    return generator.generate(duration_s)


def generate_trace_chunked(
    dataset_bytes: float,
    data_rate: float,
    duration_s: float,
    popularity: float = 0.10,
    page_size: int = PAGE_SIZE,
    seed: Optional[int] = None,
    file_scale: float = 1.0,
    write_fraction: float = 0.0,
    chunk_accesses: Optional[int] = None,
):
    """Chunked twin of :func:`generate_trace`: same stream, bounded RAM.

    Same seed derivation and file-set construction as the materialized
    helper, so ``generate_trace_chunked(...).materialize()`` equals
    ``generate_trace(...)`` bit for bit.  This is the entry point for
    full-resolution (``--scale 1``) runs whose expanded arrays would not
    fit comfortably in memory.
    """
    rng = np.random.default_rng(seed)
    fileset = specweb_fileset(
        dataset_bytes, page_size=page_size, rng=rng, file_scale=file_scale
    )
    generator = SpecWebGenerator(
        fileset=fileset,
        data_rate=data_rate,
        popularity=popularity,
        connection_rate=12.5 * MB * file_scale,
        write_fraction=write_fraction,
        seed=None if seed is None else seed + 1,
    )
    return generator.generate_chunked(duration_s, chunk_accesses)
