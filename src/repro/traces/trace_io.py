"""Trace persistence: compressed .npz and line-oriented CSV.

The .npz form is lossless and fast; CSV is for interchange with external
tools (one ``time,page[,file]`` row per access).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import TraceError
from repro.traces.trace import Trace

PathLike = Union[str, Path]


def save_npz(trace: Trace, path: PathLike) -> None:
    """Write a trace to a compressed .npz archive."""
    path = Path(path)
    arrays = {
        "times": trace.times,
        "pages": trace.pages,
        "page_size": np.asarray([trace.page_size]),
        "meta_json": np.asarray([json.dumps(trace.meta, default=str)]),
    }
    if trace.files is not None:
        arrays["files"] = trace.files
    if trace.writes is not None:
        arrays["writes"] = trace.writes
    np.savez_compressed(path, **arrays)


def load_npz(path: PathLike) -> Trace:
    """Read a trace written by :func:`save_npz`.

    Archives written before write flags were persisted load as
    read-only traces (the ``writes`` member is optional).
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta_json"][0]))
        return Trace(
            times=data["times"],
            pages=data["pages"],
            page_size=int(data["page_size"][0]),
            files=data["files"] if "files" in data else None,
            writes=data["writes"] if "writes" in data else None,
            meta=meta,
        )


def load_npz_chunked(path: PathLike, chunk_accesses: int = None):
    """A saved trace as a :class:`~repro.traces.chunked.ChunkedTrace`.

    The compressed archive decompresses whole arrays, so this bounds the
    *replay-side* footprint (kernel temporaries, hit masks), not the
    load itself; use the chunked generators or :func:`load_csv_chunked`
    to avoid materializing entirely.
    """
    from repro.traces.chunked import DEFAULT_CHUNK_ACCESSES, chunk_trace

    if chunk_accesses is None:
        chunk_accesses = DEFAULT_CHUNK_ACCESSES
    return chunk_trace(load_npz(path), chunk_accesses)


def save_csv(trace: Trace, path: PathLike) -> None:
    """Write ``time,page[,file]`` rows with a header."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        if trace.files is not None:
            writer.writerow(["time", "page", "file"])
            for t, p, f in zip(trace.times, trace.pages, trace.files):
                writer.writerow([repr(float(t)), int(p), int(f)])
        else:
            writer.writerow(["time", "page"])
            for t, p in zip(trace.times, trace.pages):
                writer.writerow([repr(float(t)), int(p)])


def load_csv(path: PathLike, page_size: int = 4096) -> Trace:
    """Read a trace written by :func:`save_csv` (or any compatible CSV)."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    times, pages, files = [], [], []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise TraceError(f"empty trace file: {path}")
        has_files = len(header) >= 3
        for row in reader:
            if not row:
                continue
            times.append(float(row[0]))
            pages.append(int(row[1]))
            if has_files:
                files.append(int(row[2]))
    return Trace(
        times=np.asarray(times),
        pages=np.asarray(pages, dtype=np.int64),
        page_size=page_size,
        files=np.asarray(files, dtype=np.int64) if files else None,
        meta={"source": str(path)},
    )


def load_csv_chunked(
    path: PathLike, page_size: int = 4096, chunk_accesses: int = None
):
    """Stream a CSV trace as bounded chunks without loading it whole.

    Unlike :func:`load_npz_chunked` this genuinely never materializes
    the trace: each iteration re-reads the file row by row, holding at
    most one chunk of parsed arrays.  Stream totals (``num_accesses``,
    ``duration_s``) are unknown up front and left ``None``.
    """
    from repro.traces.chunked import (
        DEFAULT_CHUNK_ACCESSES,
        ChunkedTrace,
        TraceChunk,
    )

    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    chunk = DEFAULT_CHUNK_ACCESSES if chunk_accesses is None else chunk_accesses
    if chunk <= 0:
        raise TraceError("chunk size must be positive")

    def factory():
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                raise TraceError(f"empty trace file: {path}")
            has_files = len(header) >= 3
            times, pages, files = [], [], []
            for row in reader:
                if not row:
                    continue
                times.append(float(row[0]))
                pages.append(int(row[1]))
                if has_files:
                    files.append(int(row[2]))
                if len(times) >= chunk:
                    yield TraceChunk(
                        times=np.asarray(times),
                        pages=np.asarray(pages, dtype=np.int64),
                        files=(
                            np.asarray(files, dtype=np.int64)
                            if has_files
                            else None
                        ),
                    )
                    times, pages, files = [], [], []
            if times:
                yield TraceChunk(
                    times=np.asarray(times),
                    pages=np.asarray(pages, dtype=np.int64),
                    files=(
                        np.asarray(files, dtype=np.int64) if has_files else None
                    ),
                )

    return ChunkedTrace(
        factory=factory,
        page_size=page_size,
        meta={"source": str(path)},
    )
