"""Import block-level IO traces as disk-cache access traces.

Lets real-world traces drive the simulators: each record is a byte-range
request (``timestamp, offset, size``) against a block device; the importer
expands it to the page accesses the disk cache would see, at the machine's
page granularity.  Two formats:

* a minimal CSV (``time,offset,size`` with a header), and
* an in-memory array form for programmatic use.

Only reads and writes that reach the cache matter to the paper's system,
so no distinction is made between them (the paper's traces are web-server
reads).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence, Union

import numpy as np

from repro.errors import TraceError
from repro.traces.trace import Trace
from repro.units import PAGE_SIZE

PathLike = Union[str, Path]


def from_requests(
    times: Sequence[float],
    offsets: Sequence[int],
    sizes: Sequence[int],
    page_size: int = PAGE_SIZE,
    intra_request_gap_s: float = 0.0003,
) -> Trace:
    """Expand byte-range requests into page accesses.

    A request covering bytes ``[offset, offset + size)`` touches every
    page it overlaps; the pages are emitted sequentially, spaced by
    ``intra_request_gap_s`` (the per-page service spacing a streaming
    read exhibits), starting at the request's timestamp.
    """
    times_arr = np.asarray(times, dtype=float)
    offsets_arr = np.asarray(offsets, dtype=np.int64)
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    if not (times_arr.shape == offsets_arr.shape == sizes_arr.shape):
        raise TraceError("times, offsets and sizes must align")
    if times_arr.size == 0:
        raise TraceError("a block trace needs at least one request")
    if np.any(sizes_arr <= 0):
        raise TraceError("request sizes must be positive")
    if np.any(offsets_arr < 0):
        raise TraceError("offsets must be non-negative")
    if page_size <= 0:
        raise TraceError("page size must be positive")
    if intra_request_gap_s < 0:
        raise TraceError("intra-request gap must be non-negative")

    first_page = offsets_arr // page_size
    last_page = (offsets_arr + sizes_arr - 1) // page_size
    pages_per_request = (last_page - first_page + 1).astype(np.int64)

    total = int(pages_per_request.sum())
    request_index = np.repeat(np.arange(times_arr.size), pages_per_request)
    starts = np.concatenate(([0], np.cumsum(pages_per_request)[:-1]))
    within = np.arange(total) - starts[request_index]

    pages = first_page[request_index] + within
    access_times = times_arr[request_index] + within * intra_request_gap_s

    order = np.argsort(access_times, kind="stable")
    return Trace(
        times=access_times[order],
        pages=pages[order],
        page_size=page_size,
        files=request_index[order],
        meta={
            "source": "block-trace",
            "requests": int(times_arr.size),
            "page_size": page_size,
        },
    )


def load_block_csv(
    path: PathLike,
    page_size: int = PAGE_SIZE,
    intra_request_gap_s: float = 0.0003,
) -> Trace:
    """Read a ``time,offset,size`` CSV and expand it to page accesses."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"block trace not found: {path}")
    times, offsets, sizes = [], [], []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise TraceError(f"empty block trace: {path}")
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) < 3:
                raise TraceError(
                    f"{path}:{line_number}: expected time,offset,size"
                )
            times.append(float(row[0]))
            offsets.append(int(row[1]))
            sizes.append(int(row[2]))
    if not times:
        raise TraceError(f"no requests in block trace: {path}")
    order = np.argsort(np.asarray(times), kind="stable")
    return from_requests(
        np.asarray(times)[order],
        np.asarray(offsets, dtype=np.int64)[order],
        np.asarray(sizes, dtype=np.int64)[order],
        page_size=page_size,
        intra_request_gap_s=intra_request_gap_s,
    )
