"""Import block-level IO traces as disk-cache access traces.

Lets real-world traces drive the simulators: each record is a byte-range
request (``timestamp, offset, size``) against a block device; the importer
expands it to the page accesses the disk cache would see, at the machine's
page granularity.  Three forms:

* a minimal CSV (``time,offset,size`` with a header),
* the same CSV delivered as a bounded-memory :class:`ChunkedTrace`
  (:func:`load_block_csv_chunked`) for request logs whose page expansion
  would not fit in RAM, and
* an in-memory array form for programmatic use.

Only reads and writes that reach the cache matter to the paper's system,
so no distinction is made between them (the paper's traces are web-server
reads).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, List, Sequence, Tuple, Union

import numpy as np

from repro.errors import TraceError
from repro.traces.chunked import DEFAULT_CHUNK_ACCESSES, ChunkedTrace, TraceChunk
from repro.traces.trace import Trace
from repro.units import PAGE_SIZE

PathLike = Union[str, Path]


def _validate_requests(
    times_arr: np.ndarray,
    offsets_arr: np.ndarray,
    sizes_arr: np.ndarray,
    page_size: int,
    intra_request_gap_s: float,
) -> None:
    if not (times_arr.shape == offsets_arr.shape == sizes_arr.shape):
        raise TraceError("times, offsets and sizes must align")
    if times_arr.size == 0:
        raise TraceError("a block trace needs at least one request")
    if np.any(sizes_arr <= 0):
        raise TraceError("request sizes must be positive")
    if np.any(offsets_arr < 0):
        raise TraceError("offsets must be non-negative")
    if page_size <= 0:
        raise TraceError("page size must be positive")
    if intra_request_gap_s < 0:
        raise TraceError("intra-request gap must be non-negative")


def _request_plan(
    offsets_arr: np.ndarray, sizes_arr: np.ndarray, page_size: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-request ``(first_page, pages_per_request, starts)``."""
    first_page = offsets_arr // page_size
    last_page = (offsets_arr + sizes_arr - 1) // page_size
    pages_per_request = (last_page - first_page + 1).astype(np.int64)
    starts = np.concatenate(([0], np.cumsum(pages_per_request)[:-1]))
    return first_page, pages_per_request, starts


def from_requests(
    times: Sequence[float],
    offsets: Sequence[int],
    sizes: Sequence[int],
    page_size: int = PAGE_SIZE,
    intra_request_gap_s: float = 0.0003,
) -> Trace:
    """Expand byte-range requests into page accesses.

    A request covering bytes ``[offset, offset + size)`` touches every
    page it overlaps; the pages are emitted sequentially, spaced by
    ``intra_request_gap_s`` (the per-page service spacing a streaming
    read exhibits), starting at the request's timestamp.
    """
    times_arr = np.asarray(times, dtype=float)
    offsets_arr = np.asarray(offsets, dtype=np.int64)
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    _validate_requests(
        times_arr, offsets_arr, sizes_arr, page_size, intra_request_gap_s
    )
    first_page, pages_per_request, starts = _request_plan(
        offsets_arr, sizes_arr, page_size
    )

    total = int(pages_per_request.sum())
    request_index = np.repeat(np.arange(times_arr.size), pages_per_request)
    within = np.arange(total) - starts[request_index]

    pages = first_page[request_index] + within
    access_times = times_arr[request_index] + within * intra_request_gap_s

    order = np.argsort(access_times, kind="stable")
    return Trace(
        times=access_times[order],
        pages=pages[order],
        page_size=page_size,
        files=request_index[order],
        meta={
            "source": "block-trace",
            "requests": int(times_arr.size),
            "page_size": page_size,
        },
    )


def _read_request_csv(
    path: PathLike,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Parse a ``time,offset,size`` CSV into time-sorted request arrays."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"block trace not found: {path}")
    times: List[float] = []
    offsets: List[int] = []
    sizes: List[int] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise TraceError(f"empty block trace: {path}")
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) < 3:
                raise TraceError(
                    f"{path}:{line_number}: expected time,offset,size"
                )
            times.append(float(row[0]))
            offsets.append(int(row[1]))
            sizes.append(int(row[2]))
    if not times:
        raise TraceError(f"no requests in block trace: {path}")
    order = np.argsort(np.asarray(times), kind="stable")
    return (
        np.asarray(times)[order],
        np.asarray(offsets, dtype=np.int64)[order],
        np.asarray(sizes, dtype=np.int64)[order],
    )


def load_block_csv(
    path: PathLike,
    page_size: int = PAGE_SIZE,
    intra_request_gap_s: float = 0.0003,
) -> Trace:
    """Read a ``time,offset,size`` CSV and expand it to page accesses."""
    times_arr, offsets_arr, sizes_arr = _read_request_csv(path)
    return from_requests(
        times_arr,
        offsets_arr,
        sizes_arr,
        page_size=page_size,
        intra_request_gap_s=intra_request_gap_s,
    )


def load_block_csv_chunked(
    path: PathLike,
    page_size: int = PAGE_SIZE,
    intra_request_gap_s: float = 0.0003,
    chunk_accesses: int = DEFAULT_CHUNK_ACCESSES,
) -> ChunkedTrace:
    """Bounded-memory twin of :func:`load_block_csv`, bit-identical.

    Holds the O(requests) plan (the parsed CSV columns and per-request
    page counts) but never the full page expansion: requests expand in
    blocks of roughly ``chunk_accesses`` pages, and expanded accesses
    wait in a carryover buffer until the next unexpanded request's
    arrival time proves that no later access can stable-sort before them
    (request times are sorted and the intra-request gap is non-negative,
    so every future access lands at or after that arrival; on exact ties
    the future access's larger expansion index loses the stable sort).
    Concatenating the chunks therefore reproduces the materialized
    loader's ``argsort(times, kind="stable")`` order -- and every value
    in it -- exactly.  A single request larger than ``chunk_accesses``
    is still expanded whole, so memory is bounded by
    ``max(chunk_accesses, largest request)`` accesses.
    """
    if chunk_accesses <= 0:
        raise TraceError("chunk size must be positive")
    times_arr, offsets_arr, sizes_arr = _read_request_csv(path)
    _validate_requests(
        times_arr, offsets_arr, sizes_arr, page_size, intra_request_gap_s
    )
    first_page, pages_per_request, starts = _request_plan(
        offsets_arr, sizes_arr, page_size
    )
    num_requests = int(times_arr.size)
    total = int(pages_per_request.sum())
    cumulative = np.cumsum(pages_per_request)
    # The last access of each request is its latest; the global maximum
    # is computed with the same float ops the materialized expansion
    # uses (int64 "within" times the gap, added to the request time).
    duration = float(
        np.max(times_arr + (pages_per_request - 1) * intra_request_gap_s)
    )

    def factory() -> Iterator[TraceChunk]:
        # Carryover buffer, kept stable-sorted by time.  All buffered
        # expansion indices precede all future ones, so stably sorting
        # (buffer + new block) preserves the global tie-break order.
        buf_times = np.empty(0, dtype=times_arr.dtype)
        buf_pages = np.empty(0, dtype=np.int64)
        buf_files = np.empty(0, dtype=np.int64)
        ready_times: List[np.ndarray] = []
        ready_pages: List[np.ndarray] = []
        ready_files: List[np.ndarray] = []
        ready_count = 0
        lo = 0
        while lo < num_requests:
            done = cumulative[lo - 1] if lo else 0
            hi = int(
                np.searchsorted(cumulative, done + chunk_accesses, "left")
            ) + 1
            hi = min(max(hi, lo + 1), num_requests)
            counts = pages_per_request[lo:hi]
            block_total = int(counts.sum())
            request_index = np.repeat(np.arange(lo, hi), counts)
            within = (
                np.arange(block_total) + int(starts[lo])
            ) - starts[request_index]
            block_times = (
                times_arr[request_index] + within * intra_request_gap_s
            )
            block_pages = first_page[request_index] + within

            merged_times = np.concatenate([buf_times, block_times])
            merged_pages = np.concatenate([buf_pages, block_pages])
            merged_files = np.concatenate([buf_files, request_index])
            order = np.argsort(merged_times, kind="stable")
            merged_times = merged_times[order]
            merged_pages = merged_pages[order]
            merged_files = merged_files[order]
            if hi < num_requests:
                cutoff = float(times_arr[hi])
                emit = int(np.searchsorted(merged_times, cutoff, "right"))
            else:
                emit = merged_times.size
            ready_times.append(merged_times[:emit])
            ready_pages.append(merged_pages[:emit])
            ready_files.append(merged_files[:emit])
            ready_count += emit
            buf_times = merged_times[emit:]
            buf_pages = merged_pages[emit:]
            buf_files = merged_files[emit:]

            while ready_count >= chunk_accesses:
                times_cat = np.concatenate(ready_times)
                pages_cat = np.concatenate(ready_pages)
                files_cat = np.concatenate(ready_files)
                yield TraceChunk(
                    times=times_cat[:chunk_accesses],
                    pages=pages_cat[:chunk_accesses],
                    files=files_cat[:chunk_accesses],
                )
                ready_times = [times_cat[chunk_accesses:]]
                ready_pages = [pages_cat[chunk_accesses:]]
                ready_files = [files_cat[chunk_accesses:]]
                ready_count -= chunk_accesses
            lo = hi
        if ready_count:
            yield TraceChunk(
                times=np.concatenate(ready_times),
                pages=np.concatenate(ready_pages),
                files=np.concatenate(ready_files),
            )

    return ChunkedTrace(
        factory=factory,
        page_size=page_size,
        num_accesses=total,
        duration_s=duration,
        has_writes=False,
        meta={
            "source": "block-trace",
            "requests": num_requests,
            "page_size": page_size,
        },
    )
