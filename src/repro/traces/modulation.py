"""Time-varying load: diurnal and on/off modulation of a trace.

The paper motivates the joint method with *varying* server workloads
("the varying workload of server systems provides opportunities...",
Section I) but evaluates at stationary operating points.  These
utilities produce the non-stationary workloads the motivation describes,
so the manager's period-by-period adaptation can be observed directly
(see ``examples/diurnal_server.py``).

Both transforms reshape a trace's *timeline* while preserving its access
sequence (pages, and hence reuse, are untouched): time is warped so that
instantaneous request rate follows the requested profile, with the same
total duration.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.errors import TraceError
from repro.traces.trace import Trace

RateProfile = Callable[[float], float]


def modulate_rate(trace: Trace, profile: RateProfile, steps: int = 2048) -> Trace:
    """Warp time so the instantaneous rate tracks ``profile``.

    ``profile(t)`` is a positive relative rate for ``t`` in the original
    ``[0, duration]``; the warped trace covers the same duration and
    contains the same accesses in the same order, but their density at
    (warped) time ``t`` is proportional to ``profile`` there.

    Implementation: accesses are redistributed by the inverse of the
    profile's normalised cumulative integral, evaluated on a ``steps``
    point grid.
    """
    if trace.num_accesses == 0:
        raise TraceError("cannot modulate an empty trace")
    if steps < 2:
        raise TraceError("need at least two integration steps")
    duration = trace.duration_s
    if duration <= 0:
        raise TraceError("trace has no extent to modulate")

    grid = np.linspace(0.0, duration, steps)
    rates = np.asarray([profile(t) for t in grid], dtype=float)
    if np.any(rates < 0) or not np.all(np.isfinite(rates)):
        raise TraceError("rate profile must be finite and non-negative")
    if rates.max() <= 0:
        raise TraceError("rate profile is identically zero")

    # Cumulative fraction of accesses that should have happened by grid[i].
    cumulative = np.concatenate(([0.0], np.cumsum((rates[1:] + rates[:-1]) / 2)))
    cumulative /= cumulative[-1]

    # Each access keeps its *order statistic*: the k-th access of the
    # warped trace lands where the cumulative profile reaches k/n.
    positions = (np.arange(trace.num_accesses) + 0.5) / trace.num_accesses
    warped = np.interp(positions, cumulative, grid)

    return Trace(
        times=warped,
        pages=trace.pages,
        page_size=trace.page_size,
        files=trace.files,
        meta={**trace.meta, "modulated": True},
    )


def diurnal_profile(
    duration_s: float,
    peak_to_trough: float = 5.0,
    cycles: float = 1.0,
    phase: float = 0.0,
) -> RateProfile:
    """A day/night sinusoid: rate swings ``peak_to_trough`` : 1.

    ``cycles`` full periods fit in ``duration_s``; ``phase`` (radians)
    shifts where the peak falls.
    """
    if duration_s <= 0:
        raise TraceError("duration must be positive")
    if peak_to_trough < 1.0:
        raise TraceError("peak-to-trough ratio must be >= 1")
    amplitude = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)

    def profile(t: float) -> float:
        angle = 2.0 * math.pi * cycles * t / duration_s + phase
        return 1.0 + amplitude * math.sin(angle)

    return profile


def onoff_profile(
    duration_s: float,
    on_fraction: float = 0.5,
    period_s: Optional[float] = None,
    off_rate: float = 0.02,
) -> RateProfile:
    """Bursty on/off load: busy plateaus separated by near-quiet valleys.

    ``period_s`` defaults to a quarter of the duration.  The off phase
    keeps a small trickle (``off_rate``) so the disk still sees the
    occasional access, as real servers do.
    """
    if duration_s <= 0:
        raise TraceError("duration must be positive")
    if not 0.0 < on_fraction < 1.0:
        raise TraceError("on fraction must be in (0, 1)")
    if off_rate < 0:
        raise TraceError("off rate must be non-negative")
    cycle = period_s if period_s is not None else duration_s / 4.0
    if cycle <= 0:
        raise TraceError("cycle period must be positive")

    def profile(t: float) -> float:
        position = (t % cycle) / cycle
        return 1.0 if position < on_fraction else off_rate

    return profile
