"""The trace container: timestamped page accesses to the disk cache.

A trace is the paper's unit of workload (Fig. 6(b)): the sequence of
accesses issued to the disk cache, independent of cache size or power
management.  Stored as parallel numpy arrays for speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import TraceError
from repro.traces.zipf import MASS_FRACTION
from repro.units import PAGE_SIZE


@dataclass(frozen=True)
class Trace:
    """Timestamped page accesses.

    ``times[i]`` is the arrival time in seconds of the access to page
    ``pages[i]``.  Page numbers index the data set laid out by a
    :class:`~repro.traces.fileset.FileSet`; the optional ``files`` array
    records the owning file of each access (used by the synthesizer).
    """

    times: np.ndarray
    pages: np.ndarray
    page_size: int = PAGE_SIZE
    files: Optional[np.ndarray] = None
    #: Per-access write flag (None = read-only workload).
    writes: Optional[np.ndarray] = None
    #: Free-form provenance (generator parameters, transforms applied).
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=np.float64)
        pages = np.asarray(self.pages, dtype=np.int64)
        if times.shape != pages.shape or times.ndim != 1:
            raise TraceError("times and pages must be 1-D arrays of equal length")
        if times.size and np.any(np.diff(times) < 0.0):
            raise TraceError("trace timestamps must be non-decreasing")
        if np.any(pages < 0):
            raise TraceError("page numbers must be non-negative")
        if self.page_size <= 0:
            raise TraceError("page size must be positive")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "pages", pages)
        if self.files is not None:
            files = np.asarray(self.files, dtype=np.int64)
            if files.shape != times.shape:
                raise TraceError("files array must align with times")
            object.__setattr__(self, "files", files)
        if self.writes is not None:
            writes = np.asarray(self.writes, dtype=bool)
            if writes.shape != times.shape:
                raise TraceError("writes array must align with times")
            object.__setattr__(self, "writes", writes)

    # --- basic shape ----------------------------------------------------------

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def num_accesses(self) -> int:
        return len(self)

    @property
    def duration_s(self) -> float:
        """Time span covered, from 0 to the last access."""
        if self.times.size == 0:
            return 0.0
        return float(self.times[-1])

    @property
    def bytes_accessed(self) -> int:
        """Total bytes moved through the disk cache."""
        return self.num_accesses * self.page_size

    @property
    def data_rate(self) -> float:
        """Average bytes/second over the trace duration."""
        if self.duration_s <= 0.0:
            return 0.0
        return self.bytes_accessed / self.duration_s

    @property
    def write_fraction(self) -> float:
        """Fraction of accesses that are writes (0 for read-only traces)."""
        if self.writes is None or self.num_accesses == 0:
            return 0.0
        return float(self.writes.mean())

    @property
    def unique_pages(self) -> int:
        """Number of distinct pages touched (working-set size in pages)."""
        if self.num_accesses == 0:
            return 0
        return int(np.unique(self.pages).size)

    @property
    def footprint_bytes(self) -> int:
        """Bytes of distinct data touched."""
        return self.unique_pages * self.page_size

    # --- characterisation -----------------------------------------------------

    def measured_popularity(self, mass_fraction: float = MASS_FRACTION) -> float:
        """The paper's popularity ratio, measured from the trace itself.

        Pages are ranked by access count; the metric is the footprint of
        the hottest pages receiving ``mass_fraction`` of accesses, divided
        by the trace's total footprint.
        """
        if self.num_accesses == 0:
            raise TraceError("popularity of an empty trace is undefined")
        _, counts = np.unique(self.pages, return_counts=True)
        order = np.argsort(-counts, kind="stable")
        cum = np.cumsum(counts[order]) / counts.sum()
        needed = int(np.searchsorted(cum, mass_fraction, side="left")) + 1
        return needed / counts.size

    def slice_time(self, start_s: float, end_s: float) -> "Trace":
        """Sub-trace with accesses in ``[start_s, end_s)``, times preserved."""
        if end_s < start_s:
            raise TraceError("slice end precedes start")
        lo = int(np.searchsorted(self.times, start_s, side="left"))
        hi = int(np.searchsorted(self.times, end_s, side="left"))
        return Trace(
            times=self.times[lo:hi],
            pages=self.pages[lo:hi],
            page_size=self.page_size,
            files=None if self.files is None else self.files[lo:hi],
            writes=None if self.writes is None else self.writes[lo:hi],
            meta=dict(self.meta),
        )

    def with_meta(self, **entries: object) -> "Trace":
        """Copy with extra provenance entries."""
        meta = dict(self.meta)
        meta.update(entries)
        return Trace(
            times=self.times,
            pages=self.pages,
            page_size=self.page_size,
            files=self.files,
            writes=self.writes,
            meta=meta,
        )
