"""Chunked traces: paper-scale access streams without paper-scale RAM.

A full-resolution (``--scale 1``) workload easily reaches 10^7 accesses;
materializing the expanded per-access arrays costs hundreds of MB before
a single access is replayed.  A :class:`ChunkedTrace` delivers the same
stream as a sequence of bounded :class:`TraceChunk` batches instead --
the generators keep only their O(requests) plan plus one chunk of
expansion in memory, and replay drives the chunks straight through
:class:`~repro.service.streaming.StreamingManager` (see
:func:`repro.sim.runner.run_chunked`), inheriting the streaming layer's
bit-exactness contract with the offline engine.

Equivalence contract (enforced by ``tests/traces/test_chunked.py``):
for any chunk size, concatenating a source's chunks yields arrays
**identical** to the materialized builder with the same seed -- same
RNG draws, same stable sort order, same dtypes.  The chunked SPECWeb
generator achieves this by drawing its request-level plan up front
(arrival times, file choices, write flags -- exactly the draws
:meth:`SpecWebGenerator.generate` makes, in the same order) and then
expanding requests block by block: expanded accesses wait in a carryover
buffer until the next unexpanded request's arrival time proves no later
access can sort before them, so the emitted prefix reproduces the
materialized ``argsort(times, kind="stable")`` order exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional

import numpy as np

from repro.errors import TraceError
from repro.traces.trace import Trace
from repro.units import PAGE_SIZE

#: Default accesses per chunk: ~16 MB of (times + pages) per chunk.
DEFAULT_CHUNK_ACCESSES = 1 << 20


@dataclass(frozen=True)
class TraceChunk:
    """One bounded batch of a trace's access stream."""

    times: np.ndarray
    pages: np.ndarray
    files: Optional[np.ndarray] = None
    writes: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def num_accesses(self) -> int:
        return len(self)


@dataclass(frozen=True)
class ChunkedTrace:
    """A trace delivered as bounded chunks instead of full arrays.

    ``factory`` builds a fresh chunk iterator each call, so a chunked
    trace can be replayed (or materialized for testing) repeatedly.
    ``num_accesses`` and ``duration_s`` are the *final* stream totals,
    known up front by the generators (``None`` for sources that cannot
    know without a pass, e.g. streaming CSV).
    """

    factory: Callable[[], Iterator[TraceChunk]]
    page_size: int = PAGE_SIZE
    num_accesses: Optional[int] = None
    duration_s: Optional[float] = None
    has_writes: bool = False
    meta: Dict[str, object] = field(default_factory=dict)

    def chunks(self) -> Iterator[TraceChunk]:
        """A fresh iterator over the stream's chunks."""
        return self.factory()

    def materialize(self) -> Trace:
        """Concatenate every chunk into a full :class:`Trace`.

        For tests and small streams only -- this holds the whole trace,
        defeating the point of chunking.
        """
        times, pages, files, writes = [], [], [], []
        has_files = True
        for chunk in self.chunks():
            times.append(chunk.times)
            pages.append(chunk.pages)
            if chunk.files is None:
                has_files = False
            else:
                files.append(chunk.files)
            if chunk.writes is not None:
                writes.append(chunk.writes)
        if not times:
            raise TraceError("chunked trace produced no chunks")
        return Trace(
            times=np.concatenate(times),
            pages=np.concatenate(pages),
            page_size=self.page_size,
            files=np.concatenate(files) if has_files and files else None,
            writes=np.concatenate(writes) if writes else None,
            meta=dict(self.meta),
        )

    def with_meta(self, **entries: object) -> "ChunkedTrace":
        """Copy with extra provenance entries."""
        meta = dict(self.meta)
        meta.update(entries)
        return ChunkedTrace(
            factory=self.factory,
            page_size=self.page_size,
            num_accesses=self.num_accesses,
            duration_s=self.duration_s,
            has_writes=self.has_writes,
            meta=meta,
        )


def chunk_trace(
    trace: Trace, chunk_accesses: int = DEFAULT_CHUNK_ACCESSES
) -> ChunkedTrace:
    """View an already-materialized trace as chunks (no copies)."""
    if chunk_accesses <= 0:
        raise TraceError("chunk size must be positive")
    n = trace.num_accesses

    def factory() -> Iterator[TraceChunk]:
        for lo in range(0, max(n, 1), chunk_accesses):
            hi = min(lo + chunk_accesses, n)
            yield TraceChunk(
                times=trace.times[lo:hi],
                pages=trace.pages[lo:hi],
                files=None if trace.files is None else trace.files[lo:hi],
                writes=None if trace.writes is None else trace.writes[lo:hi],
            )

    return ChunkedTrace(
        factory=factory,
        page_size=trace.page_size,
        num_accesses=n,
        duration_s=trace.duration_s,
        has_writes=trace.writes is not None and bool(trace.writes.any()),
        meta=dict(trace.meta),
    )


def modulate_rate_chunked(
    source: ChunkedTrace,
    profile: Callable[[float], float],
    steps: int = 2048,
) -> ChunkedTrace:
    """Chunked twin of :func:`repro.traces.modulation.modulate_rate`.

    The warp of access ``k`` depends only on its order statistic
    ``(k + 0.5) / n`` and the profile's cumulative integral, so it
    applies chunk by chunk given the stream totals.  Bit-identical to
    modulating the materialized trace (same grid, same ``np.interp``
    calls); write flags are dropped, exactly as the materialized
    transform drops them.
    """
    n = source.num_accesses
    duration = source.duration_s
    if n is None or duration is None:
        raise TraceError("chunked modulation needs known stream totals")
    if n == 0:
        raise TraceError("cannot modulate an empty trace")
    if steps < 2:
        raise TraceError("need at least two integration steps")
    if duration <= 0:
        raise TraceError("trace has no extent to modulate")

    grid = np.linspace(0.0, duration, steps)
    rates = np.asarray([profile(t) for t in grid], dtype=float)
    if np.any(rates < 0) or not np.all(np.isfinite(rates)):
        raise TraceError("rate profile must be finite and non-negative")
    if rates.max() <= 0:
        raise TraceError("rate profile is identically zero")
    cumulative = np.concatenate(
        ([0.0], np.cumsum((rates[1:] + rates[:-1]) / 2))
    )
    cumulative /= cumulative[-1]
    # The warped stream ends where its last access lands (np.interp is
    # elementwise, so this is bit-identical to the materialized twin's
    # final timestamp).
    last_position = np.asarray([(n - 0.5) / n])
    warped_end = float(np.interp(last_position, cumulative, grid)[0])

    def factory() -> Iterator[TraceChunk]:
        offset = 0
        for chunk in source.chunks():
            count = len(chunk)
            positions = (np.arange(offset, offset + count) + 0.5) / n
            yield TraceChunk(
                times=np.interp(positions, cumulative, grid),
                pages=chunk.pages,
                files=chunk.files,
            )
            offset += count

    return ChunkedTrace(
        factory=factory,
        page_size=source.page_size,
        num_accesses=n,
        duration_s=warped_end,
        has_writes=False,
        meta={**source.meta, "modulated": True},
    )
