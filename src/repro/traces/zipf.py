"""Bounded Zipf popularity model and its calibration.

Web-server file popularity is Zipf-like (paper cites Arlitt & Williamson
[42]).  File ``r`` (rank, 0-based) is requested with probability
proportional to ``1 / (r + 1)**s``.

The paper characterises a workload not by the Zipf exponent but by its
*popularity ratio*: "the ratio between the size of the most popular data
receiving 90 % of total accesses and the size of the total data set"
(Section V-A).  :func:`calibrate_exponent` inverts that definition, finding
the exponent that produces a requested popularity ratio for a given file
population.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import TraceError

#: Fraction of accesses used by the paper's popularity definition.
MASS_FRACTION = 0.90


class ZipfSampler:
    """Draw file ranks from a bounded Zipf distribution.

    Rank 0 is the most popular file.  Sampling uses the inverse-CDF
    method over the precomputed cumulative weights, so drawing ``n``
    samples costs ``O(n log N)``.
    """

    def __init__(self, num_items: int, exponent: float) -> None:
        if num_items <= 0:
            raise TraceError("Zipf needs at least one item")
        if exponent < 0:
            raise TraceError("Zipf exponent must be non-negative")
        self.num_items = num_items
        self.exponent = exponent
        weights = (np.arange(1, num_items + 1, dtype=float)) ** (-exponent)
        self._probabilities = weights / weights.sum()
        self._cumulative = np.cumsum(self._probabilities)
        # Guard against floating-point drift at the top end.
        self._cumulative[-1] = 1.0

    @property
    def probabilities(self) -> np.ndarray:
        """Access probability of each rank (most popular first)."""
        return self._probabilities

    def sample(self, n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``n`` ranks (0-based, 0 = hottest)."""
        if n < 0:
            raise TraceError("sample count must be non-negative")
        if rng is None:
            rng = np.random.default_rng()
        u = rng.random(n)
        return np.searchsorted(self._cumulative, u, side="left").astype(np.int64)


def popularity_ratio(
    probabilities: Sequence[float],
    sizes_bytes: Sequence[float],
    mass_fraction: float = MASS_FRACTION,
) -> float:
    """The paper's popularity metric for a given access distribution.

    Files are sorted by access probability (descending); the metric is the
    total size of the hottest files that together receive ``mass_fraction``
    of accesses, divided by the total data-set size.  Smaller values mean
    *denser* popularity.
    """
    probs = np.asarray(probabilities, dtype=float)
    sizes = np.asarray(sizes_bytes, dtype=float)
    if probs.shape != sizes.shape:
        raise TraceError("probabilities and sizes must align")
    if probs.size == 0:
        raise TraceError("popularity of an empty file set is undefined")
    if not 0.0 < mass_fraction <= 1.0:
        raise TraceError("mass fraction must be in (0, 1]")
    total_size = float(sizes.sum())
    if total_size <= 0:
        raise TraceError("total data-set size must be positive")
    order = np.argsort(-probs, kind="stable")
    cum_mass = np.cumsum(probs[order])
    cum_mass /= cum_mass[-1]
    # Number of hottest files needed to reach the mass fraction.
    needed = int(np.searchsorted(cum_mass, mass_fraction, side="left")) + 1
    hot_size = float(sizes[order[:needed]].sum())
    return hot_size / total_size


def calibrate_exponent(
    sizes_bytes: Sequence[float],
    target_ratio: float,
    mass_fraction: float = MASS_FRACTION,
    tolerance: float = 1e-3,
    max_exponent: float = 8.0,
) -> float:
    """Find the Zipf exponent whose popularity ratio matches ``target_ratio``.

    The ratio decreases monotonically as the exponent grows (hotter heads
    concentrate accesses on fewer, therefore smaller, subsets), so a
    bisection converges.  Raises :class:`TraceError` if the target is not
    reachable: a uniform distribution (exponent 0) gives the largest ratio
    and ``max_exponent`` the smallest.
    """
    sizes = np.asarray(sizes_bytes, dtype=float)
    if sizes.size == 0:
        raise TraceError("cannot calibrate popularity of an empty file set")
    if not 0.0 < target_ratio <= 1.0:
        raise TraceError("target popularity ratio must be in (0, 1]")

    def ratio_at(exponent: float) -> float:
        sampler = ZipfSampler(sizes.size, exponent)
        return popularity_ratio(sampler.probabilities, sizes, mass_fraction)

    low, high = 0.0, max_exponent
    ratio_low, ratio_high = ratio_at(low), ratio_at(high)
    if target_ratio > ratio_low + tolerance:
        # Even uniform access cannot spread mass that widely.
        return 0.0
    if target_ratio < ratio_high - tolerance:
        raise TraceError(
            f"popularity ratio {target_ratio} is denser than achievable "
            f"({ratio_high:.4f}) with {sizes.size} files"
        )
    for _ in range(100):
        mid = (low + high) / 2.0
        ratio = ratio_at(mid)
        if abs(ratio - target_ratio) <= tolerance:
            return mid
        if ratio > target_ratio:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0
