"""The paper's workload synthesizer (Section V-A).

Three transforms, each varying one characteristic while leaving the others
fixed:

* **data rate** -- "To increase the data rate, the synthesizer reduces the
  time interval between any two consecutive accesses."
* **data-set size** -- "The sizes of the data sets are enlarged by replacing
  one access in the traces by multiple accesses ... if the data set is
  enlarged by a factor of 4, the synthesizer doubles the number of files
  and the size of each file."
* **popularity** -- "we vary the accesses in the original traces by
  replacing the accesses to less popular pages with the accesses to more
  popular pages."

All transforms are pure: they return a new :class:`~repro.traces.trace.Trace`.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import TraceError
from repro.traces.trace import Trace


def scale_data_rate(trace: Trace, factor: float) -> Trace:
    """Multiply the byte rate by ``factor`` by compressing time.

    ``factor > 1`` shrinks inter-access intervals (higher rate);
    ``factor < 1`` stretches them.
    """
    if factor <= 0:
        raise TraceError("rate factor must be positive")
    return Trace(
        times=trace.times / factor,
        pages=trace.pages,
        page_size=trace.page_size,
        files=trace.files,
        writes=trace.writes,
        meta={**trace.meta, "rate_scaled_by": factor},
    ).with_meta()


def scale_data_rate_chunked(source, factor: float):
    """Chunked twin of :func:`scale_data_rate` (elementwise, bit-exact).

    ``source`` is a :class:`~repro.traces.chunked.ChunkedTrace`; the
    time division applies chunk by chunk, so concatenating the result's
    chunks equals scaling the materialized trace.
    """
    from repro.traces.chunked import ChunkedTrace, TraceChunk

    if factor <= 0:
        raise TraceError("rate factor must be positive")

    def factory():
        for chunk in source.chunks():
            yield TraceChunk(
                times=chunk.times / factor,
                pages=chunk.pages,
                files=chunk.files,
                writes=chunk.writes,
            )

    return ChunkedTrace(
        factory=factory,
        page_size=source.page_size,
        num_accesses=source.num_accesses,
        duration_s=(
            None if source.duration_s is None else source.duration_s / factor
        ),
        has_writes=source.has_writes,
        meta={**source.meta, "rate_scaled_by": factor},
    )


def scale_dataset(trace: Trace, factor: float, seed: Optional[int] = None) -> Trace:
    """Enlarge (or shrink) the data set by ``factor``.

    Following the paper, a factor of ``k`` multiplies both the number of
    distinct "files" (here: page-footprint replicas) and the footprint of
    each by ``sqrt(k)``.  Concretely each access to page ``p`` is rewritten
    to one of ``sqrt(k)`` replica regions (chosen pseudo-randomly but
    deterministically per original page, preserving reuse), and within the
    region the page run is stretched by ``sqrt(k)`` so that each replica's
    footprint grows accordingly.  Replacing one access by multiple accesses
    keeps the access *count* proportional to the byte rate, so the trace's
    data rate is preserved by also replicating accesses ``sqrt(k)`` times at
    the connection spacing.

    Mechanics for an integer ``width = sqrt(factor)``: page ``p`` gains
    ``width``-page stretched images in each of ``width`` replica regions
    (footprint x ``width^2``); the ``k``-th visit to ``p`` is rewritten to
    its image in replica ``k mod width``, expanded to the ``width``
    stretched pages (accesses x ``width``).  Each new page is therefore
    visited ``width`` times less often -- exactly the sparser reuse a
    ``factor``-times-larger data set sees at an unchanged request mix.

    In practice the experiments regenerate traces at the desired size
    instead (the generator supports every size directly); this transform
    exists for users who only have a measured trace.
    """
    del seed  # the transform is deterministic
    if factor <= 0:
        raise TraceError("data-set factor must be positive")
    if trace.num_accesses == 0:
        raise TraceError("cannot scale an empty trace")
    width = max(int(round(math.sqrt(factor))), 1)

    n_pages = int(trace.pages.max()) + 1
    # k-th visit to a page goes to replica k mod width.
    visit_index = np.zeros(trace.num_accesses, dtype=np.int64)
    counts = np.zeros(n_pages, dtype=np.int64)
    pages = trace.pages
    for i in range(trace.num_accesses):
        page = pages[i]
        visit_index[i] = counts[page]
        counts[page] += 1
    replica = visit_index % width

    base = replica * (n_pages * width) + pages * width
    expanded_pages = (base[:, None] + np.arange(width)[None, :]).reshape(-1)
    # Stretched-page accesses follow at connection spacing (~0.3 ms),
    # independent of granularity, matching the generator's burst shape.
    spacing = 4096 / (12.5 * 1024 * 1024)
    expanded_times = (
        trace.times[:, None] + np.arange(width)[None, :] * spacing
    ).reshape(-1)
    files = None
    if trace.files is not None:
        files = np.repeat(trace.files, width)

    order = np.argsort(expanded_times, kind="stable")
    return Trace(
        times=expanded_times[order],
        pages=expanded_pages[order],
        page_size=trace.page_size,
        files=None if files is None else files[order],
        meta={**trace.meta, "dataset_scaled_by": width * width},
    )


def densify_popularity(
    trace: Trace, target_ratio: float, seed: Optional[int] = None
) -> Trace:
    """Make popularity denser: remap cold-page accesses onto hot pages.

    Repeats the paper's procedure: accesses to the least popular pages are
    replaced by accesses to the most popular pages until the measured
    popularity ratio (hot-90 % footprint over total footprint) drops to
    ``target_ratio``.  The total footprint is preserved by leaving at least
    one access on every page.
    """
    if not 0.0 < target_ratio <= 1.0:
        raise TraceError("target popularity ratio must be in (0, 1]")
    if trace.num_accesses == 0:
        raise TraceError("cannot densify an empty trace")

    current = trace.measured_popularity()
    if target_ratio >= current:
        return trace.with_meta(popularity_densified_to=current)

    rng = np.random.default_rng(seed)
    unique, counts = np.unique(trace.pages, return_counts=True)
    order = np.argsort(-counts, kind="stable")
    hot_first = unique[order]

    # Choose how many hot pages should absorb 90 % of accesses.
    n_hot = max(int(round(target_ratio * unique.size)), 1)
    hot_pages = hot_first[:n_hot]
    hot_set = np.zeros(int(trace.pages.max()) + 1, dtype=bool)
    hot_set[hot_pages] = True

    total = trace.num_accesses
    target_hot_accesses = int(math.ceil(0.90 * total))
    is_hot = hot_set[trace.pages]
    current_hot = int(is_hot.sum())
    deficit = target_hot_accesses - current_hot

    pages = trace.pages.copy()
    if deficit > 0:
        cold_indices = np.flatnonzero(~is_hot)
        # Keep the first access to each cold page so the footprint (and
        # therefore the data-set size) is unchanged.
        first_seen = np.zeros(int(trace.pages.max()) + 1, dtype=bool)
        keep = np.zeros(cold_indices.size, dtype=bool)
        for j, idx in enumerate(cold_indices):
            page = pages[idx]
            if not first_seen[page]:
                first_seen[page] = True
                keep[j] = True
        replaceable = cold_indices[~keep]
        n_replace = min(deficit, replaceable.size)
        chosen = rng.choice(replaceable, size=n_replace, replace=False)
        # Weight replacement targets by existing hot-page popularity.
        hot_counts = counts[order][:n_hot].astype(float)
        weights = hot_counts / hot_counts.sum()
        pages[chosen] = rng.choice(hot_pages, size=n_replace, p=weights)

    return Trace(
        times=trace.times,
        pages=pages,
        page_size=trace.page_size,
        files=trace.files,
        meta={**trace.meta, "popularity_densified_to": target_ratio},
    )
