"""Named canonical workloads.

One-liners for the workload situations the paper (and this repository's
extensions) care about.  Every suite entry is a factory keyed by name;
``build(name, machine, ...)`` returns a ready trace at the machine's
granularity.

========================  ====================================================
name                      situation
========================  ====================================================
``paper-default``         Section V-B's centre point: 16 GB, 100 MB/s, 0.1
``small-dataset``         4 GB at 100 MB/s -- memory sizing dominates
``dense-popularity``      16 GB at 5 MB/s, popularity 0.05 -- tiny hot set
``sparse-popularity``     16 GB at 5 MB/s, popularity 0.6 -- hot set > 8 GB
``low-rate``              16 GB at 5 MB/s -- long idleness, spin-down heaven
``high-rate``             16 GB at 200 MB/s -- short gaps, timeouts must grow
``diurnal``               16 GB, 60 MB/s average with an 8:1 day/night swing
``bursty``                16 GB, on/off plateaus with near-quiet valleys
``write-heavy``           16 GB at 20 MB/s with 20 % upload requests
``self-similar``          16 GB at 20 MB/s, b-model bursty arrivals
========================  ====================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.config.machine import MachineConfig
from repro.errors import TraceError
from repro.traces.modulation import diurnal_profile, modulate_rate, onoff_profile
from repro.traces.specweb import generate_trace
from repro.traces.trace import Trace
from repro.units import GB, MB

Builder = Callable[[MachineConfig, float, int], Trace]


def _specweb(dataset_gb, rate_mb, popularity=0.1, write_fraction=0.0):
    def build(machine: MachineConfig, duration_s: float, seed: int) -> Trace:
        return generate_trace(
            dataset_bytes=dataset_gb * GB,
            data_rate=rate_mb * MB,
            duration_s=duration_s,
            popularity=popularity,
            page_size=machine.page_bytes,
            seed=seed,
            file_scale=machine.scale,
            write_fraction=write_fraction,
        )

    def build_chunks(machine, duration_s, seed, chunk_accesses):
        from repro.traces.specweb import generate_trace_chunked

        return generate_trace_chunked(
            dataset_bytes=dataset_gb * GB,
            data_rate=rate_mb * MB,
            duration_s=duration_s,
            popularity=popularity,
            page_size=machine.page_bytes,
            seed=seed,
            file_scale=machine.scale,
            write_fraction=write_fraction,
            chunk_accesses=chunk_accesses,
        )

    build.chunked = build_chunks
    return build


def _selfsimilar(dataset_gb, rate_mb, bias=0.75):
    def _generator(machine: MachineConfig, seed: int):
        from repro.traces.fileset import specweb_fileset
        from repro.traces.specweb import SpecWebGenerator

        import numpy as np

        fileset = specweb_fileset(
            dataset_gb * GB,
            page_size=machine.page_bytes,
            rng=np.random.default_rng(seed),
            file_scale=machine.scale,
        )
        return SpecWebGenerator(
            fileset=fileset,
            data_rate=rate_mb * MB,
            connection_rate=12.5 * MB * machine.scale,
            arrival_process="selfsimilar",
            burst_bias=bias,
            seed=seed + 1,
        )

    def build(machine: MachineConfig, duration_s: float, seed: int) -> Trace:
        return _generator(machine, seed).generate(duration_s)

    def build_chunks(machine, duration_s, seed, chunk_accesses):
        return _generator(machine, seed).generate_chunked(
            duration_s, chunk_accesses
        )

    build.chunked = build_chunks
    return build


def _modulated(profile_factory, dataset_gb=16, rate_mb=60):
    base_build = _specweb(dataset_gb, rate_mb)

    def build(machine: MachineConfig, duration_s: float, seed: int) -> Trace:
        flat = base_build(machine, duration_s, seed)
        return modulate_rate(flat, profile_factory(duration_s))

    def build_chunks(machine, duration_s, seed, chunk_accesses):
        from repro.traces.chunked import modulate_rate_chunked

        flat = base_build.chunked(machine, duration_s, seed, chunk_accesses)
        return modulate_rate_chunked(flat, profile_factory(duration_s))

    build.chunked = build_chunks
    return build


SUITES: Dict[str, Builder] = {
    "paper-default": _specweb(16, 100),
    "small-dataset": _specweb(4, 100),
    "dense-popularity": _specweb(16, 5, popularity=0.05),
    "sparse-popularity": _specweb(16, 5, popularity=0.6),
    "low-rate": _specweb(16, 5),
    "high-rate": _specweb(16, 200),
    "diurnal": _modulated(
        lambda duration: diurnal_profile(duration, peak_to_trough=8.0)
    ),
    "bursty": _modulated(
        lambda duration: onoff_profile(duration, on_fraction=0.4)
    ),
    "write-heavy": _specweb(16, 20, write_fraction=0.2),
    "self-similar": _selfsimilar(16, 20),
}


def suite_names() -> List[str]:
    return sorted(SUITES)


def build(
    name: str,
    machine: MachineConfig,
    duration_s: float,
    seed: int = 42,
) -> Trace:
    """Build the named workload at the machine's granularity."""
    key = name.strip().lower()
    if key not in SUITES:
        raise TraceError(
            f"unknown workload suite {name!r}; available: "
            + ", ".join(suite_names())
        )
    return SUITES[key](machine, duration_s, seed).with_meta(suite=key)


def build_chunked(
    name: str,
    machine: MachineConfig,
    duration_s: float,
    seed: int = 42,
    chunk_accesses: int = None,
):
    """Chunked twin of :func:`build`: the same workload, bounded memory.

    Every suite builder has a chunked variant whose concatenated chunks
    are bit-identical to the materialized build with the same seed (the
    fuzz matrix in ``tests/traces/test_chunked.py`` holds this across
    all suites and chunk sizes).  Returns a
    :class:`~repro.traces.chunked.ChunkedTrace`.
    """
    key = name.strip().lower()
    if key not in SUITES:
        raise TraceError(
            f"unknown workload suite {name!r}; available: "
            + ", ".join(suite_names())
        )
    return SUITES[key].chunked(
        machine, duration_s, seed, chunk_accesses
    ).with_meta(suite=key)
