"""Workload characterisation: the statistics the paper sweeps, measured.

Given any trace (generated, transformed or imported), compute the three
characteristics the paper's evaluation varies -- data-set size, data
rate, popularity -- plus the reuse structure that determines how the
cache and the disk will behave: the reuse-distance histogram, the
miss-ratio curve and the per-window rate profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.cache.counters import DepthCounters
from repro.cache.stack_distance import StackDistanceTracker
from repro.errors import TraceError
from repro.traces.trace import Trace
from repro.units import GB, MB


@dataclass(frozen=True)
class TraceProfile:
    """Measured characteristics of one trace."""

    num_accesses: int
    duration_s: float
    data_rate_bytes_s: float
    footprint_bytes: int
    popularity: float
    #: Fraction of accesses that re-reference an already-seen page.
    reuse_fraction: float
    #: Miss ratio at a few representative cache sizes (bytes -> ratio).
    miss_ratio_at: Dict[int, float] = field(default_factory=dict)
    #: Mean access rate per window, bytes/second.
    rate_profile: List[float] = field(default_factory=list)

    def summary_rows(self) -> List[Dict[str, object]]:
        """Rows for :func:`repro.experiments.formatting.render_table`."""
        rows: List[Dict[str, object]] = [
            {"metric": "accesses", "value": self.num_accesses},
            {"metric": "duration (s)", "value": round(self.duration_s, 1)},
            {
                "metric": "data rate (MB/s)",
                "value": round(self.data_rate_bytes_s / MB, 2),
            },
            {
                "metric": "footprint (GB)",
                "value": round(self.footprint_bytes / GB, 3),
            },
            {"metric": "popularity (hot-90%)", "value": round(self.popularity, 3)},
            {"metric": "reuse fraction", "value": round(self.reuse_fraction, 3)},
        ]
        for size, ratio in sorted(self.miss_ratio_at.items()):
            rows.append(
                {
                    "metric": f"miss ratio @ {size / GB:g} GB",
                    "value": round(ratio, 4),
                }
            )
        return rows


def characterize(
    trace: Trace,
    cache_sizes_bytes: List[int] | None = None,
    rate_windows: int = 10,
) -> TraceProfile:
    """Measure a trace's workload characteristics in one pass."""
    if trace.num_accesses == 0:
        raise TraceError("cannot characterise an empty trace")
    if rate_windows < 1:
        raise TraceError("need at least one rate window")
    if cache_sizes_bytes is None:
        cache_sizes_bytes = [1 * GB, 4 * GB, 16 * GB, 64 * GB]

    tracker = StackDistanceTracker()
    counters = DepthCounters()
    for page in trace.pages:
        counters.record(tracker.access(int(page)))

    sizes_pages = [max(size // trace.page_size, 1) for size in cache_sizes_bytes]
    misses = counters.misses_at_sizes(sizes_pages)
    miss_ratio_at = {
        size: count / trace.num_accesses
        for size, count in zip(cache_sizes_bytes, misses)
    }

    reuse_fraction = 1.0 - counters.cold_misses / trace.num_accesses

    duration = max(trace.duration_s, 1e-9)
    edges = np.linspace(0.0, duration, rate_windows + 1)
    counts, _ = np.histogram(trace.times, bins=edges)
    window = duration / rate_windows
    rate_profile = (counts * trace.page_size / window).tolist()

    return TraceProfile(
        num_accesses=trace.num_accesses,
        duration_s=trace.duration_s,
        data_rate_bytes_s=trace.data_rate,
        footprint_bytes=trace.footprint_bytes,
        popularity=trace.measured_popularity(),
        reuse_fraction=reuse_fraction,
        miss_ratio_at=miss_ratio_at,
        rate_profile=rate_profile,
    )
