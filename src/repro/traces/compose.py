"""Trace composition: phases in sequence, tenants in parallel.

Real servers see workloads that change phase (a batch job after the
daily peak) and share storage between tenants.  Two pure composition
operators build such traces from simpler ones:

* :func:`concatenate` plays traces back to back (the second starts when
  the first ends, plus an optional gap);
* :func:`interleave` merges concurrent traces on one timeline, shifting
  each tenant's pages into its own region so footprints do not collide
  (``shared_pages=True`` keeps page identities for shared-data setups).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import TraceError
from repro.traces.trace import Trace


def _common_page_size(traces: Sequence[Trace]) -> int:
    sizes = {trace.page_size for trace in traces}
    if len(sizes) != 1:
        raise TraceError(f"traces disagree on page size: {sorted(sizes)}")
    return sizes.pop()


def _writes_or_none(traces: Sequence[Trace]) -> Optional[np.ndarray]:
    if all(trace.writes is None for trace in traces):
        return None
    parts = [
        trace.writes
        if trace.writes is not None
        else np.zeros(trace.num_accesses, dtype=bool)
        for trace in traces
    ]
    return np.concatenate(parts)


def concatenate(traces: Sequence[Trace], gap_s: float = 0.0) -> Trace:
    """Play the traces one after another, separated by ``gap_s``."""
    traces = list(traces)
    if not traces:
        raise TraceError("nothing to concatenate")
    if any(trace.num_accesses == 0 for trace in traces):
        raise TraceError("cannot concatenate an empty trace")
    if gap_s < 0:
        raise TraceError("gap must be non-negative")
    page_size = _common_page_size(traces)

    times_parts = []
    offset = 0.0
    for trace in traces:
        times_parts.append(trace.times + offset)
        offset += trace.duration_s + gap_s
    times = np.concatenate(times_parts)
    pages = np.concatenate([trace.pages for trace in traces])
    writes = _writes_or_none(traces)
    return Trace(
        times=times,
        pages=pages,
        page_size=page_size,
        writes=writes,
        meta={"composed": "concatenate", "parts": len(traces)},
    )


def interleave(
    traces: Sequence[Trace], shared_pages: bool = False
) -> Trace:
    """Merge concurrent traces on one timeline.

    Unless ``shared_pages`` is set, tenant ``i``'s pages are shifted past
    every earlier tenant's footprint, so the merged workload's data set
    is the union of disjoint per-tenant data sets -- the multi-tenant
    cache-contention scenario.
    """
    traces = list(traces)
    if not traces:
        raise TraceError("nothing to interleave")
    if any(trace.num_accesses == 0 for trace in traces):
        raise TraceError("cannot interleave an empty trace")
    page_size = _common_page_size(traces)

    shifted_pages = []
    offset = 0
    for trace in traces:
        if shared_pages:
            shifted_pages.append(trace.pages)
        else:
            shifted_pages.append(trace.pages + offset)
            offset += int(trace.pages.max()) + 1
    times = np.concatenate([trace.times for trace in traces])
    pages = np.concatenate(shifted_pages)
    writes = _writes_or_none(traces)

    order = np.argsort(times, kind="stable")
    return Trace(
        times=times[order],
        pages=pages[order],
        page_size=page_size,
        writes=None if writes is None else writes[order],
        meta={
            "composed": "interleave",
            "parts": len(traces),
            "shared_pages": shared_pages,
        },
    )
