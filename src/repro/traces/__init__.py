"""Workload traces: generation, transformation and inspection.

The paper collects disk-cache access traces from SPECWeb99 on a real web
server, then feeds them through a *synthesizer* that varies three
characteristics independently: data-set size, data rate and popularity
(Section V-A, Fig. 6).  This package provides:

* :mod:`repro.traces.fileset` -- a SPECWeb99-class file population,
* :mod:`repro.traces.specweb` -- the trace generator,
* :mod:`repro.traces.synthesizer` -- the paper's three transforms,
* :mod:`repro.traces.trace` -- the trace container and its statistics,
* :mod:`repro.traces.trace_io` -- persistence.
"""

from repro.traces import suites
from repro.traces.arrivals import bmodel_arrivals, gap_tail_weight, poisson_arrivals
from repro.traces.block_trace import from_requests, load_block_csv
from repro.traces.characterize import TraceProfile, characterize
from repro.traces.compose import concatenate, interleave
from repro.traces.fileset import FileSet, specweb_fileset
from repro.traces.modulation import diurnal_profile, modulate_rate, onoff_profile
from repro.traces.specweb import SpecWebGenerator, generate_trace
from repro.traces.synthesizer import (
    densify_popularity,
    scale_data_rate,
    scale_dataset,
)
from repro.traces.trace import Trace
from repro.traces.zipf import ZipfSampler, calibrate_exponent, popularity_ratio

__all__ = [
    "FileSet",
    "TraceProfile",
    "bmodel_arrivals",
    "gap_tail_weight",
    "poisson_arrivals",
    "characterize",
    "concatenate",
    "interleave",
    "diurnal_profile",
    "from_requests",
    "load_block_csv",
    "modulate_rate",
    "onoff_profile",
    "suites",
    "SpecWebGenerator",
    "Trace",
    "ZipfSampler",
    "calibrate_exponent",
    "densify_popularity",
    "generate_trace",
    "popularity_ratio",
    "scale_data_rate",
    "scale_dataset",
    "specweb_fileset",
]
