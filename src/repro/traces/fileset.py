"""SPECWeb99-class file population.

SPECWeb99 organises its document tree into directories each holding four
file classes; requests hit class 0 (smallest files) 35 % of the time,
class 1 50 %, class 2 14 % and class 3 1 %.  We reproduce the size mix --
what matters to the disk cache is the distribution of *file sizes* and the
mapping from files to on-disk page ranges.

Every file occupies a contiguous run of page numbers, so sequential reads
of one file produce sequential disk requests (which the read-ahead
clustering in :mod:`repro.cache.readahead` merges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import TraceError
from repro.units import KB, PAGE_SIZE

#: SPECWeb99 file classes: (low size, high size, request fraction).
SPECWEB_CLASSES: Tuple[Tuple[float, float, float], ...] = (
    (0.1 * KB, 0.9 * KB, 0.35),
    (1.0 * KB, 9.0 * KB, 0.50),
    (10.0 * KB, 90.0 * KB, 0.14),
    (100.0 * KB, 900.0 * KB, 0.01),
)


@dataclass(frozen=True)
class FileSet:
    """A population of files laid out contiguously on disk.

    ``sizes_bytes[i]`` is the byte size of file ``i`` and
    ``first_page[i]`` the page number of its first page; pages
    ``first_page[i] .. first_page[i] + num_pages[i] - 1`` belong to it.
    Files are indexed in *popularity rank order*: file 0 is the hottest.
    """

    sizes_bytes: np.ndarray
    page_size: int = PAGE_SIZE

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes_bytes, dtype=np.int64)
        if sizes.size == 0:
            raise TraceError("a file set needs at least one file")
        if np.any(sizes <= 0):
            raise TraceError("file sizes must be positive")
        if self.page_size <= 0:
            raise TraceError("page size must be positive")
        object.__setattr__(self, "sizes_bytes", sizes)
        num_pages = -(-sizes // self.page_size)
        first_page = np.concatenate(([0], np.cumsum(num_pages)[:-1]))
        object.__setattr__(self, "_num_pages", num_pages)
        object.__setattr__(self, "_first_page", first_page)

    @property
    def num_files(self) -> int:
        return int(self.sizes_bytes.size)

    @property
    def num_pages(self) -> np.ndarray:
        """Pages occupied by each file."""
        return self._num_pages

    @property
    def first_page(self) -> np.ndarray:
        """First page number of each file."""
        return self._first_page

    @property
    def total_bytes(self) -> int:
        """Data-set size in bytes."""
        return int(self.sizes_bytes.sum())

    @property
    def total_pages(self) -> int:
        """Data-set size in pages."""
        return int(self._num_pages.sum())

    @property
    def mean_file_bytes(self) -> float:
        return float(self.sizes_bytes.mean())

    def file_of_page(self, page: int) -> int:
        """Index of the file owning ``page``."""
        if page < 0 or page >= self.total_pages:
            raise TraceError(f"page {page} outside the data set")
        return int(np.searchsorted(self._first_page, page, side="right") - 1)


def specweb_fileset(
    total_bytes: float,
    page_size: int = PAGE_SIZE,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = True,
    file_scale: float = 1.0,
) -> FileSet:
    """Build a file set of roughly ``total_bytes`` with SPECWeb99's size mix.

    File sizes are drawn log-uniformly within each class, classes weighted
    by their request fractions.  Files are generated until the target size
    is reached, then shuffled (unless ``shuffle=False``) so that popularity
    rank is independent of file size, matching SPECWeb99 where each
    directory is equally likely to hold hot files of every class.

    ``file_scale`` multiplies every class's size bounds; granularity-scaled
    experiments pass ``MachineConfig.scale`` so the file-size-to-page-size
    ratio matches the paper's (see DESIGN.md Section 5).
    """
    if total_bytes <= 0:
        raise TraceError("data-set size must be positive")
    if file_scale <= 0:
        raise TraceError("file scale must be positive")
    if rng is None:
        rng = np.random.default_rng()

    fractions = np.array([c[2] for c in SPECWEB_CLASSES])
    lows = np.array([c[0] for c in SPECWEB_CLASSES]) * file_scale
    highs = np.array([c[1] for c in SPECWEB_CLASSES]) * file_scale
    mean_size = float((fractions * (lows + highs) / 2.0).sum())
    # Generate in batches until the population is large enough.
    estimated = max(int(total_bytes / mean_size * 1.2), 16)
    sizes = []
    accumulated = 0.0
    while accumulated < total_bytes:
        classes = rng.choice(len(SPECWEB_CLASSES), size=estimated, p=fractions)
        log_low = np.log(lows[classes])
        log_high = np.log(highs[classes])
        batch = np.exp(rng.uniform(log_low, log_high))
        batch = np.maximum(batch.astype(np.int64), 1)
        for size in batch:
            sizes.append(int(size))
            accumulated += float(size)
            if accumulated >= total_bytes:
                break
    sizes_array = np.asarray(sizes, dtype=np.int64)
    if shuffle:
        rng.shuffle(sizes_array)
    return FileSet(sizes_bytes=sizes_array, page_size=page_size)
