"""Arrival processes: Poisson and self-similar (b-model) request streams.

The paper's Pareto idle-time assumption comes from measured traces with
*heavy-tailed, bursty* arrivals (Vogels' NT file systems [20], Ruemmler &
Wilkes' UNIX disks [21]).  A plain Poisson process -- the default of the
SPECWeb-style generator -- has exponential gaps and systematically
under-weights long idle periods, which is exactly where the
method-of-moments fit struggles (see the ``idlefit`` experiment).

``bmodel_arrivals`` generates the classic *b-model* (biased multiplicative
cascade): total traffic is recursively split between the halves of the
interval with ratio ``bias : 1-bias``.  The result is self-similar across
scales; burstiness grows with ``bias`` (0.5 = smooth, ~0.7-0.8 = realistic
storage traffic).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import TraceError


def poisson_arrivals(
    rate_per_s: float,
    duration_s: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Homogeneous Poisson arrival times over ``[0, duration_s)``."""
    if rate_per_s <= 0 or duration_s <= 0:
        raise TraceError("rate and duration must be positive")
    if rng is None:
        rng = np.random.default_rng()
    expected = rate_per_s * duration_s
    count = max(int(expected * 1.2) + 8, 8)
    gaps = rng.exponential(1.0 / rate_per_s, size=count)
    arrivals = np.cumsum(gaps)
    return arrivals[arrivals < duration_s]


def bmodel_arrivals(
    rate_per_s: float,
    duration_s: float,
    bias: float = 0.75,
    rng: Optional[np.random.Generator] = None,
    levels: int = 14,
) -> np.ndarray:
    """Self-similar arrival times via the b-model cascade.

    ``bias`` in [0.5, 1): the fraction of an interval's traffic assigned
    to its (randomly chosen) favoured half at each of ``levels``
    recursive splits.  0.5 degenerates to (near-)uniform traffic; larger
    values concentrate the same total arrivals into ever-burstier
    clumps, producing heavy-tailed gaps between bursts.
    """
    if rate_per_s <= 0 or duration_s <= 0:
        raise TraceError("rate and duration must be positive")
    if not 0.5 <= bias < 1.0:
        raise TraceError("bias must be in [0.5, 1)")
    if not 1 <= levels <= 24:
        raise TraceError("levels must be in [1, 24]")
    if rng is None:
        rng = np.random.default_rng()

    bins = 1 << levels
    weights = np.ones(1, dtype=float)
    for _ in range(levels):
        flips = rng.random(weights.size) < 0.5
        left = np.where(flips, bias, 1.0 - bias)
        pair = np.empty(weights.size * 2, dtype=float)
        pair[0::2] = weights * left
        pair[1::2] = weights * (1.0 - left)
        weights = pair

    total = int(round(rate_per_s * duration_s))
    if total <= 0:
        raise TraceError("duration too short for the rate")
    counts = rng.multinomial(total, weights)
    bin_width = duration_s / bins
    starts = np.repeat(np.arange(bins) * bin_width, counts)
    jitter = rng.random(total) * bin_width
    arrivals = np.sort(starts + jitter)
    return arrivals[arrivals < duration_s]


def gap_tail_weight(arrivals: np.ndarray, quantile: float = 0.99) -> float:
    """Heavy-tail indicator: top-quantile gap over the median gap.

    Poisson streams land around ``log(1/(1-q)) / log(2)`` (≈6.6 at the
    99th percentile); self-similar streams score far higher.
    """
    if arrivals.size < 10:
        raise TraceError("need at least ten arrivals")
    gaps = np.diff(np.sort(arrivals))
    gaps = gaps[gaps > 0]
    if gaps.size < 5:
        raise TraceError("not enough distinct gaps")
    median = float(np.median(gaps))
    top = float(np.quantile(gaps, quantile))
    return top / max(median, 1e-12)
