"""Offline optimality oracles: Belady under dynamic capacity, clairvoyant disk.

The joint manager (paper Section IV) picks a memory size and a disk
timeout per period and hopes the pair lands near the best achievable
energy.  This module computes what *offline* knowledge would have done
with the same recorded schedule, so every run can report its regret:

* :func:`opt_replay` -- Belady/OPT paging under a *dynamic capacity
  schedule*: evict the page whose next use lies farthest in the future,
  re-clamping the resident set with the same rule whenever a period
  boundary shrinks the cache (Peserico, "Paging with dynamic memory
  capacity" -- the farthest-future rule stays optimal when the adversary
  controls the capacity curve).  The pass is vectorized in the same
  style as :class:`repro.cache.profile.TraceProfile`: next-use indices
  come from one ``lexsort`` and evictions go through a lazy max-heap, so
  paper-scale traces replay in O(n log n).
* :func:`naive_opt_replay` -- the obviously-correct twin: a linear
  forward scan per eviction, written independently so the differential
  check (:func:`check_optimal`, registered as ``CHECKS["optimal"]``) can
  catch bugs in either.
* :func:`offline_spin_decisions` / :func:`offline_disk_energy` -- the
  clairvoyant disk schedule over recorded idle intervals: spin down iff
  the gap exceeds the break-even time.  Must agree with
  :func:`repro.stats.competitive.offline_optimal_energy`, which is the
  independent implementation the differential check compares against.

OPT here is the classic demand-paging optimum (a missed page must be
loaded; no bypassing), which every online policy in this repo also obeys
-- so ``OPT misses <= online misses`` holds access-for-access, and the
regret reported by :mod:`repro.analysis.regret` is guaranteed
non-negative.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.config.disk_spec import DiskSpec
from repro.errors import SimulationError

#: An epoch of the capacity schedule: accesses ``[lo, hi)`` replay at a
#: fixed capacity of ``capacity_pages``.
Epoch = Tuple[int, int, int]


def compute_next_use(pages: np.ndarray) -> np.ndarray:
    """Index of each access's *next* access to the same page (``n`` = never).

    One stable ``lexsort`` pass, no Python loop: consecutive entries of
    the (page, index)-sorted order with equal pages are successive
    accesses of that page.
    """
    pages = np.ascontiguousarray(pages, dtype=np.int64)
    n = int(pages.size)
    out = np.full(n, n, dtype=np.int64)
    if n == 0:
        return out
    order = np.lexsort((np.arange(n), pages))
    sorted_pages = pages[order]
    same = sorted_pages[:-1] == sorted_pages[1:]
    out[order[:-1][same]] = order[1:][same]
    return out


def evict_key(next_use: int, page: int) -> Tuple[int, int]:
    """Heap key of one resident page: pop order = eviction order.

    Belady's rule: evict the page whose next use is farthest in the
    future; ties (only possible between never-again pages) break toward
    the smallest page id so the fast and naive replays stay comparable
    set-for-set.  Module-level on purpose -- the mutation tests
    monkeypatch this to plant a tie-break bug and assert
    ``CHECKS["optimal"]`` catches it.
    """
    return (-next_use, page)


@dataclass(frozen=True)
class OptReplay:
    """Outcome of one offline-optimal replay over a capacity schedule."""

    #: Per-access miss flags (True = OPT also missed).
    miss_flags: np.ndarray
    #: Total OPT misses (mandatory loads included).
    misses: int
    #: Pages resident when the replay ended.
    final_resident: frozenset

    @property
    def hits(self) -> int:
        return int(self.miss_flags.size) - self.misses


def opt_replay(
    pages: np.ndarray,
    epochs: Sequence[Epoch],
    initial_resident: Iterable[int] = (),
    next_use: Optional[np.ndarray] = None,
) -> OptReplay:
    """Belady/OPT misses of ``pages`` under the capacity schedule ``epochs``.

    ``initial_resident`` seeds the cache (the warm-start prefill of the
    online run being compared), so OPT starts from the same state and
    the ``OPT <= online`` invariant holds.  Pass a precomputed
    ``next_use`` (from :func:`compute_next_use`) to amortize it across
    capacities.
    """
    pages = np.ascontiguousarray(pages, dtype=np.int64)
    n = int(pages.size)
    if next_use is None:
        next_use = compute_next_use(pages)
    _validate_epochs(epochs, n)

    # Dense page ids (one np.unique pass) so the hot hit path is a single
    # list index; pages only in the prefill get synthetic ids past the end.
    uniq, inverse = np.unique(pages, return_inverse=True)
    inverse_list = inverse.tolist()
    next_use_list = np.asarray(next_use, dtype=np.int64).tolist()
    page_of = uniq.tolist()
    # nu_of[pid]: index of the page's next access while resident, -1 when
    # not resident.  A heap entry (key, pid, nu) is live iff
    # nu_of[pid] == nu; every access refreshes its page's entry, so the
    # live entry always carries the true next use (stale ones are always
    # nearer-future, get popped first, and fail the liveness test).
    NOT_RESIDENT = -1
    nu_of = [NOT_RESIDENT] * len(page_of)
    count = 0
    heap: List[Tuple[Tuple[int, int], int, int]] = []

    def evict() -> None:
        while heap:
            _, pid, nu = heapq.heappop(heap)
            if nu_of[pid] == nu:
                nu_of[pid] = NOT_RESIDENT
                return
        raise SimulationError("OPT replay asked to evict from an empty cache")

    if initial_resident:
        first_idx = np.full(uniq.size, n, dtype=np.int64)
        pids, firsts = np.unique(inverse, return_index=True)
        first_idx[pids] = firsts
        seen = set()
        for page in initial_resident:
            page = int(page)
            if page in seen:
                continue
            seen.add(page)
            slot = int(np.searchsorted(uniq, page))
            if slot < uniq.size and int(uniq[slot]) == page:
                pid, nu = slot, int(first_idx[slot])
            else:
                pid, nu = len(page_of), n
                page_of.append(page)
                nu_of.append(NOT_RESIDENT)
            nu_of[pid] = nu
            count += 1
            heapq.heappush(heap, (evict_key(nu, page), pid, nu))

    flags = np.zeros(n, dtype=bool)
    for lo, hi, capacity in epochs:
        while count > capacity:
            evict()
            count -= 1
        for i in range(lo, hi):
            pid = inverse_list[i]
            nu = next_use_list[i]
            if nu_of[pid] != NOT_RESIDENT:
                nu_of[pid] = nu
                heapq.heappush(heap, (evict_key(nu, page_of[pid]), pid, nu))
                continue
            flags[i] = True
            if capacity <= 0:
                continue
            if count >= capacity:
                evict()
                count -= 1
            nu_of[pid] = nu
            count += 1
            heapq.heappush(heap, (evict_key(nu, page_of[pid]), pid, nu))
    return OptReplay(
        miss_flags=flags,
        misses=int(flags.sum()),
        final_resident=frozenset(
            page_of[pid] for pid, nu in enumerate(nu_of) if nu != NOT_RESIDENT
        ),
    )


def naive_opt_replay(
    pages: np.ndarray,
    epochs: Sequence[Epoch],
    initial_resident: Iterable[int] = (),
) -> OptReplay:
    """Brute-force twin of :func:`opt_replay`: linear scans, no heap.

    Independently re-derives everything -- next uses come from a forward
    scan at each eviction, the victim from an explicit max-over-residents
    -- so a bug in the fast path's bookkeeping cannot hide here too.
    """
    pages_list = [int(p) for p in np.asarray(pages).tolist()]
    n = len(pages_list)
    _validate_epochs(epochs, n)
    resident: List[int] = []
    for page in initial_resident:
        if int(page) not in resident:
            resident.append(int(page))

    def next_use_from(position: int, page: int) -> int:
        for j in range(position, n):
            if pages_list[j] == page:
                return j
        return n

    def evict(position: int) -> None:
        farthest = max(
            resident,
            key=lambda page: (next_use_from(position, page), -page),
        )
        resident.remove(farthest)

    flags = np.zeros(n, dtype=bool)
    for lo, hi, capacity in epochs:
        while len(resident) > capacity:
            evict(lo)
        for i in range(lo, hi):
            page = pages_list[i]
            if page in resident:
                continue
            flags[i] = True
            if capacity <= 0:
                continue
            if len(resident) >= capacity:
                evict(i + 1)
            resident.append(page)
    return OptReplay(
        miss_flags=flags,
        misses=int(flags.sum()),
        final_resident=frozenset(resident),
    )


def _validate_epochs(epochs: Sequence[Epoch], n: int) -> None:
    prev_hi = 0
    for lo, hi, capacity in epochs:
        if lo != prev_hi or hi < lo or capacity < 0:
            raise SimulationError(
                f"epochs must tile [0, {n}) in order with non-negative "
                f"capacities; got ({lo}, {hi}, {capacity}) after {prev_hi}"
            )
        prev_hi = hi
    if epochs and prev_hi != n:
        raise SimulationError(
            f"epochs cover [0, {prev_hi}) but the trace has {n} accesses"
        )
    if not epochs and n > 0:
        raise SimulationError("a non-empty trace needs at least one epoch")


# --- the clairvoyant disk schedule --------------------------------------------


def offline_spin_decisions(
    lengths: np.ndarray, break_even_s: float
) -> np.ndarray:
    """Per-interval offline choice: True = spin down for this idle gap.

    The clairvoyant rule is a pure threshold -- spin down exactly when
    the gap outlasts the break-even time (at ``l == t_be`` both choices
    cost the same; we stay up).  Module-level on purpose: the mutation
    tests monkeypatch the threshold and assert ``CHECKS["optimal"]``
    notices the energy disagreeing with
    :func:`repro.stats.competitive.offline_optimal_energy`.
    """
    lengths = np.asarray(lengths, dtype=np.float64)
    return lengths > break_even_s


def offline_disk_energy(
    lengths: np.ndarray, spec: Optional[DiskSpec] = None
) -> float:
    """Static + transition joules of the clairvoyant schedule.

    Per interval of length ``l``: stay up (``p_s * l``) or pay one
    round trip (``p_s * t_be``), whichever :func:`offline_spin_decisions`
    picked.  With the true threshold this equals
    ``p_s * sum(min(l, t_be))`` -- the closed form
    :func:`repro.stats.competitive.offline_optimal_energy` computes
    independently.
    """
    spec = spec or DiskSpec()
    lengths = np.asarray(lengths, dtype=np.float64)
    if lengths.size and float(lengths.min()) < 0.0:
        raise SimulationError("idle intervals must be non-negative")
    t_be = spec.break_even_time_s
    spin = offline_spin_decisions(lengths, t_be)
    seconds = np.where(spin, t_be, lengths)
    return float(spec.static_power_watts * seconds.sum())


# --- the differential check ---------------------------------------------------

#: Fixed capacities (pages) the check sweeps; matches the predictor
#: check's Fibonacci ladder so known-adversarial patterns transfer.
OPTIMAL_CAPACITIES = (0, 1, 2, 3, 5, 8, 13, 21)


def check_optimal(case) -> Optional[str]:
    """``CHECKS["optimal"]``: the oracle is self-consistent and one-sided.

    Five invariants per fuzzed case:

    1. fast vs naive Belady agree access-for-access *and* on the final
       resident set (miss flags alone cannot see a tie-break bug:
       next-use ties only arise between never-again pages, which never
       influence a future hit -- the resident set is where such a bug
       surfaces);
    2. OPT misses are monotonically non-increasing in capacity;
    3. OPT <= LRU at every fixed capacity (Mattson distances);
    4. OPT <= the online epoch kernel under a random dynamic capacity
       schedule with the kernel's own boundary re-clamp semantics;
    5. the clairvoyant disk energy equals the independent closed form
       and lower-bounds every fixed-timeout policy on the same
       intervals.
    """
    from repro.cache.stack_distance import COLD, StackDistanceTracker
    from repro.sim.kernels import _epoch_misses
    from repro.stats import competitive
    from repro.stats.intervals import extract_idle_intervals
    from repro.verify.strategies import random_small_machine

    pages = np.ascontiguousarray(case.pages, dtype=np.int64)
    n = int(pages.size)
    next_use = compute_next_use(pages)
    tracker = StackDistanceTracker(initial_capacity=8)
    depths = np.asarray([tracker.access(int(p)) for p in pages.tolist()])

    # (1)-(3): fixed capacities.
    previous = None
    for capacity in OPTIMAL_CAPACITIES:
        epochs = [(0, n, capacity)] if n else []
        fast = opt_replay(pages, epochs, next_use=next_use)
        slow = naive_opt_replay(pages, epochs)
        detail = _compare_replays(fast, slow, f"capacity {capacity}")
        if detail is not None:
            return detail
        lru = int(((depths == COLD) | (depths >= capacity)).sum()) if n else 0
        if fast.misses > lru:
            return (
                f"capacity {capacity}: OPT missed {fast.misses} times, "
                f"LRU only {lru}"
            )
        if previous is not None and fast.misses > previous:
            return (
                f"capacity {capacity}: OPT misses rose to {fast.misses} "
                f"from {previous} at the next-smaller capacity"
            )
        previous = fast.misses

    # (4): a random dynamic schedule, against the epoch kernel's replay.
    if n:
        rng = np.random.default_rng(case.seed ^ 0x0B71)
        num_epochs = int(rng.integers(2, 5))
        cuts = sorted(int(rng.integers(0, n + 1)) for _ in range(num_epochs - 1))
        bounds = [0] + cuts + [n]
        epochs = [
            (bounds[k], bounds[k + 1], int(rng.integers(0, 22)))
            for k in range(num_epochs)
        ]
        fast = opt_replay(pages, epochs, next_use=next_use)
        slow = naive_opt_replay(pages, epochs)
        detail = _compare_replays(fast, slow, f"schedule {epochs}")
        if detail is not None:
            return detail
        online = 0
        resident = 0
        for lo, hi, capacity in epochs:
            resident = min(resident, capacity)
            miss_idx, resident = _epoch_misses(depths, lo, hi, resident, capacity)
            online += int(miss_idx.size)
        if fast.misses > online:
            return (
                f"schedule {epochs}: OPT missed {fast.misses} times, the "
                f"online epoch replay only {online}"
            )

    # (5): the disk axis on this case's idle intervals.
    disk = random_small_machine(case.seed).disk
    idle = extract_idle_intervals(
        case.times.tolist(),
        case.window_s,
        period_start=0.0,
        period_end=case.period_s,
    )
    ours = offline_disk_energy(idle.lengths, disk)
    reference = competitive.offline_optimal_energy(idle.lengths.tolist(), disk)
    if not math.isclose(ours, reference, rel_tol=1e-9, abs_tol=1e-9):
        return (
            f"clairvoyant disk energy {ours} J != competitive-analysis "
            f"closed form {reference} J"
        )
    t_be = disk.break_even_time_s
    for timeout in (0.0, t_be, 3.0 * t_be, math.inf):
        online_j = competitive.timeout_policy_energy(
            idle.lengths.tolist(), timeout, disk
        )
        if ours > online_j + max(abs(online_j) * 1e-9, 1e-9):
            return (
                f"clairvoyant disk energy {ours} J exceeds the timeout "
                f"{timeout}s policy's {online_j} J"
            )
    return None


def _compare_replays(fast: OptReplay, slow: OptReplay, where: str) -> Optional[str]:
    if not np.array_equal(fast.miss_flags, slow.miss_flags):
        first = int(np.flatnonzero(fast.miss_flags != slow.miss_flags)[0])
        return (
            f"{where}: miss flags diverge at access {first} "
            f"(fast {bool(fast.miss_flags[first])}, naive "
            f"{bool(slow.miss_flags[first])})"
        )
    if fast.final_resident != slow.final_resident:
        return (
            f"{where}: final resident sets differ: fast "
            f"{sorted(fast.final_resident)} != naive "
            f"{sorted(slow.final_resident)}"
        )
    return None
