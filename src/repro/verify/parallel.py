"""Differential verification through the campaign executor.

:func:`repro.verify.differential.run_differential` walks its seed range
serially inside one process.  The seeds are independent by construction
-- each expands deterministically into its own fuzzed workload -- so the
range chunks cleanly into :class:`repro.verify` campaign tasks: one
:class:`~repro.campaign.tasks.VerifyTask` per (check, seed chunk), fanned
out over a process pool and cached like any other campaign work.

The merged :class:`~repro.verify.differential.VerifyReport` is the one
the serial runner would have produced: chunks run to completion even
when an earlier chunk diverges, but only the earliest divergence (in
seed order) is reported, and ``seeds_run`` counts up to it exactly as
the serial early-exit would have.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.campaign.cache import ResultCache
from repro.campaign.executor import run_campaign
from repro.campaign.tasks import VerifyTask
from repro.errors import SimulationError
from repro.verify.differential import (
    CHECKS,
    CheckOutcome,
    Divergence,
    VerifyReport,
)


def chunk_seeds(seeds: int, jobs: int, chunk: Optional[int] = None) -> List[int]:
    """Split ``seeds`` into contiguous chunk sizes.

    Small enough that every worker gets several (so one slow chunk does
    not serialise the run), large enough that per-task overhead stays
    negligible; an explicit ``chunk`` overrides the heuristic.
    """
    if chunk is None:
        chunk = max(1, math.ceil(seeds / (max(jobs, 1) * 4)))
    if chunk <= 0:
        raise SimulationError("chunk size must be positive")
    sizes = []
    remaining = seeds
    while remaining > 0:
        size = min(chunk, remaining)
        sizes.append(size)
        remaining -= size
    return sizes


def _divergence_from_payload(payload: dict) -> Divergence:
    return Divergence(
        check=payload["check"],
        seed=payload["seed"],
        pattern=payload["pattern"],
        detail=payload["detail"],
        times=tuple(payload["times"]),
        pages=tuple(payload["pages"]),
        window_s=payload["window_s"],
        period_s=payload["period_s"],
    )


def run_differential_campaign(
    seeds: int = 50,
    checks: Optional[Sequence[str]] = None,
    first_seed: int = 0,
    max_accesses: int = 300,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    chunk: Optional[int] = None,
) -> VerifyReport:
    """Run the differential checks over chunked seed ranges.

    Equivalent to :func:`~repro.verify.differential.run_differential`
    (same report, same divergences, same ``seeds_run`` accounting), but
    each (check, chunk) is an independent campaign task: ``jobs > 1``
    runs them on a process pool and ``cache`` skips chunks whose code
    and parameters have not changed since the last run.
    """
    if seeds <= 0:
        raise SimulationError("need at least one seed")
    names = list(CHECKS) if checks is None else list(checks)
    for name in names:
        if name not in CHECKS:
            raise SimulationError(
                f"unknown check {name!r}; available: {', '.join(CHECKS)}"
            )

    tasks: List[VerifyTask] = []
    for name in names:
        start = first_seed
        for size in chunk_seeds(seeds, jobs, chunk):
            tasks.append(
                VerifyTask(
                    check=name,
                    first_seed=start,
                    seeds=size,
                    max_accesses=max_accesses,
                )
            )
            start += size

    report = run_campaign(tasks, jobs=max(jobs, 1), cache=cache)
    failed = report.failures()
    if failed:
        first = failed[0]
        raise SimulationError(
            f"verify campaign: {len(failed)} task(s) failed; first: "
            f"{first.label}: {first.error}"
        )

    by_check = {name: [] for name in names}
    for payload in report.payloads():
        by_check[payload["check"]].append(payload)

    merged = VerifyReport(first_seed=first_seed, seeds=seeds)
    for name in names:
        chunks = sorted(by_check[name], key=lambda p: p["first_seed"])
        outcome = CheckOutcome(name=name, seeds_run=seeds)
        for part in chunks:
            if part["divergence"] is not None:
                # seeds_run counts from the check's first seed up to and
                # including the diverging one, as the serial runner's
                # early exit would have.
                seeds_run = (
                    part["first_seed"] - first_seed + part["seeds_run"]
                )
                outcome = CheckOutcome(
                    name=name,
                    seeds_run=seeds_run,
                    divergence=_divergence_from_payload(part["divergence"]),
                )
                break
        merged.outcomes.append(outcome)
    return merged
