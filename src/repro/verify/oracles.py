"""Brute-force reference oracles for the fast paths.

Every clever data structure in this reproduction has a slow,
obviously-correct twin here:

* :func:`naive_stack_distances` / :func:`naive_lru_miss_times` -- an
  explicit LRU stack and a literal per-size LRU cache, against which the
  Fenwick-tree :class:`~repro.cache.stack_distance.StackDistanceTracker`
  and the one-pass :class:`~repro.cache.predictor.ResizePredictor` are
  differentially tested (Mattson inclusion property).
* :func:`naive_idle_intervals` -- a plain-loop reimplementation of the
  aggregation-window filter in :mod:`repro.stats.intervals`.
* :func:`numeric_expected_off_time` / :func:`numeric_expected_spin_downs`
  / :func:`numeric_expected_power` -- the paper's eq. (2)-(4) evaluated by
  numerical integration of the Pareto density instead of the closed forms.
* :func:`grid_best_timeout` / :func:`oracle_select` -- an exhaustive
  ``(m, t_o)`` grid search the analytic eq. (5) optimum and the joint
  manager's candidate selection must match.
* :func:`integrate_disk_events` -- an event-by-event energy integrator
  that re-derives the drive's active/idle/standby/transition split from
  its state-transition log (:mod:`repro.disk.events`).

None of these are fast; all of them are meant to be *readable*.  The
differential runner (:mod:`repro.verify.differential`) replays fuzzed
inputs through fast path and oracle and reports the first divergence.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import integrate as scipy_integrate

from repro.cache.stack_distance import COLD
from repro.config.disk_spec import DiskSpec
from repro.core.energy_model import CandidateEvaluation
from repro.disk.events import CHECKPOINT, SPIN_DOWN, SUBMIT, DiskEvent
from repro.errors import SimulationError
from repro.stats.pareto import ParetoDistribution

# --- stack distances and per-size LRU ---------------------------------------


def naive_stack_distances(pages: Sequence[int]) -> List[int]:
    """Stack distance of every access, via an explicit MRU-first list.

    The reference for :class:`~repro.cache.stack_distance.StackDistanceTracker`:
    the distance is the number of distinct pages accessed since the
    previous access to the same page, or :data:`COLD` on first touch.
    """
    stack: List[int] = []  # most recently used first
    out: List[int] = []
    for page in pages:
        if page in stack:
            depth = stack.index(page)
            out.append(depth)
            stack.remove(page)
        else:
            out.append(COLD)
        stack.insert(0, page)
    return out


def naive_depth_histogram(pages: Sequence[int]) -> Tuple[int, Dict[int, int]]:
    """``(cold_misses, {depth: hits})`` from the explicit LRU stack."""
    cold = 0
    hist: Dict[int, int] = {}
    for depth in naive_stack_distances(pages):
        if depth == COLD:
            cold += 1
        else:
            hist[depth] = hist.get(depth, 0) + 1
    return cold, hist


def naive_lru_misses(pages: Sequence[int], capacity_pages: int) -> int:
    """Miss count of a literal LRU cache of ``capacity_pages`` pages.

    By the inclusion property this must equal ``cold + #{depth >= m}``;
    the differential runner checks both derivations against each other.
    """
    if capacity_pages < 0:
        raise SimulationError("capacity must be non-negative")
    if capacity_pages == 0:
        return len(pages)
    cache: "OrderedDict[int, None]" = OrderedDict()
    misses = 0
    for page in pages:
        if page in cache:
            cache.move_to_end(page)
        else:
            misses += 1
            if len(cache) >= capacity_pages:
                cache.popitem(last=False)
            cache[page] = None
    return misses


def naive_lru_miss_times(
    times: Sequence[float], pages: Sequence[int], capacity_pages: int
) -> List[float]:
    """Timestamps at which a literal ``m``-page LRU cache misses.

    The reference for :meth:`~repro.cache.predictor.ResizePredictor.predict`:
    the predicted disk-access stream at candidate size ``m``.
    """
    if len(times) != len(pages):
        raise SimulationError("times and pages must align")
    if capacity_pages < 0:
        raise SimulationError("capacity must be non-negative")
    cache: "OrderedDict[int, None]" = OrderedDict()
    out: List[float] = []
    for now, page in zip(times, pages):
        if capacity_pages > 0 and page in cache:
            cache.move_to_end(page)
            continue
        out.append(float(now))
        if capacity_pages == 0:
            continue
        if len(cache) >= capacity_pages:
            cache.popitem(last=False)
        cache[page] = None
    return out


# --- idle intervals ----------------------------------------------------------


def naive_idle_intervals(
    access_times: Sequence[float],
    window_s: float,
    period_start: Optional[float] = None,
    period_end: Optional[float] = None,
) -> List[float]:
    """Aggregation-window-filtered idle intervals, one gap at a time.

    The reference for :func:`repro.stats.intervals.extract_idle_intervals`:
    walk consecutive accesses, include the leading/trailing gaps to the
    period boundaries when given, keep gaps ``>= window_s`` (and ``> 0``).
    """
    if window_s < 0:
        raise SimulationError("aggregation window must be non-negative")
    times = [float(t) for t in access_times]
    for earlier, later in zip(times, times[1:]):
        if later < earlier:
            raise SimulationError("disk access times must be non-decreasing")
    gaps: List[float] = []
    if times:
        if period_start is not None:
            gaps.append(times[0] - period_start)
        for earlier, later in zip(times, times[1:]):
            gaps.append(later - earlier)
        if period_end is not None:
            gaps.append(period_end - times[-1])
    elif period_start is not None and period_end is not None:
        gaps.append(period_end - period_start)
    return [g for g in gaps if g >= window_s and g > 0.0]


# --- eq. (2)-(4) by numerical integration ------------------------------------

#: Below this shape the Pareto integrals become numerically fragile (the
#: mean barely exists); the numeric oracles refuse rather than mislead.
NUMERIC_ALPHA_MIN = 1.05


def _check_numeric_dist(dist: ParetoDistribution) -> None:
    if dist.alpha < NUMERIC_ALPHA_MIN:
        raise SimulationError(
            f"numeric Pareto oracle needs alpha >= {NUMERIC_ALPHA_MIN}, "
            f"got {dist.alpha}"
        )


def numeric_expected_off_time(
    dist: ParetoDistribution, num_intervals: float, timeout_s: float
) -> float:
    """Paper eq. (2) as ``n_i * integral (l - t_o) f(l) dl``, numerically."""
    _check_numeric_dist(dist)
    t_o = max(timeout_s, dist.beta)
    # Pure relative tolerance: tail integrals can be ~1e-9 and the default
    # absolute tolerance would swamp them.  Near the fragile-alpha floor
    # the tail decays like l^{-alpha} and the default 50-subdivision cap
    # stalls around 1e-4 relative error (e.g. alpha=1.1, t_o ~ 360);
    # 500 subdivisions converge below 1e-10 across the admissible range.
    value, _ = scipy_integrate.quad(
        lambda length: (length - t_o) * dist.pdf(length),
        t_o,
        math.inf,
        epsabs=0.0,
        epsrel=1e-10,
        limit=500,
    )
    return num_intervals * value


def numeric_expected_spin_downs(
    dist: ParetoDistribution, num_intervals: float, timeout_s: float
) -> float:
    """Paper eq. (3) as ``n_i * integral f(l) dl`` past the timeout."""
    _check_numeric_dist(dist)
    t_o = max(timeout_s, dist.beta)
    value, _ = scipy_integrate.quad(
        lambda length: dist.pdf(length),
        t_o,
        math.inf,
        epsabs=0.0,
        epsrel=1e-10,
        limit=500,
    )
    return num_intervals * value


def numeric_expected_power(
    dist: ParetoDistribution,
    num_intervals: float,
    timeout_s: float,
    period_s: float,
    static_power_w: float,
    break_even_s: float,
) -> float:
    """Paper eq. (4) built from the numeric eq. (2)/(3) integrals.

    Applies the same ``t_s <= T`` cap as the fast closed form in
    :func:`repro.stats.timeout_math.expected_power`.
    """
    if period_s <= 0:
        raise SimulationError("period must be positive")
    t_s = min(numeric_expected_off_time(dist, num_intervals, timeout_s), period_s)
    h = numeric_expected_spin_downs(dist, num_intervals, timeout_s)
    return (
        static_power_w * (period_s - t_s) / period_s
        + static_power_w * break_even_s * h / period_s
    )


def unclamped_expected_power(
    dist: ParetoDistribution,
    num_intervals: float,
    timeout_s: float,
    period_s: float,
    static_power_w: float,
    break_even_s: float,
) -> float:
    """Closed-form eq. (4) without the ``t_s <= T`` cap.

    The eq. (5) optimum ``t_o = alpha * t_be`` is the exact minimiser of
    *this* function; the grid search below checks that calculus.
    """
    t_o = max(timeout_s, dist.beta)
    if dist.alpha <= 1.0:
        return -math.inf
    t_s = (
        num_intervals
        * (dist.beta / t_o) ** (dist.alpha - 1.0)
        * dist.beta
        / (dist.alpha - 1.0)
    )
    h = num_intervals * (dist.beta / t_o) ** dist.alpha
    return (
        static_power_w * (period_s - t_s) / period_s
        + static_power_w * break_even_s * h / period_s
    )


def grid_best_timeout(
    dist: ParetoDistribution,
    num_intervals: float,
    period_s: float,
    static_power_w: float,
    break_even_s: float,
    grid_points: int = 400,
    max_timeout_factor: float = 200.0,
) -> Tuple[float, float]:
    """``(timeout, power)`` minimising un-capped eq. (4) over a dense grid.

    The grid is log-spaced over ``[beta, max_timeout_factor * t_be]``;
    eq. (5)'s ``alpha * t_be`` must achieve a power no worse than the grid
    minimum (up to grid resolution).
    """
    if grid_points < 2:
        raise SimulationError("need at least two grid points")
    low = dist.beta
    high = max(max_timeout_factor * break_even_s, low * 2.0)
    grid = np.geomspace(low, high, grid_points)
    powers = [
        unclamped_expected_power(
            dist, num_intervals, t, period_s, static_power_w, break_even_s
        )
        for t in grid
    ]
    best = int(np.argmin(powers))
    return float(grid[best]), float(powers[best])


def delayed_ratio(
    dist: ParetoDistribution,
    num_intervals: float,
    num_disk_accesses: float,
    num_cache_accesses: float,
    period_s: float,
    timeout_s: float,
    transition_time_s: float,
    long_latency_threshold_s: float = 0.5,
) -> float:
    """Left-hand side of the paper's performance constraint, eq. (6).

    The expected fraction of disk-cache accesses delayed beyond the
    threshold by wake-ups: ``h * (t_tr - 0.5) * n_d / (T * N)``.
    """
    if num_cache_accesses <= 0 or period_s <= 0:
        return 0.0
    delay_window = max(transition_time_s - long_latency_threshold_s, 0.0)
    h = num_intervals * (dist.beta / max(timeout_s, dist.beta)) ** dist.alpha
    return h * delay_window * num_disk_accesses / (period_s * num_cache_accesses)


# --- candidate selection -------------------------------------------------------


def oracle_select(evaluations: Sequence[CandidateEvaluation]) -> CandidateEvaluation:
    """Exhaustive-scan reimplementation of the joint manager's selection.

    Semantics restated from scratch (paper Section IV-B plus the
    constrained variant): among feasible candidates take the lowest total
    power, breaking ties toward the smaller memory; when none is feasible,
    restrict to candidates within 5% (or 1e-4) of the lowest achievable
    utilisation and minimise power there.
    """
    if not evaluations:
        raise SimulationError("no candidates to select from")
    feasible = [e for e in evaluations if e.feasible]
    if feasible:
        best = feasible[0]
        for candidate in feasible[1:]:
            if candidate.total_power_w < best.total_power_w or (
                candidate.total_power_w == best.total_power_w
                and candidate.capacity_bytes < best.capacity_bytes
            ):
                best = candidate
        return best
    lowest = min(e.predicted_utilization for e in evaluations)
    tolerance = max(lowest * 0.05, 1e-4)
    near = [e for e in evaluations if e.predicted_utilization <= lowest + tolerance]
    best = near[0]
    for candidate in near[1:]:
        if candidate.total_power_w < best.total_power_w or (
            candidate.total_power_w == best.total_power_w
            and candidate.capacity_bytes < best.capacity_bytes
        ):
            best = candidate
    return best


# --- event-level disk energy ----------------------------------------------------


@dataclass
class IntegratedDiskEnergy:
    """Time/energy split re-derived from a drive's event log."""

    active_s: float = 0.0
    idle_s: float = 0.0
    standby_s: float = 0.0
    transition_s: float = 0.0
    spin_down_cycles: int = 0
    requests: int = 0

    @property
    def accounted_s(self) -> float:
        return self.active_s + self.idle_s + self.standby_s + self.transition_s

    def total_joules(self, spec: DiskSpec) -> float:
        return (
            self.active_s * spec.mode_power_watts["active"]
            + self.idle_s * spec.mode_power_watts["idle"]
            + self.standby_s * spec.mode_power_watts["standby"]
            + self.spin_down_cycles * spec.transition_energy_joules
        )


def integrate_disk_events(
    events: Sequence[DiskEvent], spec: DiskSpec
) -> IntegratedDiskEnergy:
    """Re-derive the drive's time split from its state-transition log.

    Walks the log once, maintaining only ``busy_until`` (end of queued
    work), the spun-down flag and the last passive checkpoint; every
    second of the timeline is assigned to exactly one bucket.  The result
    must agree with the drive's own incremental :class:`DiskEnergy`
    counters to float precision -- any disagreement means one of the two
    accountings dropped or double-counted time.
    """
    out = IntegratedDiskEnergy()
    busy_until = 0.0
    mark = 0.0  # passive time before this instant is already integrated
    spun_down = False
    spin_down_end = 0.0

    for event in events:
        if event.kind == SUBMIT:
            out.requests += 1
            if event.woke:
                if not spun_down:
                    raise SimulationError(
                        "log says a request woke a drive that was spinning"
                    )
                wake_start = event.start_s - spec.spin_up_time_s
                standby_from = max(spin_down_end, mark)
                if wake_start > standby_from:
                    out.standby_s += wake_start - standby_from
                out.transition_s += spec.spin_up_time_s
                spun_down = False
            else:
                if spun_down:
                    raise SimulationError(
                        "log says a spun-down drive served without waking"
                    )
                idle_from = max(busy_until, mark)
                if event.arrival_s > idle_from:
                    out.idle_s += event.arrival_s - idle_from
            out.active_s += event.service_s
            busy_until = event.finish_s
        elif event.kind == SPIN_DOWN:
            if spun_down:
                raise SimulationError("log spins down a drive twice in a row")
            idle_from = max(busy_until, mark)
            if event.time_s > idle_from:
                out.idle_s += event.time_s - idle_from
            out.transition_s += spec.spin_down_time_s
            out.spin_down_cycles += 1
            spun_down = True
            spin_down_end = event.time_s + spec.spin_down_time_s
        elif event.kind == CHECKPOINT:
            if spun_down:
                standby_from = max(spin_down_end, mark)
                if event.time_s > standby_from:
                    out.standby_s += event.time_s - standby_from
            else:
                idle_from = max(busy_until, mark)
                if event.time_s > idle_from:
                    out.idle_s += event.time_s - idle_from
            mark = max(mark, event.time_s)
        # SET_TIMEOUT events carry no time; they are context for humans.
    return out
