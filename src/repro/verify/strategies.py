"""Input generators for the differential verifier.

Two families, one module:

* **Hypothesis strategies** (``*_patterns``, ``*_specs``, ``machine_configs``)
  for the property-based tests under ``tests/verify/`` -- Hypothesis owns
  shrinking and example management there.
* **Seeded generators** (:func:`random_case`, :func:`random_small_machine`)
  for the ``repro verify`` CLI runner -- plain ``numpy`` RNG so that a
  seed number alone reproduces a failure, with the runner's own
  delta-debugging minimiser standing in for Hypothesis shrinking.

The adversarial access patterns target the invariants most likely to
break under optimisation: working sets sized exactly at the stack
tracker's compaction boundary, all-cold streams (every distance is
``COLD``), single-page loops (every distance is 0), and bursty arrival
processes that straddle the aggregation window.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

try:
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - exercised only without hypothesis

    class _MissingHypothesis:
        """Lazy failure: the seeded generators below stay importable (the
        ``repro verify`` runner needs no Hypothesis); only actually using
        a strategy raises."""

        def _fail(self, *args, **kwargs):
            raise ImportError(
                "hypothesis is not installed; the property-test strategies "
                "are unavailable (the seeded `repro verify` runner still is)"
            )

        def composite(self, fn):
            del fn
            return self._fail

        def __getattr__(self, name):
            return self._fail

    st = _MissingHypothesis()

from repro.config.disk_spec import DiskSpec
from repro.config.machine import MachineConfig, paper_machine
from repro.config.manager import ManagerConfig
from repro.config.memory_spec import MemorySpec
from repro.units import MB

# --- Hypothesis: access patterns --------------------------------------------


def page_ids(max_page: int = 50) -> st.SearchStrategy[int]:
    return st.integers(min_value=0, max_value=max_page)


def random_patterns(max_size: int = 300) -> st.SearchStrategy[List[int]]:
    """Uniformly random page streams."""
    return st.lists(page_ids(), max_size=max_size)


def all_cold_streams(max_size: int = 200) -> st.SearchStrategy[List[int]]:
    """Strictly fresh pages: every access must come back COLD."""
    return st.integers(min_value=0, max_value=max_size).map(
        lambda n: list(range(n))
    )


def single_page_loops(max_repeats: int = 200) -> st.SearchStrategy[List[int]]:
    """The same page over and over: distance 0 after the first access."""
    return st.tuples(
        page_ids(), st.integers(min_value=1, max_value=max_repeats)
    ).map(lambda pair: [pair[0]] * pair[1])


def working_set_loops(
    boundary: int = 8, max_laps: int = 40
) -> st.SearchStrategy[List[int]]:
    """Cyclic scans with working sets straddling a compaction boundary.

    With a tracker built at ``initial_capacity=boundary``, these loops
    force compaction every ``boundary`` accesses -- exactly where an
    off-by-one in the renumbering would surface.
    """
    return st.tuples(
        st.integers(min_value=1, max_value=boundary * 2 + 1),
        st.integers(min_value=1, max_value=max_laps),
    ).map(lambda pair: [i % pair[0] for i in range(pair[0] * pair[1])])


def access_patterns(max_size: int = 300) -> st.SearchStrategy[List[int]]:
    """The union the property tests fuzz over: random plus adversarial."""
    return st.one_of(
        random_patterns(max_size),
        all_cold_streams(min(max_size, 200)),
        single_page_loops(min(max_size, 200)),
        working_set_loops(),
    )


def timed_accesses(
    max_size: int = 200,
) -> st.SearchStrategy[Tuple[List[float], List[int]]]:
    """``(times, pages)`` with bursty and idle gaps mixed together."""

    def build(raw: List[Tuple[float, int]]) -> Tuple[List[float], List[int]]:
        times: List[float] = []
        clock = 0.0
        for gap, _ in raw:
            clock += gap
            times.append(clock)
        return times, [page for _, page in raw]

    gap = st.one_of(
        st.floats(min_value=0.0, max_value=0.2),  # inside the window
        st.floats(min_value=0.2, max_value=120.0),  # real idleness
    )
    return st.lists(st.tuples(gap, page_ids()), max_size=max_size).map(build)


# --- Hypothesis: hardware specs -----------------------------------------------


@st.composite
def disk_specs(draw) -> DiskSpec:
    """Physically consistent drive specs (powers ordered, times summing)."""
    standby = draw(st.floats(min_value=0.1, max_value=2.0))
    static = draw(st.floats(min_value=1.0, max_value=10.0))
    dynamic = draw(st.floats(min_value=0.5, max_value=8.0))
    idle = standby + static
    active = idle + dynamic
    spin_down = draw(st.floats(min_value=0.5, max_value=5.0))
    spin_up = draw(st.floats(min_value=1.0, max_value=15.0))
    energy = draw(st.floats(min_value=5.0, max_value=200.0))
    return dataclasses.replace(
        DiskSpec(),
        mode_power_watts={
            "active": active,
            "idle": idle,
            "standby": standby,
            "sleep": standby,
        },
        transition_energy_joules=energy,
        transition_time_s=spin_down + spin_up,
        spin_down_time_s=spin_down,
        spin_up_time_s=spin_up,
    )


@st.composite
def memory_specs(draw) -> MemorySpec:
    """Bank/page geometries satisfying every MemorySpec invariant."""
    page_shift = draw(st.integers(min_value=12, max_value=14))  # 4-16 kB
    page = 1 << page_shift
    pages_per_bank = 1 << draw(st.integers(min_value=0, max_value=12))
    bank = page * pages_per_bank
    banks = draw(st.integers(min_value=1, max_value=64))
    return dataclasses.replace(
        MemorySpec(),
        installed_bytes=bank * banks,
        bank_bytes=bank,
        page_bytes=page,
    )


@st.composite
def manager_configs(draw, bank_bytes: int = 16 * MB) -> ManagerConfig:
    """Manager parameters whose enumeration unit fits the given bank."""
    unit = bank_bytes * draw(st.integers(min_value=1, max_value=4))
    return ManagerConfig(
        period_s=draw(st.floats(min_value=60.0, max_value=1200.0)),
        aggregation_window_s=draw(st.floats(min_value=0.0, max_value=1.0)),
        max_utilization=draw(st.floats(min_value=0.05, max_value=1.0)),
        max_delayed_ratio=draw(st.floats(min_value=1e-4, max_value=1.0)),
        enumeration_unit_bytes=unit,
        min_memory_bytes=unit,
        max_candidates=draw(st.integers(min_value=2, max_value=32)),
    )


@st.composite
def machine_configs(draw) -> MachineConfig:
    """Complete machines: memory x disk x manager, mutually consistent."""
    memory = draw(memory_specs())
    manager = draw(manager_configs(bank_bytes=memory.bank_bytes))
    if manager.min_memory_bytes > memory.installed_bytes:
        manager = dataclasses.replace(
            manager,
            enumeration_unit_bytes=memory.bank_bytes,
            min_memory_bytes=memory.bank_bytes,
        )
    return MachineConfig(memory=memory, disk=draw(disk_specs()), manager=manager)


# --- seeded cases for the CLI runner ------------------------------------------


@dataclass(frozen=True)
class VerifyCase:
    """One fuzzed workload: what a single seed deterministically expands to."""

    seed: int
    times: np.ndarray
    pages: np.ndarray
    #: Aggregation window used for interval/predictor checks, seconds.
    window_s: float
    #: Observation horizon; covers every access with an idle tail.
    period_s: float
    #: Human-readable pattern name, for divergence reports.
    pattern: str

    @property
    def accesses(self) -> List[Tuple[float, int]]:
        return list(zip(self.times.tolist(), self.pages.tolist()))


#: Pattern names in the order ``random_case`` draws them.
PATTERNS = ("uniform", "all-cold", "single-page-loop", "working-set-loop", "hot-cold")


def random_case(seed: int, max_accesses: int = 300) -> VerifyCase:
    """Deterministically expand ``seed`` into a fuzzed access stream.

    Cycles through five pattern families -- uniform random, all-cold
    streams, single-page loops, working-set loops sized around the stack
    tracker's compaction boundary, and hot/cold mixtures -- with bursty
    arrivals (60% of gaps inside the aggregation window).
    """
    rng = np.random.default_rng(seed)
    kind = int(rng.integers(0, len(PATTERNS)))
    n = int(rng.integers(1, max(max_accesses, 2)))
    if kind == 0:
        pages = rng.integers(0, 40, size=n)
    elif kind == 1:
        pages = np.arange(n)
    elif kind == 2:
        pages = np.full(n, int(rng.integers(0, 5)))
    elif kind == 3:
        # Working sets straddling the verifier's compaction boundary (the
        # differential runner builds trackers with initial_capacity=8).
        working_set = int(rng.choice([3, 4, 7, 8, 9, 15, 16, 17]))
        pages = np.arange(n) % working_set
    else:
        hot = rng.integers(0, 4, size=n)
        cold = rng.integers(4, 400, size=n)
        pages = np.where(rng.random(n) < 0.7, hot, cold)

    bursty = rng.random(n) < 0.6
    gaps = np.where(
        bursty, rng.exponential(0.03, size=n), rng.exponential(25.0, size=n)
    )
    times = np.cumsum(gaps)
    window = float(rng.choice([0.0, 0.1, 1.0]))
    period = float(times[-1]) + float(rng.exponential(30.0)) + 1.0
    return VerifyCase(
        seed=seed,
        times=times,
        pages=pages.astype(np.int64),
        window_s=window,
        period_s=period,
        pattern=PATTERNS[kind],
    )


def random_small_machine(seed: int, rng: Optional[np.random.Generator] = None) -> MachineConfig:
    """A paper-hardware machine shrunk so grid oracles stay affordable.

    4-MB pages (scale 1024), a 64-MB bank/enumeration unit, a few hundred
    MB installed and at most a dozen candidate sizes: small enough that
    the exhaustive ``(m, t_o)`` oracle runs in milliseconds, yet every
    code path of the joint manager (fits, fallbacks, constraints) is
    reachable.
    """
    if rng is None:
        rng = np.random.default_rng(seed ^ 0x5EED)
    base = paper_machine().scaled(1024)
    bank = 64 * MB
    banks = int(rng.integers(4, 13))
    memory = dataclasses.replace(
        base.memory, installed_bytes=bank * banks, bank_bytes=bank
    )
    manager = dataclasses.replace(
        base.manager,
        period_s=float(rng.choice([120.0, 300.0, 600.0])),
        aggregation_window_s=float(rng.choice([0.0, 0.1, 0.5])),
        enumeration_unit_bytes=bank,
        min_memory_bytes=bank,
        max_candidates=int(rng.integers(4, 13)),
    )
    return MachineConfig(
        memory=memory, disk=base.disk, manager=manager, scale=base.scale
    )
