"""Differential check for the fleet subsystem (``CHECKS["fleet"]``).

Three legs, one fuzzed seed each:

1. **Fan-out vs monolithic** -- a small multi-tenant
   :class:`~repro.fleet.sharding.FleetSpec` is decomposed into shard
   tasks, each executed the way a campaign worker would (vectorized
   kernels, JSON payload round trip) and merged; the result must be
   bit-identical to :func:`~repro.fleet.sharding.run_fleet_monolithic`,
   which replays the very same shard traces serially on the
   forced-scalar loop.  Only ``replay_modes`` may differ (scalar vs
   kernels), which is the point of the comparison.
2. **Migration-disabled engine vs the legacy oracle** -- with a static
   layout and a policy that never fires ``on_period``, the
   :class:`~repro.fleet.engine.FleetEngine` must produce the exact
   operation sequence of :class:`~repro.multidisk.engine.MultiDiskEngine`
   (kept deliberately independent of the fleet code): every result
   field compares bit-equal, and no migration/timeout telemetry may
   appear.
3. **Migration conservation** -- a migrating run on a hot set scattered
   across the array must satisfy exact *integer/float* invariants of
   the cost model: every migrated page is charged as one read plus one
   write (``sum(bytes_transferred) == (misses + 2*migrated) * page``),
   every participating disk's transfer shows up as a request
   (``sum(requests) == misses + submits``), per-record page counts are
   conserved between sources and destinations, and the reported
   migration energy is exactly ``active seconds x active watts``.  A
   mutation that drops either side of the transfer (see the
   monkeypatch test of ``_charge_migration``) trips these immediately.
"""

from __future__ import annotations

import json
from typing import Optional

import numpy as np

from repro.campaign.tasks import WorkloadSpec
from repro.fleet.engine import FleetEngine
from repro.fleet.layout import (
    MigratingLayout,
    PartitionedLayout,
    StripedLayout,
)
from repro.fleet.sharding import FleetSpec, fleet_plan, run_fleet_monolithic
from repro.multidisk.engine import MultiDiskEngine
from repro.policies.registry import parse_method
from repro.verify.strategies import VerifyCase, random_small_machine

#: Methods the fan-out leg cycles through (memory policy x disk policy).
_FLEET_METHODS = ("2TNAP", "ADNAP", "PTNAP")

#: Shard shapes the fan-out leg cycles through.
_FLEET_SHAPES = (
    ("sim", 1),
    ("partitioned", 2),
    ("striped", 2),
    ("migrating", 2),
)


def _check_fanout(case: VerifyCase) -> Optional[str]:
    """Leg 1: sharded campaign fan-out vs the monolithic reference."""
    from repro.verify.differential import deep_diff

    rng = np.random.default_rng(case.seed ^ 0xF1EE7)
    machine = random_small_machine(case.seed, rng=rng)
    period = machine.manager.period_s
    method = _FLEET_METHODS[int(rng.integers(0, len(_FLEET_METHODS)))]
    layout, disks = _FLEET_SHAPES[int(rng.integers(0, len(_FLEET_SHAPES)))]
    num_tenants = int(rng.integers(2, 5))
    num_shards = int(rng.integers(2, 4))
    duration = 2.0 * period
    tenants = tuple(
        WorkloadSpec.for_machine(
            machine,
            # Sub-GB filesets can degenerate to a handful of files, for
            # which no Zipf exponent reaches a low popularity ratio.
            dataset_gb=float(rng.choice([1.0, 2.0])),
            rate_mb=float(rng.uniform(1.0, 4.0)),
            popularity=float(rng.uniform(0.7, 0.9)),
            duration_s=duration,
            seed=int(rng.integers(0, 2**31)),
        )
        for _ in range(num_tenants)
    )
    spec = FleetSpec(
        machine=machine,
        method=parse_method(method),
        tenants=tenants,
        num_shards=num_shards,
        duration_s=duration,
        disks_per_shard=disks,
        layout=layout,
    )
    context = (
        f"(method {method}, layout {layout}, {num_tenants} tenant(s), "
        f"{num_shards} shard(s))"
    )

    monolithic = run_fleet_monolithic(spec)
    plan = fleet_plan(spec)
    # The worker path exactly: kernels replay, then the payload crosses a
    # process/cache boundary as JSON before the merge sees it.
    payloads = [json.loads(json.dumps(task.execute())) for task in plan.tasks]
    fanout = plan.assemble(payloads)

    expected = monolithic.to_payload()
    actual = fanout.to_payload()
    expected.pop("replay_modes")
    actual.pop("replay_modes")
    diff = deep_diff(actual, expected, "fleet_report")
    if diff is not None:
        return f"fan-out vs monolithic: {diff} {context}"
    from repro.cache.profile import kernels_enabled

    if layout == "sim" and kernels_enabled():
        # The comparison only means something if the fan-out actually
        # took the kernels path while the reference stayed scalar.
        for mode in fanout.replay_modes:
            if mode == "scalar":
                return (
                    f"fan-out shard fell back to the scalar loop "
                    f"(modes {list(fanout.replay_modes)}) {context}"
                )
    return None


def _case_trace(case: VerifyCase, machine, periods: float):
    """The fuzzed stream stretched across ``periods`` manager periods."""
    from repro.traces.trace import Trace

    span = max(float(case.times[-1]), 1e-3)
    times = case.times * (periods * machine.manager.period_s / span)
    return Trace(
        times=times,
        pages=case.pages,
        page_size=machine.page_bytes,
    )


def _check_static_parity(case: VerifyCase) -> Optional[str]:
    """Leg 2: migration-disabled FleetEngine vs MultiDiskEngine, bit-equal."""
    from repro.verify.differential import deep_diff

    if case.times.size == 0:
        return None
    rng = np.random.default_rng(case.seed ^ 0x0F1E37)
    machine = random_small_machine(case.seed, rng=rng)
    # 2T and AD leave ``on_period`` alone, so boundary processing must be
    # skipped and the replays identical operation for operation.
    method = parse_method("2TNAP" if rng.random() < 0.5 else "ADNAP")
    num_disks = int(rng.integers(2, 5))
    max_page = int(case.pages.max())
    if rng.random() < 0.5:
        pages_per_disk = max((max_page + num_disks) // num_disks, 1)
        layout = PartitionedLayout(num_disks, pages_per_disk)
    else:
        layout = StripedLayout(num_disks, extent_pages=int(rng.choice([1, 4, 16])))
    trace = _case_trace(case, machine, periods=2.5)
    context = f"(method {method.label}, layout {type(layout).__name__})"

    reference = MultiDiskEngine(
        machine,
        method.build_memory_system(machine),
        layout,
        policy_factory=lambda: method.build_disk_policy(machine),
        label="parity",
    ).run(trace)
    fleet = FleetEngine(
        machine,
        method.build_memory_system(machine),
        layout,
        policy_factory=lambda: method.build_disk_policy(machine),
        label="parity",
    ).run(trace)

    if fleet.pages_migrated or fleet.migrations or fleet.timeout_updates:
        return (
            f"static fleet run reported boundary activity "
            f"(migrated {fleet.pages_migrated}, "
            f"updates {fleet.timeout_updates}) {context}"
        )
    expected = reference.to_payload()
    actual = {
        key: value
        for key, value in fleet.to_payload().items()
        if key in expected
    }
    diff = deep_diff(actual, expected, "result")
    if diff is not None:
        return f"fleet vs multidisk: {diff} {context}"
    return None


def _check_migration_conservation(case: VerifyCase) -> Optional[str]:
    """Leg 3: exact conservation invariants of the migration cost model."""
    if case.times.size == 0:
        return None
    rng = np.random.default_rng(case.seed ^ 0x316A7E)
    machine = random_small_machine(case.seed, rng=rng)
    num_disks = 4
    # A deliberately tiny partition unit scatters the fuzzed pages across
    # all spindles, so popularity ranking has somewhere to move them.
    layout = MigratingLayout(num_disks, pages_per_disk=int(rng.choice([4, 8, 16])))
    method = parse_method("PTNAP")  # Pareto: on_period fires every boundary
    trace = _case_trace(case, machine, periods=3.25)

    result = FleetEngine(
        machine,
        method.build_memory_system(machine),
        layout,
        policy_factory=lambda: method.build_disk_policy(machine),
        label="conservation",
    ).run(trace)

    context = f"(pattern {case.pattern}, {case.pages.size} accesses)"
    moved = sum(record.moved_pages for record in result.migrations)
    if moved != result.pages_migrated:
        return (
            f"migration records carry {moved} page(s) but the result "
            f"reports {result.pages_migrated} {context}"
        )
    src_total = sum(
        n for record in result.migrations for _d, n in record.src_pages
    )
    dst_total = sum(
        n for record in result.migrations for _d, n in record.dst_pages
    )
    if src_total != result.pages_migrated or dst_total != result.pages_migrated:
        return (
            f"unbalanced transfer: {src_total} page(s) read, {dst_total} "
            f"written, {result.pages_migrated} migrated {context}"
        )
    submits = sum(
        len(record.src_pages) + len(record.dst_pages)
        for record in result.migrations
    )
    requests = sum(energy.requests for energy in result.per_disk)
    if requests != result.disk_page_accesses + submits:
        return (
            f"request conservation: {requests} drive request(s) != "
            f"{result.disk_page_accesses} miss(es) + {submits} migration "
            f"submit(s) {context}"
        )
    page = machine.page_bytes
    moved_bytes = sum(int(energy.bytes_transferred) for energy in result.per_disk)
    expected_bytes = (
        result.disk_page_accesses + 2 * result.pages_migrated
    ) * page
    if moved_bytes != expected_bytes:
        return (
            f"byte conservation: {moved_bytes} transferred != "
            f"({result.disk_page_accesses} + 2*{result.pages_migrated}) "
            f"* {page} {context}"
        )
    active_w = machine.disk.mode_power_watts["active"]
    if result.migration_energy_j != result.migration_active_s * active_w:
        return (
            f"migration energy {result.migration_energy_j!r} != "
            f"{result.migration_active_s!r} * {active_w!r} {context}"
        )
    active_s = sum(record.active_s for record in result.migrations)
    if abs(active_s - result.migration_active_s) > 1e-12 * max(active_s, 1.0):
        return (
            f"per-record active seconds {active_s!r} != result total "
            f"{result.migration_active_s!r} {context}"
        )
    if result.pages_migrated > 0 and result.migration_active_s <= 0.0:
        return (
            f"free migration: {result.pages_migrated} page(s) moved in "
            f"{result.migration_active_s!r} service seconds {context}"
        )
    for record in result.migrations:
        if record.moved_pages > 0 and record.active_s <= 0.0:
            return (
                f"free migration record at t={record.time_s:g}: "
                f"{record.moved_pages} page(s) in {record.active_s!r} s "
                f"{context}"
            )
    return None


def check_fleet(case: VerifyCase) -> Optional[str]:
    """Fan-out vs monolithic, fleet vs multidisk, migration conservation."""
    for leg in (_check_fanout, _check_static_parity, _check_migration_conservation):
        detail = leg(case)
        if detail is not None:
            return detail
    return None
