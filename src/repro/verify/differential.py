"""Differential runner: fast paths vs brute-force oracles over fuzzed seeds.

Twelve checks, each pairing a production fast path with its oracle from
:mod:`repro.verify.oracles` (or, for ``optimal``/``fleet``, from
:mod:`repro.verify.optimal` / :mod:`repro.verify.fleet`):

========== ====================================================== =========
check      fast path                                              oracle
========== ====================================================== =========
stack      ``cache.stack_distance.StackDistanceTracker``          explicit LRU stack
intervals  ``stats.intervals.extract_idle_intervals``             plain-loop filter
predictor  ``cache.predictor.ResizePredictor`` fed by the tracker per-size literal LRU
joint      ``core.joint.JointPowerManager`` period decision       per-size LRU + numeric
                                                                  eq. (2)-(6) + (m, t_o)
                                                                  grid search
energy     ``sim.engine`` / ``disk.drive`` incremental accounting event-log integration
kernels    ``sim.kernels`` vectorized replay                      the scalar engine loop
missrun    ``sim.kernels`` miss-run replay (batched               the scalar engine loop
           ``SimDisk.submit_run`` recurrence, vectorized          (per-miss
           sequential-merge flags, batched clusterer/metrics)     ``_serve_miss``)
writes     ``sim.kernels`` write-carrying vectorized replay       the scalar engine loop
           (dirty marks batched, flush sweeps interleaved)        (write-back path)
epoch      ``sim.kernels`` epoch-segmented joint replay +         the scalar engine loop
           the disable-model (2TDS) pure-hit-prefix replay        driving the live
                                                                  joint manager / the
                                                                  live bank map
optimal    ``verify.optimal`` lazy-heap Belady + clairvoyant      linear-scan Belady,
           disk schedule                                          competitive closed
                                                                  form, one-sided
                                                                  OPT <= online bounds
stream     ``service.streaming.StreamingManager`` incremental     the offline
           feeds (ragged batch splits, idle advances)             ``run_method`` replay
                                                                  of the same sequence
fleet      ``fleet.sharding`` campaign fan-out (kernels + JSON    the monolithic
           round trip) and the ``fleet.engine`` array manager     forced-scalar merge,
           with migration accounting                              ``MultiDiskEngine``,
                                                                  and exact transfer
                                                                  conservation laws
========== ====================================================== =========

Each seed deterministically expands to a fuzzed workload
(:func:`repro.verify.strategies.random_case`).  On the first divergence
the runner delta-debugs the access stream down to a minimal reproducer
and stops; ``repro verify`` prints it ready to paste into a test.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.predictor import ResizePredictor
from repro.cache.profile import build_profile
from repro.cache.stack_distance import StackDistanceTracker
from repro.core.joint import JointPowerManager
from repro.errors import SimulationError
from repro.memory.system import NapMemorySystem
from repro.policies.fixed_timeout import FixedTimeoutPolicy
from repro.sim.engine import SimulationEngine
from repro.stats.intervals import extract_idle_intervals
from repro.stats.timeout_math import expected_power, optimal_timeout
from repro.traces.trace import Trace
from repro.verify import oracles
from repro.verify.fleet import check_fleet
from repro.verify.optimal import check_optimal
from repro.verify.strategies import VerifyCase, random_case, random_small_machine

#: Tracker capacity used by the stack/predictor/joint checks: tiny, so
#: every fuzzed stream crosses several compaction boundaries.
TRACKER_CAPACITY = 8

#: Candidate cache sizes (pages) the predictor check sweeps.
PREDICTOR_CAPACITIES = (0, 1, 2, 3, 5, 8, 13, 21, 34)

#: Bounds within which the numeric Pareto oracles are trustworthy.
NUMERIC_ALPHA_RANGE = (1.05, 50.0)


# --- report types -------------------------------------------------------------


@dataclass(frozen=True)
class Divergence:
    """A confirmed fast-path/oracle disagreement, minimized."""

    check: str
    seed: int
    pattern: str
    #: What differed, on the minimized input.
    detail: str
    #: The minimized access stream (times kept aligned with pages).
    times: Tuple[float, ...]
    pages: Tuple[int, ...]
    window_s: float
    period_s: float

    def reproducer(self) -> str:
        """A paste-ready snippet that re-triggers the divergence."""
        times = "[" + ", ".join(f"{t:.6f}" for t in self.times) + "]"
        pages = "[" + ", ".join(str(p) for p in self.pages) + "]"
        return (
            "from repro.verify.differential import CHECKS\n"
            "from repro.verify.strategies import VerifyCase\n"
            "import numpy as np\n"
            f"case = VerifyCase(seed={self.seed}, times=np.array({times}),\n"
            f"                  pages=np.array({pages}, dtype=np.int64),\n"
            f"                  window_s={self.window_s!r}, period_s={self.period_s!r},\n"
            f"                  pattern={self.pattern!r})\n"
            f"print(CHECKS[{self.check!r}](case))"
        )


@dataclass(frozen=True)
class CheckOutcome:
    """Result of running one check over a range of seeds."""

    name: str
    seeds_run: int
    divergence: Optional[Divergence] = None

    @property
    def ok(self) -> bool:
        return self.divergence is None


@dataclass
class VerifyReport:
    """Everything ``repro verify`` learned in one invocation."""

    outcomes: List[CheckOutcome] = field(default_factory=list)
    first_seed: int = 0
    seeds: int = 0

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def first_divergence(self) -> Optional[Divergence]:
        for outcome in self.outcomes:
            if outcome.divergence is not None:
                return outcome.divergence
        return None

    def render(self) -> str:
        lines = [
            f"differential verification: {self.seeds} seed(s) starting at "
            f"{self.first_seed}"
        ]
        for outcome in self.outcomes:
            status = "ok" if outcome.ok else "DIVERGED"
            lines.append(
                f"  {outcome.name:<10} {outcome.seeds_run:>4} seed(s)  {status}"
            )
            if outcome.divergence is not None:
                d = outcome.divergence
                lines.append(
                    f"    seed {d.seed} (pattern {d.pattern}): {d.detail}"
                )
                lines.append(
                    f"    minimized to {len(d.pages)} access(es); reproducer:"
                )
                for row in d.reproducer().splitlines():
                    lines.append("      " + row)
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


# --- delta debugging ----------------------------------------------------------


def minimize_accesses(
    items: List[Tuple[float, int]],
    fails: Callable[[List[Tuple[float, int]]], bool],
) -> List[Tuple[float, int]]:
    """Classic ddmin over ``(time, page)`` pairs.

    Repeatedly tries dropping contiguous chunks (halves, then quarters,
    ...) while ``fails`` keeps returning True; subsequences preserve the
    time ordering, so every candidate is a valid access stream.
    """
    if not fails(items):
        raise SimulationError("minimizer needs a failing input to start from")
    granularity = 2
    while len(items) >= 2:
        chunk = max(len(items) // granularity, 1)
        reduced = False
        for start in range(0, len(items), chunk):
            candidate = items[:start] + items[start + chunk :]
            if candidate != items and fails(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(granularity * 2, len(items))
    return items


def _rebuild(case: VerifyCase, pairs: Sequence[Tuple[float, int]]) -> VerifyCase:
    return VerifyCase(
        seed=case.seed,
        times=np.asarray([t for t, _ in pairs], dtype=np.float64),
        pages=np.asarray([p for _, p in pairs], dtype=np.int64),
        window_s=case.window_s,
        period_s=case.period_s,
        pattern=case.pattern,
    )


# --- the checks ---------------------------------------------------------------


def check_stack_distance(case: VerifyCase) -> Optional[str]:
    """Fenwick-tree stack distances vs the explicit LRU stack."""
    pages = case.pages.tolist()
    tracker = StackDistanceTracker(initial_capacity=TRACKER_CAPACITY)
    fast = [tracker.access(page) for page in pages]
    slow = oracles.naive_stack_distances(pages)
    if fast != slow:
        first = next(i for i, (a, b) in enumerate(zip(fast, slow)) if a != b)
        return (
            f"stack distance of access {first} (page {pages[first]}): "
            f"fast {fast[first]} != oracle {slow[first]}"
        )
    return None


def check_intervals(case: VerifyCase) -> Optional[str]:
    """Vectorised idle-interval extraction vs the one-gap-at-a-time loop."""
    # The disk sees the access times directly in this check.
    times = case.times.tolist()
    fast = extract_idle_intervals(
        times, case.window_s, period_start=0.0, period_end=case.period_s
    )
    slow = oracles.naive_idle_intervals(
        times, case.window_s, period_start=0.0, period_end=case.period_s
    )
    if fast.count != len(slow) or not np.allclose(
        fast.lengths, np.asarray(slow), rtol=0.0, atol=1e-12
    ):
        return (
            f"idle intervals differ: fast n={fast.count} "
            f"{fast.lengths.tolist()} != oracle n={len(slow)} {slow}"
        )
    return None


def check_predictor(case: VerifyCase) -> Optional[str]:
    """One-pass per-size prediction vs literally simulating each size."""
    times = case.times.tolist()
    pages = case.pages.tolist()
    tracker = StackDistanceTracker(initial_capacity=TRACKER_CAPACITY)
    predictor = ResizePredictor()
    for now, page in zip(times, pages):
        predictor.record(now, tracker.access(page))
    predictions = predictor.predict(
        PREDICTOR_CAPACITIES,
        window_s=case.window_s,
        period_start=0.0,
        period_end=case.period_s,
    )
    for prediction in predictions:
        capacity = prediction.capacity_pages
        slow_times = oracles.naive_lru_miss_times(times, pages, capacity)
        if prediction.num_disk_accesses != len(slow_times):
            return (
                f"size {capacity}: fast predicts "
                f"{prediction.num_disk_accesses} disk accesses, the literal "
                f"LRU saw {len(slow_times)}"
            )
        slow_idle = oracles.naive_idle_intervals(
            slow_times, case.window_s, period_start=0.0, period_end=case.period_s
        )
        if prediction.idle.count != len(slow_idle) or not np.allclose(
            prediction.idle.lengths, np.asarray(slow_idle), rtol=0.0, atol=1e-9
        ):
            return (
                f"size {capacity}: fast idle intervals "
                f"{prediction.idle.lengths.tolist()} != oracle {slow_idle}"
            )
    return None


def check_joint(case: VerifyCase) -> Optional[str]:
    """The per-period ``(m, t_o)`` decision vs exhaustive search.

    Four oracles in one pass: (1) per-candidate disk-IO predictions vs
    the literal LRU, (2) candidate selection vs an exhaustive scan,
    (3) the closed-form eq. (4) power vs numerical integration, and
    (4) the eq. (5) timeout vs a dense timeout grid, plus the eq. (6)
    delayed-ratio constraint at the chosen timeout.
    """
    machine = random_small_machine(case.seed)
    manager = JointPowerManager(machine)
    times = case.times.tolist()
    pages = case.pages.tolist()
    for now, page in zip(times, pages):
        manager.record_access(now, page)
    decision = manager.end_period(case.period_s)
    evaluations = decision.evaluations
    period_s = case.period_s
    disk = machine.disk

    # (1) predictions vs the literal per-size LRU simulation.
    for evaluation in evaluations:
        prediction = evaluation.prediction
        slow_times = oracles.naive_lru_miss_times(
            times, pages, prediction.capacity_pages
        )
        if prediction.num_disk_accesses != len(slow_times):
            return (
                f"candidate {prediction.capacity_pages} pages: fast predicts "
                f"{prediction.num_disk_accesses} disk accesses, literal LRU "
                f"saw {len(slow_times)}"
            )
        slow_idle = oracles.naive_idle_intervals(
            slow_times,
            machine.manager.aggregation_window_s,
            period_start=0.0,
            period_end=period_s,
        )
        if prediction.idle.count != len(slow_idle) or not np.allclose(
            prediction.idle.lengths, np.asarray(slow_idle), rtol=0.0, atol=1e-9
        ):
            return (
                f"candidate {prediction.capacity_pages} pages: idle intervals "
                f"{prediction.idle.lengths.tolist()} != oracle {slow_idle}"
            )

    # (2) selection vs the exhaustive scan.
    chosen = oracles.oracle_select(evaluations)
    if chosen.capacity_bytes != decision.memory_bytes:
        return (
            f"selection: manager chose {decision.memory_bytes} B, exhaustive "
            f"scan chose {chosen.capacity_bytes} B"
        )
    if not _timeouts_equal(chosen.timeout_s, decision.timeout_s):
        return (
            f"selection: manager timeout {decision.timeout_s} != oracle "
            f"timeout {chosen.timeout_s}"
        )

    # (3)/(4) the timeout mathematics, candidate by candidate.
    low, high = NUMERIC_ALPHA_RANGE
    for evaluation in evaluations:
        fit = evaluation.fit
        if fit is None or not (low <= fit.alpha <= high):
            continue
        n_i = evaluation.prediction.idle.count
        if n_i == 0 or evaluation.prediction.num_disk_accesses == 0:
            continue
        timeout = evaluation.timeout_s
        if timeout is not None and timeout > 0:
            closed = expected_power(
                fit,
                num_intervals=n_i,
                timeout_s=timeout,
                period_s=period_s,
                static_power_w=disk.static_power_watts,
                break_even_s=disk.break_even_time_s,
            )
            numeric = oracles.numeric_expected_power(
                fit,
                num_intervals=n_i,
                timeout_s=timeout,
                period_s=period_s,
                static_power_w=disk.static_power_watts,
                break_even_s=disk.break_even_time_s,
            )
            if not math.isclose(closed, numeric, rel_tol=1e-5, abs_tol=1e-9):
                return (
                    f"candidate {evaluation.capacity_bytes} B: eq. (4) closed "
                    f"form {closed} != numeric integral {numeric}"
                )
        eq5 = optimal_timeout(fit, disk.break_even_time_s)
        at_eq5 = oracles.unclamped_expected_power(
            fit, n_i, eq5, period_s, disk.static_power_watts, disk.break_even_time_s
        )
        _, grid_power = oracles.grid_best_timeout(
            fit,
            n_i,
            period_s,
            disk.static_power_watts,
            disk.break_even_time_s,
        )
        # Sign-safe slack: the unclamped power goes negative when t_s > T.
        if at_eq5 > grid_power + max(abs(grid_power) * 1e-3, 1e-9):
            return (
                f"candidate {evaluation.capacity_bytes} B: eq. (5) timeout "
                f"{eq5:.3f}s has power {at_eq5:.6f} W, the grid found "
                f"{grid_power:.6f} W"
            )
        if timeout is not None and manager.enforce_constraints:
            ratio = oracles.delayed_ratio(
                fit,
                num_intervals=n_i,
                num_disk_accesses=evaluation.prediction.num_disk_accesses,
                num_cache_accesses=evaluation.prediction.num_cache_accesses,
                period_s=period_s,
                timeout_s=timeout,
                transition_time_s=disk.transition_time_s,
                long_latency_threshold_s=machine.manager.long_latency_threshold_s,
            )
            limit = machine.manager.max_delayed_ratio
            if ratio > limit * (1.0 + 1e-6) + 1e-12:
                return (
                    f"candidate {evaluation.capacity_bytes} B: timeout "
                    f"{timeout:.3f}s violates eq. (6): delayed ratio "
                    f"{ratio:.3e} > limit {limit:.3e}"
                )
    return None


def check_energy(case: VerifyCase) -> Optional[str]:
    """Incremental drive accounting vs event-by-event integration."""
    machine = random_small_machine(case.seed)
    rng = np.random.default_rng(case.seed ^ 0xD15C)
    spec = machine.memory
    banks = spec.installed_bytes // spec.bank_bytes
    capacity = spec.bank_bytes * int(rng.integers(1, banks + 1))
    timeout = float(
        rng.choice([0.0, 1.0, machine.disk.break_even_time_s, 30.0, math.inf])
    )
    memory = NapMemorySystem(spec, capacity)
    engine = SimulationEngine(
        machine,
        memory,
        disk_policy=FixedTimeoutPolicy(timeout),
        label="verify-energy",
        record_events=True,
    )
    trace = Trace(
        times=case.times, pages=case.pages, page_size=machine.page_bytes
    )
    engine.run(trace)
    assert engine.disk.events is not None
    integrated = oracles.integrate_disk_events(
        engine.disk.events.events, machine.disk
    )
    booked = engine.disk.energy
    for name in ("active_s", "idle_s", "standby_s", "transition_s"):
        fast = getattr(booked, name)
        slow = getattr(integrated, name)
        if abs(fast - slow) > 1e-6:
            return (
                f"{name}: incremental accounting {fast:.9f} != event "
                f"integration {slow:.9f} (timeout {timeout}, capacity "
                f"{capacity} B)"
            )
    if booked.spin_down_cycles != integrated.spin_down_cycles:
        return (
            f"spin-down cycles: {booked.spin_down_cycles} != "
            f"{integrated.spin_down_cycles}"
        )
    if booked.requests != integrated.requests:
        return f"requests: {booked.requests} != {integrated.requests}"
    fast_j = booked.total_joules(machine.disk)
    slow_j = integrated.total_joules(machine.disk)
    if not math.isclose(fast_j, slow_j, rel_tol=1e-9, abs_tol=1e-6):
        return f"total energy: {fast_j} J != {slow_j} J"
    return None


class _RequestAwareTimeout(FixedTimeoutPolicy):
    """A fixed timeout that *looks* request-aware.

    Overriding ``on_request`` (behaviourally a no-op) opts the policy
    out of the miss-run upgrade, so ``check_kernels`` keeps pinning the
    plain ``"vectorized"`` mode -- every miss through the scalar
    ``_serve_miss`` -- while ``check_missrun`` owns the batched path.
    """

    def on_request(self, now, latency_s, wake_delay_s, idle_before_s):
        return super().on_request(now, latency_s, wake_delay_s, idle_before_s)


def check_kernels(case: VerifyCase) -> Optional[str]:
    """Vectorized replay kernels vs the scalar engine loop, bit for bit.

    Both replays run the same fuzzed trace through fresh engines; the
    fast one gets a :class:`TraceProfile`, the reference one does not.
    Every ``SimResult`` field -- energies, latencies, per-period series --
    must compare exactly equal (no tolerance: the kernels promise the
    identical floating-point operations, not merely close ones).  The
    policy advertises a request-aware hook so the run stays on the
    per-miss ``"vectorized"`` mode; the batched-miss upgrade has its own
    ``missrun`` check.
    """
    from repro.sim.prefill import warm_start_pages

    machine = random_small_machine(case.seed)
    rng = np.random.default_rng(case.seed ^ 0x5E67)
    spec = machine.memory
    banks = spec.installed_bytes // spec.bank_bytes
    capacity = spec.bank_bytes * int(rng.integers(1, banks + 1))
    timeout = float(
        rng.choice([0.0, 1.0, machine.disk.break_even_time_s, 30.0, math.inf])
    )
    warm = bool(rng.integers(0, 2))
    trace = Trace(
        times=case.times, pages=case.pages, page_size=machine.page_bytes
    )
    prefill = warm_start_pages(trace) if warm else []

    def replay(profile):
        memory = NapMemorySystem(spec, capacity)
        if prefill:
            memory.prefill(prefill)
        engine = SimulationEngine(
            machine,
            memory,
            disk_policy=_RequestAwareTimeout(timeout),
            label="verify-kernels",
        )
        return engine.run(trace, profile=profile)

    fast = replay(build_profile(trace, warm_start=warm))
    slow = replay(None)
    if fast.replay_mode != "vectorized":
        return f"fast path refused an eligible run (mode {fast.replay_mode})"
    if slow.replay_mode != "scalar":
        return "reference run did not use the scalar loop"
    a = dataclasses.asdict(fast)
    b = dataclasses.asdict(slow)
    a.pop("replay_mode")
    b.pop("replay_mode")
    for name in a:
        if a[name] != b[name]:
            return (
                f"{name}: vectorized {a[name]!r} != scalar {b[name]!r} "
                f"(timeout {timeout}, capacity {capacity} B, warm={warm})"
            )
    return None


def check_missrun(case: VerifyCase) -> Optional[str]:
    """Batched miss-run replay vs the scalar engine loop, bit for bit.

    Rotates the nap and power-down memory models, random capacities
    (including zero -- an all-miss trace is one long boundary-split miss
    run), the 2T and always-on policies, disk timeouts from never to
    instant, and warm starts.  Half the seeds record the disk event log
    on both legs and compare it event for event, so the batched
    ``submit_run`` must also interleave its buffered submit records with
    spin-downs in exactly the scalar order.
    """
    from repro.memory.system import PowerDownMemorySystem
    from repro.policies.always_on import AlwaysOnPolicy
    from repro.sim.prefill import warm_start_pages

    if case.times.size == 0:
        return None
    machine = random_small_machine(case.seed)
    rng = np.random.default_rng(case.seed ^ 0x3155)
    spec = machine.memory
    banks = spec.installed_bytes // spec.bank_bytes
    capacity = spec.bank_bytes * int(rng.integers(0, banks + 1))
    timeout = float(
        rng.choice([0.0, 1.0, machine.disk.break_even_time_s, 30.0, math.inf])
    )
    model = ("nap", "pd")[int(rng.integers(0, 2))]
    always_on = bool(rng.integers(0, 2))
    warm = bool(rng.integers(0, 2))
    record = bool(rng.integers(0, 2))
    trace = Trace(
        times=case.times, pages=case.pages, page_size=machine.page_bytes
    )
    prefill = warm_start_pages(trace) if warm else []
    context = (
        f"(model {model}, policy {'ON' if always_on else '2T'}, timeout "
        f"{timeout}, capacity {capacity} B, warm={warm}, events={record})"
    )

    def replay(profile):
        if model == "nap":
            memory = NapMemorySystem(spec, capacity)
        else:
            memory = PowerDownMemorySystem(spec, capacity)
        if prefill:
            memory.prefill(prefill)
        policy = AlwaysOnPolicy() if always_on else FixedTimeoutPolicy(timeout)
        engine = SimulationEngine(
            machine,
            memory,
            disk_policy=policy,
            label="verify-missrun",
            record_events=record,
        )
        return engine.run(trace, profile=profile), engine

    fast, fast_engine = replay(build_profile(trace, warm_start=warm))
    slow, slow_engine = replay(None)
    if fast.replay_mode != "missrun":
        return (
            f"fast path refused an eligible miss-run replay "
            f"(mode {fast.replay_mode}) {context}"
        )
    if slow.replay_mode != "scalar":
        return "reference run did not use the scalar loop"
    for f in dataclasses.fields(fast):
        if f.name == "replay_mode":
            continue
        diff = deep_diff(getattr(fast, f.name), getattr(slow, f.name), f.name)
        if diff is not None:
            return f"{diff} {context}"
    if record:
        diff = deep_diff(
            fast_engine.disk.events.events,
            slow_engine.disk.events.events,
            "disk_events",
        )
        if diff is not None:
            return f"{diff} {context}"
    return None


def check_writes(case: VerifyCase) -> Optional[str]:
    """Write-carrying vectorized replay vs the scalar engine loop, bit for bit.

    Rotates the nap and power-down memory models, random capacities,
    disk timeouts and warm starts, with fuzzed per-access write flags
    and a flush cadence short enough that periodic write-back sweeps
    land *inside* hit runs; the fast replay must reproduce every flush,
    dirty eviction and energy figure exactly.
    """
    from repro.memory.system import PowerDownMemorySystem
    from repro.sim.prefill import warm_start_pages

    if case.times.size == 0:
        return None
    machine = random_small_machine(case.seed)
    rng = np.random.default_rng(case.seed ^ 0x3317E5)
    spec = machine.memory
    banks = spec.installed_bytes // spec.bank_bytes
    capacity = spec.bank_bytes * int(rng.integers(1, banks + 1))
    timeout = float(
        rng.choice([0.0, 1.0, machine.disk.break_even_time_s, 30.0, math.inf])
    )
    model = ("nap", "pd")[int(rng.integers(0, 2))]
    warm = bool(rng.integers(0, 2))
    flush_interval = float(rng.choice([0.05, 1.0, 30.0]))
    writes = rng.random(case.times.size) < 0.4
    if not bool(writes.any()):
        writes[int(rng.integers(0, writes.size))] = True
    trace = Trace(
        times=case.times,
        pages=case.pages,
        page_size=machine.page_bytes,
        writes=writes,
    )
    prefill = warm_start_pages(trace) if warm else []

    def replay(profile):
        if model == "nap":
            memory = NapMemorySystem(spec, capacity)
        else:
            memory = PowerDownMemorySystem(spec, capacity)
        if prefill:
            memory.prefill(prefill)
        engine = SimulationEngine(
            machine,
            memory,
            disk_policy=FixedTimeoutPolicy(timeout),
            label="verify-writes",
            flush_interval_s=flush_interval,
        )
        return engine.run(trace, profile=profile)

    fast = replay(build_profile(trace, warm_start=warm))
    slow = replay(None)
    if fast.replay_mode != "writes":
        return f"fast path refused an eligible write run (mode {fast.replay_mode})"
    if slow.replay_mode != "scalar":
        return "reference run did not use the scalar loop"
    for f in dataclasses.fields(fast):
        if f.name == "replay_mode":
            continue
        diff = deep_diff(getattr(fast, f.name), getattr(slow, f.name), f.name)
        if diff is not None:
            return (
                f"{diff} (model {model}, timeout {timeout}, capacity "
                f"{capacity} B, warm={warm}, flush every {flush_interval}s)"
            )
    return None


def deep_diff(a, b, path: str = "result") -> Optional[str]:
    """First difference between two values, compared *exactly*.

    Recurses through dataclasses, lists/tuples, dicts and numpy arrays
    (``dataclasses.asdict`` equality breaks on arrays nested inside the
    joint decisions' evaluations).  Floats must be bit-equal apart from
    NaN, which compares equal to NaN -- the fast replays promise the
    identical floating-point operations, not merely close ones.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
            return f"{path}: array vs {type(b).__name__}"
        if a.shape != b.shape:
            return f"{path}: shape {a.shape} != {b.shape}"
        if not bool(np.array_equal(a, b, equal_nan=a.dtype.kind == "f")):
            return f"{path}: arrays differ"
        return None
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        if type(a) is not type(b):
            return f"{path}: {type(a).__name__} vs {type(b).__name__}"
        for f in dataclasses.fields(a):
            diff = deep_diff(
                getattr(a, f.name), getattr(b, f.name), f"{path}.{f.name}"
            )
            if diff is not None:
                return diff
        return None
    if isinstance(a, (list, tuple)):
        if type(a) is not type(b) or len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)!r}"
        for i, (x, y) in enumerate(zip(a, b)):
            diff = deep_diff(x, y, f"{path}[{i}]")
            if diff is not None:
                return diff
        return None
    if isinstance(a, dict):
        if not isinstance(b, dict) or set(a) != set(b):
            return f"{path}: keys differ"
        for k in a:
            diff = deep_diff(a[k], b[k], f"{path}[{k!r}]")
            if diff is not None:
                return diff
        return None
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return None
        return None if a == b else f"{path}: {a!r} != {b!r}"
    return None if a == b else f"{path}: {a!r} != {b!r}"


#: The joint ablation flag combinations check_epoch rotates through:
#: (enforce_constraints, adapt_memory, adapt_timeout) -- JOINT, JOINT-NC,
#: JOINT-TO, JOINT-MEM.
_EPOCH_VARIANTS = (
    (True, True, True),
    (False, True, True),
    (True, False, True),
    (True, True, False),
)


def check_epoch(case: VerifyCase) -> Optional[str]:
    """Epoch-segmented joint replay vs the scalar engine loop, bit for bit.

    The fuzzed access stream is stretched to span several manager periods
    so the epoch kernel crosses live boundaries (resizes, timeout
    updates, empty epochs); both replays then run through fresh engines
    and managers, and every ``SimResult`` field *and* every
    ``PeriodDecision`` -- including each candidate evaluation's
    prediction and fit -- must compare exactly equal.

    A second leg runs the same stretched stream through the
    disable-state (2TDS) memory model: its profile-free pure-hit-prefix
    replay (``replay_mode == "disable"``) must match a scalar run forced
    via the ``REPRO_KERNELS`` kill switch across bank invalidations,
    lazy disables and resurrection misses.
    """
    import os

    from repro.cache.profile import KERNELS_ENV
    from repro.core.enumeration import candidate_sizes
    from repro.memory.system import DisableMemorySystem
    from repro.sim.prefill import warm_start_pages

    if case.times.size == 0:
        return None
    machine = random_small_machine(case.seed)
    rng = np.random.default_rng(case.seed ^ 0xE90C)
    period = machine.manager.period_s
    # Stretch the stream across ~3.25 periods: interior boundaries, an
    # access-free trailing period, and at least two live resizes.
    span = max(float(case.times[-1]), 1e-3)
    times = case.times * (3.25 * period / span)
    trace = Trace(times=times, pages=case.pages, page_size=machine.page_bytes)

    flags = _EPOCH_VARIANTS[int(rng.integers(0, len(_EPOCH_VARIANTS)))]
    sizes = candidate_sizes(machine)
    initial = int(sizes[int(rng.integers(0, len(sizes)))])
    warm = bool(rng.integers(0, 2))
    prefill = warm_start_pages(trace) if warm else []

    def replay(profile):
        enforce, adapt_memory, adapt_timeout = flags
        manager = JointPowerManager(
            machine,
            initial_memory_bytes=initial,
            enforce_constraints=enforce,
            adapt_memory=adapt_memory,
            adapt_timeout=adapt_timeout,
        )
        memory = NapMemorySystem(machine.memory, manager.memory_bytes)
        if prefill:
            memory.prefill(prefill)
            manager.prefill(prefill)
        engine = SimulationEngine(
            machine, memory, joint_manager=manager, label="verify-epoch"
        )
        return engine.run(trace, profile=profile)

    fast = replay(build_profile(trace, warm_start=warm))
    slow = replay(None)
    if fast.replay_mode != "epoch":
        return f"fast path refused an eligible joint run (mode {fast.replay_mode})"
    if slow.replay_mode != "scalar":
        return "reference run did not use the scalar loop"
    for f in dataclasses.fields(fast):
        if f.name == "replay_mode":
            continue
        diff = deep_diff(getattr(fast, f.name), getattr(slow, f.name), f.name)
        if diff is not None:
            return (
                f"{diff} (flags {flags}, initial {initial} B, warm={warm}, "
                f"period {period}s)"
            )

    # --- disable-model (2TDS) leg ---------------------------------------
    spec = machine.memory
    banks = spec.installed_bytes // spec.bank_bytes
    ds_capacity = spec.bank_bytes * int(rng.integers(1, banks + 1))
    # Short timeouts relative to the stretched gaps exercise lazy
    # disables, invalidation misses and bank resurrections.
    ds_timeout = float(
        rng.choice([0.5, 30.0, 0.25 * period, machine.disk.break_even_time_s])
    )
    disk_timeout = float(rng.choice([0.0, 1.0, 30.0, math.inf]))

    def replay_ds():
        memory = DisableMemorySystem(spec, ds_capacity, timeout_s=ds_timeout)
        if prefill:
            memory.prefill(prefill)
        engine = SimulationEngine(
            machine,
            memory,
            disk_policy=FixedTimeoutPolicy(disk_timeout),
            label="verify-epoch-ds",
        )
        return engine.run(trace)

    fast_ds = replay_ds()
    previous = os.environ.get(KERNELS_ENV)
    os.environ[KERNELS_ENV] = "0"
    try:
        slow_ds = replay_ds()
    finally:
        if previous is None:
            os.environ.pop(KERNELS_ENV, None)
        else:
            os.environ[KERNELS_ENV] = previous
    if fast_ds.replay_mode != "disable":
        return (
            f"fast path refused an eligible 2TDS run (mode {fast_ds.replay_mode})"
        )
    if slow_ds.replay_mode != "scalar":
        return "2TDS reference run did not use the scalar loop"
    for f in dataclasses.fields(fast_ds):
        if f.name == "replay_mode":
            continue
        diff = deep_diff(
            getattr(fast_ds, f.name), getattr(slow_ds, f.name), f.name
        )
        if diff is not None:
            return (
                f"{diff} (2TDS leg: bank timeout {ds_timeout}s, capacity "
                f"{ds_capacity} B, disk timeout {disk_timeout}, warm={warm})"
            )
    return None


#: Method families the stream check rotates through: the four joint
#: ablations (stream-epoch; stream-scalar when the fuzz adds writes),
#: two profiled-replay fixed-timeout methods (stream-vectorized, or
#: stream-writes under writes) and the disable model (stream-disable).
_STREAM_METHODS = (
    "JOINT",
    "JOINT-NC",
    "JOINT-MEM",
    "JOINT-TO",
    "2TNAP",
    "2TPD",
    "2TDS",
)


def check_stream(case: VerifyCase) -> Optional[str]:
    """Streaming replay vs the offline run of the same sequence, bit for bit.

    The fuzzed stream is stretched across several manager periods, fed to
    a :class:`~repro.service.streaming.StreamingManager` in random ragged
    batches (empty batches and idle ``advance`` calls interleaved, and
    occasionally an access snapped to an exact period boundary -- the
    epoch-edge case), then closed at the offline run's duration.  Every
    ``SimResult`` field must compare exactly equal to ``run_method`` on
    the identical access sequence, and the stream must land on the
    streaming twin of the offline replay mode.
    """
    from repro.service.streaming import StreamingManager
    from repro.sim.prefill import warm_start_pages
    from repro.sim.runner import run_method

    if case.times.size == 0:
        return None
    machine = random_small_machine(case.seed)
    rng = np.random.default_rng(case.seed ^ 0x57A3)
    period = machine.manager.period_s
    span = max(float(case.times[-1]), 1e-3)
    times = case.times * (3.25 * period / span)
    if times.size >= 2 and rng.random() < 0.7:
        # Snap one access onto an exact boundary: the off-by-one epoch
        # edge (side='left' vs 'right') only shows up on exact ties.
        k = int(rng.integers(0, times.size))
        times = times.copy()
        times[k] = period * max(int(round(times[k] / period)), 1)
        times = np.sort(times)
    method = _STREAM_METHODS[int(rng.integers(0, len(_STREAM_METHODS)))]
    writes = None
    if rng.random() < 0.25:
        writes = rng.random(times.size) < 0.3
    trace = Trace(
        times=times,
        pages=case.pages,
        page_size=machine.page_bytes,
        writes=writes,
    )
    warm = bool(rng.integers(0, 2))
    duration = max(int(np.ceil(float(times[-1]) / period)), 1) * period
    prefill = warm_start_pages(trace) if warm else []
    context = f"(method {method}, warm={warm}, writes={writes is not None})"

    offline = run_method(
        method, trace, machine, duration_s=float(duration), warm_start=warm
    )
    stream = StreamingManager(
        method,
        machine,
        prefill=prefill,
        expect_writes=writes is not None and bool(writes.any()),
    )
    n = times.size
    cuts = sorted(rng.integers(0, n + 1, size=int(rng.integers(1, 8))).tolist())
    bounds = [0] + cuts + [n]
    for lo, hi in zip(bounds, bounds[1:]):
        stream.feed(
            times[lo:hi],
            case.pages[lo:hi],
            None if writes is None else writes[lo:hi],
        )
        if rng.random() < 0.4:
            # Idle advance within the gap to the next batch: boundaries
            # that the fire rule allows must not change the outcome.
            next_first = float(times[hi]) if hi < n else float(duration)
            gap = next_first - stream.watermark
            stream.advance(stream.watermark + rng.random() * max(gap, 0.0))
    result = stream.close(float(duration))

    expected_mode = f"stream-{offline.replay_mode}"
    if result.replay_mode != expected_mode:
        return (
            f"stream replay mode {result.replay_mode} != expected "
            f"{expected_mode} {context}"
        )
    for f in dataclasses.fields(result):
        if f.name == "replay_mode":
            continue
        diff = deep_diff(getattr(result, f.name), getattr(offline, f.name), f.name)
        if diff is not None:
            return f"{diff} {context}"
    return None


def _timeouts_equal(a: Optional[float], b: Optional[float]) -> bool:
    if a is None or b is None:
        return a is None and b is None
    return math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-12)


#: Check registry, in the order ``repro verify`` runs them.
CHECKS: Dict[str, Callable[[VerifyCase], Optional[str]]] = {
    "stack": check_stack_distance,
    "intervals": check_intervals,
    "predictor": check_predictor,
    "joint": check_joint,
    "energy": check_energy,
    "kernels": check_kernels,
    "missrun": check_missrun,
    "writes": check_writes,
    "epoch": check_epoch,
    "optimal": check_optimal,
    "stream": check_stream,
    "fleet": check_fleet,
}


# --- the runner ---------------------------------------------------------------


def run_differential(
    seeds: int = 50,
    checks: Optional[Sequence[str]] = None,
    first_seed: int = 0,
    max_accesses: int = 300,
    on_progress: Optional[Callable[[str, int], None]] = None,
) -> VerifyReport:
    """Replay ``seeds`` fuzzed workloads through every requested check.

    Stops each check at its first divergence and minimizes the failing
    access stream with :func:`minimize_accesses`; the other checks still
    run, so one report shows every broken subsystem.
    """
    if seeds <= 0:
        raise SimulationError("need at least one seed")
    names = list(CHECKS) if checks is None else list(checks)
    for name in names:
        if name not in CHECKS:
            raise SimulationError(
                f"unknown check {name!r}; available: {', '.join(CHECKS)}"
            )
    report = VerifyReport(first_seed=first_seed, seeds=seeds)
    for name in names:
        fn = CHECKS[name]
        outcome = CheckOutcome(name=name, seeds_run=seeds)
        for offset in range(seeds):
            seed = first_seed + offset
            if on_progress is not None:
                on_progress(name, seed)
            case = random_case(seed, max_accesses=max_accesses)
            detail = _run_safely(fn, case)
            if detail is not None:
                minimized = _minimize(case, fn)
                final_detail = _run_safely(fn, minimized) or detail
                outcome = CheckOutcome(
                    name=name,
                    seeds_run=offset + 1,
                    divergence=Divergence(
                        check=name,
                        seed=seed,
                        pattern=case.pattern,
                        detail=final_detail,
                        times=tuple(minimized.times.tolist()),
                        pages=tuple(int(p) for p in minimized.pages.tolist()),
                        window_s=case.window_s,
                        period_s=case.period_s,
                    ),
                )
                break
        report.outcomes.append(outcome)
    return report


def _run_safely(
    fn: Callable[[VerifyCase], Optional[str]], case: VerifyCase
) -> Optional[str]:
    """An exception in either path is itself a divergence, not a crash."""
    try:
        return fn(case)
    except Exception as exc:  # noqa: BLE001 - report, don't die mid-fuzz
        return f"exception during check: {type(exc).__name__}: {exc}"


def _minimize(
    case: VerifyCase, fn: Callable[[VerifyCase], Optional[str]]
) -> VerifyCase:
    pairs = case.accesses

    def fails(candidate: List[Tuple[float, int]]) -> bool:
        return _run_safely(fn, _rebuild(case, candidate)) is not None

    try:
        return _rebuild(case, minimize_accesses(pairs, fails))
    except SimulationError:
        return case
