"""Differential verification: brute-force oracles + trace fuzzing.

Every optimisation in this reproduction (the Fenwick-tree stack tracker,
the one-pass resize predictor, the closed-form eq. (2)-(6) timeout
mathematics, the incremental drive energy accounting) has a slow,
obviously-correct twin in :mod:`repro.verify.oracles`.  The differential
runner (:mod:`repro.verify.differential`, surfaced on the CLI as
``repro verify``) replays fuzzed workloads through both and delta-debugs
any divergence down to a minimal reproducer;
:mod:`repro.verify.strategies` supplies the fuzzed inputs, both as
Hypothesis strategies and as seed-addressable generators.
"""

from repro.verify.differential import (
    CHECKS,
    CheckOutcome,
    Divergence,
    VerifyReport,
    minimize_accesses,
    run_differential,
)
from repro.verify.optimal import (
    OptReplay,
    compute_next_use,
    naive_opt_replay,
    offline_disk_energy,
    opt_replay,
)
from repro.verify.strategies import VerifyCase, random_case, random_small_machine

__all__ = [
    "CHECKS",
    "CheckOutcome",
    "Divergence",
    "OptReplay",
    "VerifyCase",
    "VerifyReport",
    "compute_next_use",
    "minimize_accesses",
    "naive_opt_replay",
    "offline_disk_energy",
    "opt_replay",
    "random_case",
    "random_small_machine",
    "run_differential",
]
