"""Per-depth hit counters of the extended LRU list (paper Fig. 3).

"When the referenced page is the i-th item from the top of the LRU list,
the i-th counter increases by one.  The values of these counters are used
to estimate the number of disk accesses with different memory sizes."

With 0-based depths: an access at depth ``d`` hits any cache of more than
``d`` pages.  Therefore, for a candidate size of ``m`` pages::

    misses(m) = cold_misses + #accesses with depth >= m
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import SimulationError

#: Depth value recorded for a first-ever access (no previous reference).
COLD_MISS = -1


class DepthCounters:
    """Histogram of stack depths plus a cold-miss count."""

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._cold = 0
        self._total = 0

    # --- recording --------------------------------------------------------------

    def record(self, depth: int) -> None:
        """Record one access at ``depth`` (:data:`COLD_MISS` for cold)."""
        if depth == COLD_MISS:
            self._cold += 1
        elif depth < 0:
            raise SimulationError(f"invalid stack depth {depth}")
        else:
            self._counts[depth] = self._counts.get(depth, 0) + 1
        self._total += 1

    def record_many(self, depths: Sequence[int]) -> None:
        for depth in depths:
            self.record(depth)

    def reset(self) -> None:
        """Start a fresh observation window (the LRU state is unaffected)."""
        self._counts.clear()
        self._cold = 0
        self._total = 0

    # --- queries ------------------------------------------------------------------

    @property
    def total_accesses(self) -> int:
        return self._total

    @property
    def cold_misses(self) -> int:
        return self._cold

    @property
    def max_depth(self) -> int:
        """Deepest recorded reuse depth, or -1 when none."""
        return max(self._counts) if self._counts else -1

    def hits_at(self, depth: int) -> int:
        """Accesses recorded exactly at ``depth``."""
        return self._counts.get(depth, 0)

    def misses_at_size(self, capacity_pages: int) -> int:
        """Disk accesses a cache of ``capacity_pages`` would see.

        Equal to cold misses plus all accesses at depth >= capacity.
        """
        if capacity_pages < 0:
            raise SimulationError("capacity must be non-negative")
        deep = sum(
            count for depth, count in self._counts.items() if depth >= capacity_pages
        )
        return self._cold + deep

    def misses_at_sizes(self, capacities: Sequence[int]) -> List[int]:
        """Vectorised :meth:`misses_at_size` for many candidates."""
        if not len(capacities):
            return []
        caps = np.asarray(capacities, dtype=np.int64)
        if np.any(caps < 0):
            raise SimulationError("capacities must be non-negative")
        if not self._counts:
            return [self._cold] * len(capacities)
        depths = np.fromiter(self._counts.keys(), dtype=np.int64, count=len(self._counts))
        counts = np.fromiter(
            self._counts.values(), dtype=np.int64, count=len(self._counts)
        )
        order = np.argsort(depths)
        depths, counts = depths[order], counts[order]
        suffix = np.concatenate((np.cumsum(counts[::-1])[::-1], [0]))
        positions = np.searchsorted(depths, caps, side="left")
        return (self._cold + suffix[positions]).tolist()

    def miss_ratio_curve(self, max_capacity: int) -> np.ndarray:
        """Miss counts for every capacity ``0..max_capacity`` inclusive."""
        if max_capacity < 0:
            raise SimulationError("capacity must be non-negative")
        return np.asarray(
            self.misses_at_sizes(list(range(max_capacity + 1))), dtype=np.int64
        )
