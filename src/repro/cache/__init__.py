"""Disk-cache simulation and resize prediction.

* :mod:`repro.cache.lru` -- the resident-page LRU disk cache (the paper's
  "simulation of the disk cache ... implemented using the same algorithm as
  the disk cache in Linux").
* :mod:`repro.cache.stack_distance` -- Mattson stack distances computed
  online in ``O(log n)`` per access.
* :mod:`repro.cache.counters` -- the per-depth hit counters of the extended
  LRU list (paper Fig. 3).
* :mod:`repro.cache.ghost` -- a literal extended LRU list (resident +
  replaced pages), used for tests and small workloads; the tracker +
  counters pair is the fast equivalent.
* :mod:`repro.cache.predictor` -- disk-IO and idle-interval prediction at
  arbitrary candidate memory sizes (paper Figs. 3-4).
* :mod:`repro.cache.readahead` -- sequential-miss clustering into disk
  requests.
"""

from repro.cache.counters import COLD_MISS, DepthCounters
from repro.cache.ghost import ExtendedLRUList
from repro.cache.lru import LRUCache
from repro.cache.mrc import MissRatioCurve, build_mrc, working_set_pages
from repro.cache.predictor import CandidatePrediction, ResizePredictor
from repro.cache.readahead import ReadaheadClusterer
from repro.cache.stack_distance import StackDistanceTracker

__all__ = [
    "COLD_MISS",
    "CandidatePrediction",
    "DepthCounters",
    "ExtendedLRUList",
    "LRUCache",
    "MissRatioCurve",
    "build_mrc",
    "working_set_pages",
    "ReadaheadClusterer",
    "ResizePredictor",
    "StackDistanceTracker",
]
