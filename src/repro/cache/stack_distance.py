"""Online Mattson stack distances in ``O(log n)`` per access.

The stack (LRU) distance of an access is the number of *distinct* pages
referenced since the previous access to the same page.  Under LRU, an
access hits a cache of ``m`` pages iff its stack distance is smaller than
``m`` -- this is the inclusion property the paper's extended LRU list
exploits (Section II-C, [33]).

Classic algorithm: keep, for every page, the index of its most recent
access; maintain a Fenwick (binary indexed) tree with a 1 at each index
that is currently "the most recent access of some page".  The stack
distance of a new access to page ``p`` previously seen at index ``i`` is
the number of 1s strictly after ``i``.

The tree is compacted when the index space fills: live indices (one per
distinct page) are renumbered in order.  Compaction is ``O(P log P)`` for
``P`` distinct pages and happens every ``O(capacity)`` accesses, so the
amortised cost stays logarithmic.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import SimulationError

#: Returned for the first access to a page (infinite stack distance).
COLD = -1


class _Fenwick:
    """Prefix-sum tree over a fixed index range."""

    def __init__(self, size: int) -> None:
        self.size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        while i <= self.size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries in ``[0, index]``."""
        i = index + 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    @property
    def total(self) -> int:
        return self.prefix_sum(self.size - 1) if self.size else 0


class StackDistanceTracker:
    """Streaming LRU stack-distance computation.

    >>> tracker = StackDistanceTracker()
    >>> [tracker.access(p) for p in (1, 2, 1, 2, 3, 1)]
    [-1, -1, 1, 1, -1, 2]
    """

    def __init__(self, initial_capacity: int = 1 << 16) -> None:
        if initial_capacity < 4:
            raise SimulationError("initial capacity too small")
        self._capacity = initial_capacity
        self._tree = _Fenwick(self._capacity)
        self._last_index: Dict[int, int] = {}
        self._next_index = 0
        #: Running count of live indices (1s in the tree).  Equal to
        #: ``self._tree.total`` at all times, but maintained incrementally
        #: so ``access`` pays one prefix sum instead of two.
        self._live = 0

    @property
    def distinct_pages(self) -> int:
        """Number of pages seen so far."""
        return len(self._last_index)

    def access(self, page: int) -> int:
        """Record an access; return its stack distance (:data:`COLD` if new).

        Distance 0 means the page was the most recently used one; under
        LRU the access hits a cache of ``m`` pages iff ``0 <= d < m``.
        """
        if self._next_index >= self._capacity:
            self._compact()
        previous = self._last_index.get(page)
        index = self._next_index
        self._next_index += 1
        if previous is None:
            distance = COLD
            self._live += 1
        else:
            # Distinct pages accessed strictly after `previous` -- exactly
            # the pages above this one in the LRU stack (depth 0 = MRU).
            # The live count replaces the O(log n) ``_tree.total`` sum.
            distance = self._live - self._tree.prefix_sum(previous)
            self._tree.add(previous, -1)
        self._tree.add(index, +1)
        self._last_index[page] = index
        return distance

    def access_array(self, pages) -> np.ndarray:
        """Batch :meth:`access`: distances for a whole page array.

        The one-pass building block of
        :class:`repro.cache.profile.TraceProfile`: identical semantics to
        calling :meth:`access` per element, but with the method lookups
        hoisted and the distances written straight into one ``int64``
        array (no per-access list growth).
        """
        pages = np.asarray(pages)
        out = np.empty(pages.size, dtype=np.int64)
        access = self.access
        for i, page in enumerate(pages.tolist()):
            out[i] = access(page)
        return out

    def forget(self, page: int) -> None:
        """Remove a page from the stack (e.g. after trimming history)."""
        previous = self._last_index.pop(page, None)
        if previous is not None:
            self._tree.add(previous, -1)
            self._live -= 1

    def _compact(self) -> None:
        """Renumber live indices to the front, growing if nearly full."""
        live = sorted(self._last_index.items(), key=lambda item: item[1])
        needed = max(len(live) * 2, 4)
        if needed > self._capacity:
            self._capacity = max(self._capacity * 2, needed)
        self._tree = _Fenwick(self._capacity)
        self._last_index = {}
        for new_index, (page, _) in enumerate(live):
            self._last_index[page] = new_index
            self._tree.add(new_index, +1)
        self._next_index = len(live)
        self._live = len(live)
        if self._next_index >= self._capacity:
            raise SimulationError("stack-distance compaction failed to make room")
