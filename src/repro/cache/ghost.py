"""A literal extended LRU list (paper Section IV-B, Fig. 3).

"Different from the LRU list used in operating systems to manage the disk
cache, our LRU list records both resident memory pages and replaced memory
pages as if the replaced pages are still stored in additional physical
memory."

This class mirrors the paper's worked example exactly: a bounded list of
page tags ordered by recency, split conceptually into resident (top
``resident_pages`` items) and replaced ("ghost") entries, with one counter
per list position.  It is the readable reference implementation; the
production path uses :class:`~repro.cache.stack_distance.StackDistanceTracker`
plus :class:`~repro.cache.counters.DepthCounters`, which computes identical
counters in logarithmic time (equivalence is property-tested).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.cache.counters import COLD_MISS
from repro.errors import SimulationError


class ExtendedLRUList:
    """Resident + replaced page list with per-position hit counters."""

    def __init__(self, total_slots: int, resident_pages: int) -> None:
        if total_slots <= 0:
            raise SimulationError("the LRU list needs at least one slot")
        if not 0 <= resident_pages <= total_slots:
            raise SimulationError("resident part must fit inside the list")
        self._slots = total_slots
        self._resident = resident_pages
        self._list: "OrderedDict[int, None]" = OrderedDict()  # MRU last
        self.counters: List[int] = [0] * total_slots

    # --- inspection -----------------------------------------------------------

    @property
    def total_slots(self) -> int:
        return self._slots

    @property
    def resident_pages(self) -> int:
        return self._resident

    def contents(self) -> List[int]:
        """Page tags from most to least recently used."""
        return list(reversed(self._list.keys()))

    def position_of(self, page: int) -> Optional[int]:
        """0-based position from the top, or None if absent."""
        contents = self.contents()
        try:
            return contents.index(page)
        except ValueError:
            return None

    def is_resident(self, page: int) -> bool:
        """Would this page be in memory (top ``resident_pages`` items)?"""
        position = self.position_of(page)
        return position is not None and position < self._resident

    # --- operation --------------------------------------------------------------

    def access(self, page: int) -> int:
        """Record an access; return its 0-based list position (:data:`COLD_MISS`
        if the page fell off the list or was never seen).

        The position is the stack depth: the access hits a memory of ``m``
        pages iff ``0 <= position < m``.  Counters index positions 0-based
        (the paper's "i-th counter" with i starting at 1).
        """
        position = self.position_of(page)
        if position is not None:
            self.counters[position] += 1
            self._list.move_to_end(page)
            return position
        if len(self._list) >= self._slots:
            self._list.popitem(last=False)
        self._list[page] = None
        return COLD_MISS

    def resize_resident(self, resident_pages: int) -> None:
        """Move the resident/replaced boundary (memory grew or shrank).

        The list itself is unchanged -- that is the whole point of the
        structure: one list serves every candidate memory size.
        """
        if not 0 <= resident_pages <= self._slots:
            raise SimulationError("resident part must fit inside the list")
        self._resident = resident_pages

    def misses_if_resident(self, resident_pages: int) -> int:
        """Hits the counters predict would become misses at a smaller size,
        i.e. the number of recorded accesses at positions >= ``resident_pages``.

        Add the cold misses (tracked by the caller) for total disk accesses.
        """
        if not 0 <= resident_pages <= self._slots:
            raise SimulationError("size must fit inside the list")
        return sum(self.counters[resident_pages:])
