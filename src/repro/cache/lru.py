"""Resident-page LRU disk cache.

Models the Linux page cache at page granularity: a capacity-bounded LRU
over page numbers.  ``access`` returns whether the page was resident
(memory access) or not (disk access + load).  The capacity can be resized
at runtime; shrinking evicts from the LRU end, which is what happens when
memory banks are invalidated (paper Section I).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional

from repro.errors import SimulationError


class LRUCache:
    """A page-granularity LRU cache with runtime resizing."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 0:
            raise SimulationError("cache capacity must be non-negative")
        self._capacity = capacity_pages
        self._pages: "OrderedDict[int, None]" = OrderedDict()
        #: Page evicted by the most recent access/load (None if none).
        self.last_evicted: Optional[int] = None

    # --- inspection -----------------------------------------------------------

    @property
    def capacity_pages(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page: int) -> bool:
        return page in self._pages

    def resident_pages(self) -> List[int]:
        """Pages currently cached, most recently used first."""
        return list(reversed(self._pages.keys()))

    # --- operation --------------------------------------------------------------

    def access(self, page: int) -> bool:
        """Touch ``page``; return True on hit, False on miss.

        A miss loads the page, evicting the least recently used page if
        the cache is full.  With zero capacity every access misses and
        nothing is cached.
        """
        self.last_evicted = None
        if page in self._pages:
            self._pages.move_to_end(page)
            return True
        if self._capacity > 0:
            if len(self._pages) >= self._capacity:
                evicted, _ = self._pages.popitem(last=False)
                self.last_evicted = evicted
            self._pages[page] = None
        return False

    def touch_run(self, pages: Iterable[int]) -> None:
        """Refresh recency for a run of *resident* pages, in order.

        Equivalent to calling :meth:`access` on each page when every one
        is already cached (a pure hit run): no evictions, no loads, and
        ``last_evicted`` ends up None.  Raises ``KeyError`` on a
        non-resident page -- the vectorized write-replay kernel uses
        that as a loud signal that its hit classification was wrong.
        """
        move = self._pages.move_to_end
        for page in pages:
            move(page)
        self.last_evicted = None

    def peek(self, page: int) -> bool:
        """True if resident, without updating recency."""
        return page in self._pages

    def load(self, page: int) -> Optional[int]:
        """Insert a non-resident page; return the evicted page, if any.

        Raises if the page is already resident (use :meth:`access` for the
        common path).  With zero capacity the load is a no-op.
        """
        self.last_evicted = None
        if page in self._pages:
            raise SimulationError(f"page {page} is already resident")
        if self._capacity == 0:
            return None
        evicted = None
        if len(self._pages) >= self._capacity:
            evicted, _ = self._pages.popitem(last=False)
            self.last_evicted = evicted
        self._pages[page] = None
        return evicted

    def invalidate(self, pages: Iterable[int]) -> int:
        """Drop the given pages if resident; return how many were dropped."""
        dropped = 0
        for page in pages:
            if page in self._pages:
                del self._pages[page]
                dropped += 1
        return dropped

    def resize(self, capacity_pages: int) -> List[int]:
        """Change capacity; return the pages evicted by a shrink (LRU first)."""
        if capacity_pages < 0:
            raise SimulationError("cache capacity must be non-negative")
        self._capacity = capacity_pages
        evicted = []
        while len(self._pages) > self._capacity:
            page, _ = self._pages.popitem(last=False)
            evicted.append(page)
        return evicted

    def clear(self) -> None:
        """Invalidate everything (all banks disabled)."""
        self._pages.clear()

    def lru_page(self) -> Optional[int]:
        """The least recently used resident page, or None when empty."""
        if not self._pages:
            return None
        return next(iter(self._pages))
