"""Miss-ratio curves: construction, knee finding, working sets.

The joint manager consumes miss counts at a handful of candidate sizes;
capacity planning wants the whole curve.  This module builds the exact
LRU miss-ratio curve of a trace in one pass (Mattson), locates its
*knee* (where buying more memory stops paying) and estimates Denning
working-set sizes -- the quantities behind the "memory size close to the
data set" behaviour the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cache.counters import DepthCounters
from repro.cache.stack_distance import StackDistanceTracker
from repro.errors import TraceError
from repro.traces.trace import Trace


@dataclass(frozen=True)
class MissRatioCurve:
    """Exact LRU miss ratios at every cache size ``0..max_pages``."""

    #: ``ratios[m]`` = miss ratio with a cache of ``m`` pages.
    ratios: np.ndarray
    page_size: int
    total_accesses: int
    cold_misses: int

    @property
    def max_pages(self) -> int:
        return int(self.ratios.size - 1)

    @property
    def floor(self) -> float:
        """The unavoidable (cold-miss) ratio at infinite cache."""
        if self.total_accesses == 0:
            return 0.0
        return self.cold_misses / self.total_accesses

    def ratio_at(self, pages: int) -> float:
        """Miss ratio at ``pages`` (sizes beyond the curve hit the floor)."""
        if pages < 0:
            raise TraceError("cache size must be non-negative")
        if pages >= self.ratios.size:
            return float(self.ratios[-1])
        return float(self.ratios[pages])

    def knee_pages(self, epsilon: float = 0.01) -> int:
        """Smallest size whose ratio is within ``epsilon`` of the floor.

        The paper's manager gravitates here whenever memory power is in
        its normal range (see the hw-sensitivity experiment): beyond the
        knee, extra memory buys less than ``epsilon`` of hit ratio.
        """
        if not 0.0 < epsilon < 1.0:
            raise TraceError("epsilon must be in (0, 1)")
        target = self.ratios[-1] + epsilon
        below = np.flatnonzero(self.ratios <= target)
        return int(below[0]) if below.size else self.max_pages

    def bytes_for_ratio(self, target_ratio: float) -> int:
        """Smallest cache (bytes) achieving ``target_ratio`` or better.

        Raises when the target lies below the cold-miss floor.
        """
        if not 0.0 <= target_ratio <= 1.0:
            raise TraceError("target ratio must be in [0, 1]")
        reachable = np.flatnonzero(self.ratios <= target_ratio)
        if reachable.size == 0:
            raise TraceError(
                f"ratio {target_ratio} unreachable; the cold-miss floor is "
                f"{float(self.ratios[-1]):.4f}"
            )
        return int(reachable[0]) * self.page_size


def build_mrc(trace: Trace, max_pages: int | None = None) -> MissRatioCurve:
    """One-pass exact LRU miss-ratio curve of a trace."""
    if trace.num_accesses == 0:
        raise TraceError("cannot build a curve from an empty trace")
    tracker = StackDistanceTracker()
    counters = DepthCounters()
    for page in trace.pages:
        counters.record(tracker.access(int(page)))
    if max_pages is None:
        max_pages = max(counters.max_depth + 1, 1)
    misses = counters.miss_ratio_curve(max_pages)
    return MissRatioCurve(
        ratios=misses / trace.num_accesses,
        page_size=trace.page_size,
        total_accesses=trace.num_accesses,
        cold_misses=counters.cold_misses,
    )


def working_set_pages(
    trace: Trace, window_s: float, sample_times: Sequence[float] | None = None
) -> float:
    """Denning working set: mean distinct pages touched per ``window_s``.

    Sampled at ``sample_times`` (defaults to non-overlapping windows over
    the trace).  The joint manager's chosen size typically tracks the
    working set of roughly one period.
    """
    if trace.num_accesses == 0:
        raise TraceError("cannot measure the working set of an empty trace")
    if window_s <= 0:
        raise TraceError("window must be positive")
    duration = trace.duration_s
    if sample_times is None:
        count = max(int(duration // window_s), 1)
        sample_times = [i * window_s for i in range(count)]
    sizes = []
    for start in sample_times:
        end = start + window_s
        lo = int(np.searchsorted(trace.times, start, side="left"))
        hi = int(np.searchsorted(trace.times, end, side="left"))
        if hi > lo:
            sizes.append(np.unique(trace.pages[lo:hi]).size)
    if not sizes:
        raise TraceError("no sample window contains any access")
    return float(np.mean(sizes))
