"""Shared trace profiles: one stack-distance pass, every sweep point.

Mattson's stack algorithm (the paper's Section IV-B insight) yields the
hit/miss outcome of every access for *all* LRU cache sizes from a single
pass: an access with stack distance ``d`` hits a cache of ``m`` pages iff
``0 <= d < m``.  A :class:`TraceProfile` is that single pass, stored as a
numpy array of per-access stack distances, computed once per trace and
shared by

* every memory size a sweep visits,
* every method replayed on the same workload (the profile depends only on
  the access stream, not on the disk policy), and
* every later campaign run, through the content-addressed result cache
  (:mod:`repro.campaign.cache`) the campaign subsystem already maintains.

The profile optionally folds in the warm-start prefill
(:func:`repro.sim.prefill.warm_start_pages`): feeding the prefill
sequence through the tracker first makes the profile's distances agree
with a cache prefilled the way :meth:`MemorySystem.prefill` does it, for
*every* capacity at once (the prefill keeps the hottest tail, which is
exactly the top of the LRU stack).

Profiles are content-addressed by a digest over the trace arrays, the
prefill flag and the code fingerprint, so a cached profile can never be
replayed against a different trace or stale code.  Persistence goes
through the same ``ResultCache`` JSON objects the campaign executor uses
(distances are zlib-compressed, base64-encoded ``int32``).
"""

from __future__ import annotations

import base64
import hashlib
import os
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.cache.stack_distance import StackDistanceTracker
from repro.errors import SimulationError

#: Bump when the profile payload layout changes (invalidates old entries).
PROFILE_SCHEMA = 1

#: Default in-process memo capacity (profiles are O(trace) sized).
DEFAULT_MEMO_CAPACITY = 8

#: Environment override for the memo capacity.  Cross-trace grid sweeps
#: (:mod:`repro.campaign.gridscan`) revisit many profiles round-robin,
#: so the 8-entry default thrashes; raise it for such runs.
PROFILE_MEMO_ENV = "REPRO_PROFILE_MEMO"

#: Environment switch: set to ``0``/``off`` to disable profile use and
#: force every replay through the scalar loop (debugging escape hatch).
KERNELS_ENV = "REPRO_KERNELS"


def memo_capacity() -> int:
    """The in-process memo's entry limit (``$REPRO_PROFILE_MEMO``).

    Read per call so tests and long-lived services can retune without a
    restart.  Invalid or non-positive values fall back to the default.
    """
    raw = os.environ.get(PROFILE_MEMO_ENV, "").strip()
    if not raw:
        return DEFAULT_MEMO_CAPACITY
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_MEMO_CAPACITY
    return value if value > 0 else DEFAULT_MEMO_CAPACITY


def kernels_enabled() -> bool:
    """False when ``$REPRO_KERNELS`` asks for the scalar loop everywhere."""
    return os.environ.get(KERNELS_ENV, "").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


@dataclass(frozen=True)
class TraceProfile:
    """Per-access stack distances of one trace (plus prefill), one pass."""

    #: Stack distance of each trace access (``-1`` = cold/first access).
    depths: np.ndarray
    #: Whether the warm-start prefill sequence seeded the distances.
    warm_start: bool
    #: Content address (trace arrays + prefill flag + code fingerprint).
    key: str

    def __len__(self) -> int:
        return int(self.depths.size)

    @property
    def num_accesses(self) -> int:
        return len(self)

    def hit_mask(self, capacity_pages: int, length: Optional[int] = None) -> np.ndarray:
        """Boolean hit flags for an LRU cache of ``capacity_pages`` pages.

        ``length`` truncates to the first accesses (duration clipping).
        """
        depths = self.depths if length is None else self.depths[:length]
        return (depths >= 0) & (depths < capacity_pages)

    def sorted_depths(self) -> np.ndarray:
        """The depths sorted ascending, cached after the first call.

        Cold accesses (``-1``) sort first, so the hit count of *every*
        capacity is two ``searchsorted`` calls away -- the backbone of
        the cross-trace grid sweeps (:mod:`repro.campaign.gridscan`).
        """
        cached = getattr(self, "_sorted_depths", None)
        if cached is None:
            cached = np.sort(self.depths)
            cached.setflags(write=False)
            object.__setattr__(self, "_sorted_depths", cached)
        return cached

    def hit_counts(self, capacities_pages) -> np.ndarray:
        """Hits at each LRU capacity (vectorized Mattson counting).

        ``capacities_pages`` is an array of page capacities; the result
        aligns with it.  An access of depth ``d`` hits capacity ``m``
        iff ``0 <= d < m``, so the count is the number of sorted depths
        inside ``[0, m)``.
        """
        capacities = np.asarray(capacities_pages, dtype=np.int64)
        ordered = self.sorted_depths()
        warm_lo = int(np.searchsorted(ordered, 0, side="left"))
        return np.searchsorted(ordered, capacities, side="left") - warm_lo

    def miss_counts(self, capacities_pages) -> np.ndarray:
        """Misses (cold + over-capacity) at each LRU capacity."""
        return len(self) - self.hit_counts(capacities_pages)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe encoding for the campaign result cache."""
        raw = np.ascontiguousarray(self.depths, dtype=np.int32).tobytes()
        return {
            "kind": "trace_profile",
            "schema": PROFILE_SCHEMA,
            "n": self.num_accesses,
            "warm_start": self.warm_start,
            "dtype": "int32",
            "depths": base64.b64encode(zlib.compress(raw, 6)).decode("ascii"),
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], key: str
    ) -> Optional["TraceProfile"]:
        """Decode a cached payload; None when the entry is unusable."""
        try:
            if (
                payload.get("kind") != "trace_profile"
                or payload.get("schema") != PROFILE_SCHEMA
                or payload.get("dtype") != "int32"
            ):
                return None
            raw = zlib.decompress(base64.b64decode(payload["depths"]))
            depths = np.frombuffer(raw, dtype=np.int32)
            if depths.size != int(payload["n"]):
                return None
        except (KeyError, ValueError, TypeError, zlib.error):
            return None
        depths = depths.astype(np.int64)
        depths.setflags(write=False)
        return cls(
            depths=depths, warm_start=bool(payload["warm_start"]), key=key
        )


# --- content addressing -------------------------------------------------------


def trace_fingerprint(trace) -> str:
    """SHA-256 over the arrays that determine the profile."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(trace.times, dtype=np.float64).tobytes())
    h.update(b"\0")
    h.update(np.ascontiguousarray(trace.pages, dtype=np.int64).tobytes())
    h.update(b"\0")
    if trace.writes is not None:
        h.update(np.ascontiguousarray(trace.writes, dtype=bool).tobytes())
    h.update(b"\0")
    h.update(str(trace.page_size).encode("ascii"))
    return h.hexdigest()


def profile_key(trace, warm_start: bool) -> str:
    """The profile's content address in the campaign result cache."""
    from repro.campaign.hashing import task_key

    return task_key(
        {
            "kind": "trace_profile",
            "schema": PROFILE_SCHEMA,
            "trace": trace_fingerprint(trace),
            "warm_start": bool(warm_start),
        }
    )


# --- construction and caching -------------------------------------------------


def build_profile(trace, warm_start: bool = True, key: Optional[str] = None) -> TraceProfile:
    """One tracker pass over (prefill +) trace; no caches consulted."""
    tracker = StackDistanceTracker()
    if warm_start:
        from repro.sim.prefill import warm_start_pages

        access = tracker.access
        for page in warm_start_pages(trace):
            access(page)
    depths = tracker.access_array(trace.pages)
    if depths.size and int(depths.max()) >= np.iinfo(np.int32).max:
        raise SimulationError("stack distance overflows the profile encoding")
    depths.setflags(write=False)
    return TraceProfile(
        depths=depths,
        warm_start=warm_start,
        key=key if key is not None else profile_key(trace, warm_start),
    )


#: key -> TraceProfile, least recently used first.
_memo: "OrderedDict[str, TraceProfile]" = OrderedDict()

#: The process-wide persistence backend (a ``ResultCache``-like object),
#: installed by campaign runs and ``repro bench``; None = memo only.
_active_cache: Any = None

#: Sentinel distinguishing "use the active cache" from an explicit None.
_USE_ACTIVE = object()


def set_active_cache(cache: Any) -> Any:
    """Install the process-wide profile persistence backend.

    Accepts a :class:`repro.campaign.cache.ResultCache`-like object (any
    ``get``/``put`` pair), a directory path, or None to go memo-only.
    Returns the previous backend so callers can restore it.
    """
    global _active_cache
    previous = _active_cache
    if cache is None or hasattr(cache, "get"):
        _active_cache = cache
    else:  # a path-like cache root
        from repro.campaign.cache import ResultCache

        _active_cache = ResultCache(cache)
    return previous


def active_cache() -> Any:
    """The installed persistence backend (None = memo only)."""
    return _active_cache


def clear_memo() -> None:
    """Drop the in-process profile memo (tests, memory pressure)."""
    _memo.clear()


def _memo_put(key: str, profile: TraceProfile) -> None:
    _memo[key] = profile
    _memo.move_to_end(key)
    capacity = memo_capacity()
    while len(_memo) > capacity:
        _memo.popitem(last=False)


def get_profile(trace, warm_start: bool = True, cache: Any = _USE_ACTIVE) -> TraceProfile:
    """The trace's profile, via memo -> result cache -> one-pass build.

    ``cache`` overrides the process-wide backend (None disables
    persistence for this call).  Every path returns a profile whose
    ``key`` commits to the exact trace content, so callers may pass it to
    any engine replaying the same trace.
    """
    key = profile_key(trace, warm_start)
    hit = _memo.get(key)
    if hit is not None:
        _memo.move_to_end(key)
        return hit
    backend = _active_cache if cache is _USE_ACTIVE else cache
    if backend is not None:
        payload = backend.get(key)
        if payload is not None:
            profile = TraceProfile.from_payload(payload, key)
            if profile is not None and len(profile) == trace.num_accesses:
                _memo_put(key, profile)
                return profile
    profile = build_profile(trace, warm_start=warm_start, key=key)
    _memo_put(key, profile)
    if backend is not None:
        backend.put(key, profile.to_payload())
    return profile
