"""Sequential-miss clustering into disk requests.

The disk cache issues page-sized reads, but the block layer merges
sequential misses into one larger disk request (Linux read-ahead).  The
clusterer groups a page miss with the previous one when it is the next
page in sequence *and* arrives within a small merge window; the resulting
request sizes feed the disk's bandwidth table (the paper indexes disk
bandwidth by request size, Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SimulationError


@dataclass(frozen=True)
class DiskRequest:
    """One merged disk request."""

    #: Arrival time of the first miss in the cluster, seconds.
    time_s: float
    #: First page of the run.
    start_page: int
    #: Number of sequential pages covered.
    num_pages: int

    def size_bytes(self, page_size: int) -> int:
        return self.num_pages * page_size


class ReadaheadClusterer:
    """Streaming merger of sequential page misses.

    Feed misses in time order via :meth:`add`; completed requests come
    back from :meth:`add` (when a miss breaks the run) and :meth:`flush`.
    """

    def __init__(self, merge_window_s: float = 0.005, max_pages: int = 64) -> None:
        if merge_window_s < 0:
            raise SimulationError("merge window must be non-negative")
        if max_pages < 1:
            raise SimulationError("a request covers at least one page")
        self.merge_window_s = merge_window_s
        self.max_pages = max_pages
        self._pending: Optional[DiskRequest] = None
        self._last_time = float("-inf")

    def add(self, time_s: float, page: int) -> Optional[DiskRequest]:
        """Add one page miss; return a completed request if one closed."""
        if time_s < self._last_time:
            raise SimulationError("misses must arrive in time order")
        self._last_time = time_s
        pending = self._pending
        if pending is not None:
            is_next = page == pending.start_page + pending.num_pages
            in_window = time_s - pending.time_s <= self.merge_window_s
            if is_next and in_window and pending.num_pages < self.max_pages:
                self._pending = DiskRequest(
                    time_s=pending.time_s,
                    start_page=pending.start_page,
                    num_pages=pending.num_pages + 1,
                )
                return None
        self._pending = DiskRequest(time_s=time_s, start_page=page, num_pages=1)
        return pending

    def add_run(self, times, pages) -> int:
        """Add a run of page misses; return how many requests closed.

        Equivalent to one :meth:`add` call per element, with the pending
        request held in locals for the whole run.  The caller only needs
        the *count* of completed requests (it feeds
        :meth:`repro.sim.metrics.MetricsCollector.on_requests`), so the
        closed requests themselves are not materialised.
        """
        n = len(times)
        if n == 0:
            return 0
        last_time = self._last_time
        merge_window_s = self.merge_window_s
        max_pages = self.max_pages
        pending = self._pending
        # The pending request lives in three scalars for the whole run;
        # one frozen DiskRequest is built at write-back (p_num == 0 is
        # the no-pending sentinel, impossible for a live request).
        if pending is not None:
            p_time = pending.time_s
            p_page = pending.start_page
            p_num = pending.num_pages
        else:
            p_time = 0.0
            p_page = 0
            p_num = 0
        completed = 0
        for i in range(n):
            time_s = times[i]
            page = pages[i]
            if time_s < last_time:
                raise SimulationError("misses must arrive in time order")
            last_time = time_s
            if p_num:
                if (
                    page == p_page + p_num
                    and time_s - p_time <= merge_window_s
                    and p_num < max_pages
                ):
                    p_num += 1
                    continue
                completed += 1
            p_time = time_s
            p_page = page
            p_num = 1
        self._pending = DiskRequest(
            time_s=p_time, start_page=p_page, num_pages=p_num
        )
        self._last_time = last_time
        return completed

    def flush(self) -> Optional[DiskRequest]:
        """Close and return the in-flight request, if any."""
        pending, self._pending = self._pending, None
        return pending

    def cluster(self, times: List[float], pages: List[int]) -> List[DiskRequest]:
        """Batch helper: cluster a whole miss stream."""
        if len(times) != len(pages):
            raise SimulationError("times and pages must align")
        requests = []
        for t, p in zip(times, pages):
            done = self.add(t, p)
            if done is not None:
                requests.append(done)
        tail = self.flush()
        if tail is not None:
            requests.append(tail)
        return requests
