"""Disk-IO and idle-interval prediction at candidate memory sizes.

This is the machinery of paper Section IV-B and Fig. 4.  The joint power
manager records, for every disk-cache access in the current period, the
pair ``(timestamp, stack depth)``.  For any candidate memory size ``m``
(in pages):

* the access goes to *disk* iff it is cold or its depth ``>= m`` (the LRU
  inclusion property),
* the disk's idle intervals are the gaps between consecutive disk
  accesses, filtered by the aggregation window.

So one pass of bookkeeping answers "what would disk IO look like at every
memory size" without re-running the workload -- the paper's key trick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.cache.counters import COLD_MISS
from repro.errors import SimulationError
from repro.stats.intervals import IdleIntervals, extract_idle_intervals


@dataclass(frozen=True)
class CandidatePrediction:
    """Predicted disk behaviour at one candidate memory size."""

    #: Candidate size, pages.
    capacity_pages: int
    #: ``n_d``: predicted disk accesses in the period.
    num_disk_accesses: int
    #: Predicted idle intervals (``n_i`` = ``idle.count``).
    idle: IdleIntervals
    #: ``N``: total disk-cache accesses observed in the period.
    num_cache_accesses: int


class ResizePredictor:
    """Accumulates ``(time, depth)`` samples and predicts per-size disk IO."""

    def __init__(self) -> None:
        self._times: List[float] = []
        self._depths: List[int] = []
        self._last_time = -np.inf

    def __len__(self) -> int:
        return len(self._times)

    def record(self, time_s: float, depth: int) -> None:
        """Record one disk-cache access and its stack depth."""
        if time_s < self._last_time:
            raise SimulationError("accesses must be recorded in time order")
        if depth < COLD_MISS:
            raise SimulationError(f"invalid depth {depth}")
        self._last_time = time_s
        self._times.append(time_s)
        self._depths.append(depth)

    def reset(self) -> None:
        """Drop the samples (called at each period boundary)."""
        self._times.clear()
        self._depths.clear()
        self._last_time = -np.inf

    def predict(
        self,
        capacities_pages: Sequence[int],
        window_s: float,
        period_start: float,
        period_end: float,
    ) -> List[CandidatePrediction]:
        """Predict disk IO for each candidate memory size.

        The leading and trailing gaps to the period boundaries count as
        idle time (the disk really is idle then), matching how the online
        monitor observes intervals.
        """
        if period_end < period_start:
            raise SimulationError("period end precedes period start")
        times = np.asarray(self._times, dtype=np.float64)
        depths = np.asarray(self._depths, dtype=np.int64)
        total = int(times.size)
        predictions = []
        for capacity in capacities_pages:
            if capacity < 0:
                raise SimulationError("capacity must be non-negative")
            is_disk = (depths == COLD_MISS) | (depths >= capacity)
            disk_times = times[is_disk]
            idle = extract_idle_intervals(
                disk_times,
                window_s,
                period_start=period_start,
                period_end=period_end,
            )
            predictions.append(
                CandidatePrediction(
                    capacity_pages=int(capacity),
                    num_disk_accesses=int(disk_times.size),
                    idle=idle,
                    num_cache_accesses=total,
                )
            )
        return predictions
