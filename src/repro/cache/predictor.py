"""Disk-IO and idle-interval prediction at candidate memory sizes.

This is the machinery of paper Section IV-B and Fig. 4.  The joint power
manager records, for every disk-cache access in the current period, the
pair ``(timestamp, stack depth)``.  For any candidate memory size ``m``
(in pages):

* the access goes to *disk* iff it is cold or its depth ``>= m`` (the LRU
  inclusion property),
* the disk's idle intervals are the gaps between consecutive disk
  accesses, filtered by the aggregation window.

So one pass of bookkeeping answers "what would disk IO look like at every
memory size" without re-running the workload -- the paper's key trick.

:meth:`ResizePredictor.predict` exploits two structural facts to stay
cheap on large candidate grids:

* Disk-access *counts* for every candidate come from one sort of the
  depth array plus one ``searchsorted`` over the candidate sizes --
  ``O(N log N + C log N)`` instead of ``O(C x N)`` masking.
* Disk-access *sets* are nested across capacities (growing ``m`` only
  removes accesses), so two candidates with equal disk counts have the
  exact same disk accesses -- their idle intervals are computed once and
  shared.  Real candidate grids hit long plateaus (most sizes beyond the
  working set see identical traffic), so this collapses the per-candidate
  interval extraction to one pass per *distinct* disk set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.cache.counters import COLD_MISS
from repro.errors import SimulationError
from repro.stats.intervals import IdleIntervals, extract_idle_intervals

#: Initial sample-buffer capacity; grows geometrically.
_INITIAL_BUFFER = 1024


@dataclass(frozen=True)
class CandidatePrediction:
    """Predicted disk behaviour at one candidate memory size."""

    #: Candidate size, pages.
    capacity_pages: int
    #: ``n_d``: predicted disk accesses in the period.
    num_disk_accesses: int
    #: Predicted idle intervals (``n_i`` = ``idle.count``).
    idle: IdleIntervals
    #: ``N``: total disk-cache accesses observed in the period.
    num_cache_accesses: int


class ResizePredictor:
    """Accumulates ``(time, depth)`` samples and predicts per-size disk IO.

    Samples live in preallocated numpy buffers that grow geometrically,
    so both the per-access :meth:`record` and the batch
    :meth:`record_array` append without per-sample Python list overhead.
    """

    def __init__(self) -> None:
        self._times = np.empty(_INITIAL_BUFFER, dtype=np.float64)
        self._depths = np.empty(_INITIAL_BUFFER, dtype=np.int64)
        self._size = 0
        self._last_time = -np.inf

    def __len__(self) -> int:
        return self._size

    def _reserve(self, extra: int) -> None:
        """Ensure room for ``extra`` more samples."""
        needed = self._size + extra
        if needed <= self._times.size:
            return
        capacity = max(self._times.size * 2, needed)
        times = np.empty(capacity, dtype=np.float64)
        depths = np.empty(capacity, dtype=np.int64)
        times[: self._size] = self._times[: self._size]
        depths[: self._size] = self._depths[: self._size]
        self._times = times
        self._depths = depths

    def record(self, time_s: float, depth: int) -> None:
        """Record one disk-cache access and its stack depth."""
        if time_s < self._last_time:
            raise SimulationError("accesses must be recorded in time order")
        if depth < COLD_MISS:
            raise SimulationError(f"invalid depth {depth}")
        self._reserve(1)
        self._times[self._size] = time_s
        self._depths[self._size] = depth
        self._size += 1
        self._last_time = time_s

    def record_array(self, times, depths) -> None:
        """Batch :meth:`record`: append whole ``(times, depths)`` arrays.

        Identical semantics to calling :meth:`record` per element --
        including the validation errors -- but the monotonicity and depth
        checks run vectorized and the samples land in the buffers with
        two slice copies.
        """
        times = np.asarray(times, dtype=np.float64)
        depths = np.asarray(depths, dtype=np.int64)
        if times.shape != depths.shape or times.ndim != 1:
            raise SimulationError("times and depths must be 1-D arrays of equal length")
        count = int(times.size)
        if count == 0:
            return
        if times[0] < self._last_time or np.any(np.diff(times) < 0.0):
            raise SimulationError("accesses must be recorded in time order")
        bad = np.flatnonzero(depths < COLD_MISS)
        if bad.size:
            raise SimulationError(f"invalid depth {int(depths[bad[0]])}")
        self._reserve(count)
        self._times[self._size : self._size + count] = times
        self._depths[self._size : self._size + count] = depths
        self._size += count
        self._last_time = float(times[-1])

    def reset(self) -> None:
        """Drop the samples (called at each period boundary).

        The buffers are kept: the next period reuses the allocation.
        """
        self._size = 0
        self._last_time = -np.inf

    def predict(
        self,
        capacities_pages: Sequence[int],
        window_s: float,
        period_start: float,
        period_end: float,
    ) -> List[CandidatePrediction]:
        """Predict disk IO for each candidate memory size, in one pass.

        The leading and trailing gaps to the period boundaries count as
        idle time (the disk really is idle then), matching how the online
        monitor observes intervals.
        """
        if period_end < period_start:
            raise SimulationError("period end precedes period start")
        times = self._times[: self._size]
        depths = self._depths[: self._size]
        total = self._size

        # One sort answers every candidate's disk count: an access is a
        # disk access at capacity m iff it is cold or its depth >= m.
        # Mapping cold misses to +inf depth makes both cases "depth >= m",
        # so count(m) = N - searchsorted(sorted_depths, m).
        sortable = np.where(depths == COLD_MISS, np.iinfo(np.int64).max, depths)
        sortable.sort()

        predictions: List[CandidatePrediction] = []
        by_count: Dict[int, IdleIntervals] = {}
        for capacity in capacities_pages:
            if capacity < 0:
                raise SimulationError("capacity must be non-negative")
            num_disk = total - int(np.searchsorted(sortable, capacity, side="left"))
            idle = by_count.get(num_disk)
            if idle is None:
                # Nested disk sets: equal counts => identical disk
                # accesses, so the interval extraction is shared.
                is_disk = (depths == COLD_MISS) | (depths >= capacity)
                idle = extract_idle_intervals(
                    times[is_disk],
                    window_s,
                    period_start=period_start,
                    period_end=period_end,
                )
                by_count[num_disk] = idle
            predictions.append(
                CandidatePrediction(
                    capacity_pages=int(capacity),
                    num_disk_accesses=num_disk,
                    idle=idle,
                    num_cache_accesses=total,
                )
            )
        return predictions
