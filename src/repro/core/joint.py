"""The joint power manager (paper Section IV, Fig. 2).

Lifecycle, driven by the simulation engine:

* ``record_access(now, page)`` for every disk-cache access -- the manager
  maintains its own extended-LRU instrumentation (stack-distance tracker)
  and the per-access ``(time, depth)`` log;
* ``end_period(now)`` at each period boundary -- runs the enumeration and
  returns the ``(memory size, disk timeout)`` decision for the next
  period.

The LRU history is *not* reset between periods (the paper's Table IV notes
the method "does not reset the LRU list every period"); only the
per-period access log is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.predictor import ResizePredictor
from repro.cache.stack_distance import StackDistanceTracker
from repro.config.machine import MachineConfig
from repro.core.energy_model import CandidateEvaluation, evaluate_candidate
from repro.core.enumeration import candidate_sizes
from repro.disk.service import ServiceModel
from repro.errors import SimulationError


@dataclass(frozen=True)
class PeriodDecision:
    """One period's outcome, kept for diagnostics and the fig9 experiment."""

    period_index: int
    start_s: float
    end_s: float
    #: Chosen memory size for the next period, bytes.
    memory_bytes: int
    #: Chosen disk timeout for the next period (None = never spin down).
    timeout_s: Optional[float]
    #: Accesses observed in the period just ended.
    observed_accesses: int
    #: Disk accesses predicted at the chosen size.
    predicted_disk_accesses: int
    #: Evaluations of all candidates (ascending size).
    evaluations: List[CandidateEvaluation]


class JointPowerManager:
    """Periodically selects the disk-cache size and the disk timeout."""

    def __init__(
        self,
        machine: MachineConfig,
        service: Optional[ServiceModel] = None,
        initial_memory_bytes: Optional[int] = None,
        enforce_constraints: bool = True,
        adapt_memory: bool = True,
        adapt_timeout: bool = True,
    ) -> None:
        """Create a manager; the three flags select ablation variants.

        * ``enforce_constraints=False`` -- the original DATE-2005 method:
          pure energy minimisation, no utilisation/delay limits.
        * ``adapt_memory=False`` -- timeout-only: memory is pinned to its
          initial size and only eq. (5)/(6) run each period.
        * ``adapt_timeout=False`` -- resize-only: memory adapts but the
          disk keeps the 2-competitive timeout.
        """
        self.machine = machine
        self.service = service or ServiceModel(machine.disk, machine.page_bytes)
        self.enforce_constraints = enforce_constraints
        self.adapt_memory = adapt_memory
        self.adapt_timeout = adapt_timeout
        self._candidates_bytes = candidate_sizes(machine)
        page = machine.page_bytes
        self._candidates_pages = [size // page for size in self._candidates_bytes]

        if initial_memory_bytes is None:
            initial_memory_bytes = self._candidates_bytes[-1]
        if initial_memory_bytes not in self._candidates_bytes:
            raise SimulationError(
                "initial memory size must be one of the candidate sizes"
            )
        if not self.adapt_memory:
            # Timeout-only variant: the single candidate is the pinned size.
            self._candidates_bytes = [initial_memory_bytes]
            self._candidates_pages = [initial_memory_bytes // page]
        self.memory_bytes = initial_memory_bytes
        self.timeout_s: Optional[float] = machine.disk.break_even_time_s

        self._tracker = StackDistanceTracker()
        self._predictor = ResizePredictor()
        self._period_start = 0.0
        self._period_index = 0
        #: Average pages per merged disk request, updated by the engine.
        self.avg_request_pages = 1.0
        #: Full decision history.
        self.decisions: List[PeriodDecision] = []

    # --- warm start --------------------------------------------------------------

    def prefill(self, pages) -> None:
        """Warm the extended-LRU instrumentation with already-cached pages.

        Mirrors :meth:`repro.memory.system.MemorySystem.prefill`: the same
        pages in the same order, so the tracker's stack matches the
        resident set and prefilled pages are not misclassified as cold.
        """
        self._tracker.access_array(list(pages))

    # --- per-access ------------------------------------------------------------

    def record_access(self, now: float, page: int) -> int:
        """Feed one disk-cache access; returns its stack depth (COLD = -1)."""
        depth = self._tracker.access(page)
        self._predictor.record(now, depth)
        return depth

    def record_profiled(self, times, depths) -> None:
        """Batch :meth:`record_access` from precomputed stack depths.

        The epoch replay kernel already holds every access's depth (the
        trace profile is the same tracker run over the same prefill and
        page sequence), so it feeds the per-period log as arrays and
        skips the manager's own tracker entirely.  Callers own the
        contract that ``depths`` equals what :meth:`record_access` would
        have computed -- the ``epoch`` differential check and the kernel
        identity tests enforce it.
        """
        self._predictor.record_array(times, depths)

    # --- per-period ---------------------------------------------------------------

    def end_period(self, now: float) -> PeriodDecision:
        """Close the current period and decide the next configuration."""
        if now < self._period_start:
            raise SimulationError("period end precedes its start")
        manager = self.machine.manager
        observed = len(self._predictor)

        predictions = self._predictor.predict(
            self._candidates_pages,
            window_s=manager.aggregation_window_s,
            period_start=self._period_start,
            period_end=now,
        )
        period_len = max(now - self._period_start, 1e-9)
        evaluations = [
            evaluate_candidate(
                self.machine,
                self.service,
                prediction,
                period_s=period_len,
                avg_request_pages=self.avg_request_pages,
                enforce_constraints=self.enforce_constraints,
            )
            for prediction in predictions
        ]

        chosen = self._select(evaluations)
        self.memory_bytes = chosen.capacity_bytes
        if self.adapt_timeout:
            self.timeout_s = chosen.timeout_s
        else:
            self.timeout_s = self.machine.disk.break_even_time_s

        decision = PeriodDecision(
            period_index=self._period_index,
            start_s=self._period_start,
            end_s=now,
            memory_bytes=chosen.capacity_bytes,
            timeout_s=self.timeout_s,
            observed_accesses=observed,
            predicted_disk_accesses=chosen.prediction.num_disk_accesses,
            evaluations=evaluations,
        )
        self.decisions.append(decision)

        self._predictor.reset()
        self._period_start = now
        self._period_index += 1
        return decision

    def _select(self, evaluations: List[CandidateEvaluation]) -> CandidateEvaluation:
        """Pick the lowest-power feasible candidate (smaller size on ties).

        When no candidate meets the utilisation constraint, pick the one
        with the lowest predicted utilisation (largest memory helps), and
        among those the lowest power.
        """
        if not evaluations:
            raise SimulationError("no candidates evaluated")
        feasible = [e for e in evaluations if e.feasible]
        pool = feasible if feasible else evaluations
        if feasible:
            # Ascending input order makes min() prefer the smaller size on
            # exact power ties.
            return min(pool, key=lambda e: (e.total_power_w, e.capacity_bytes))
        # Nothing feasible: a floor of unavoidable disk traffic (e.g. cold
        # misses) exceeds the utilisation limit at every size.  Take the
        # candidates within a whisker of the lowest achievable utilisation
        # -- growing memory further buys nothing -- and minimise power
        # among them.  This is how the paper's manager lands "close to the
        # data-set size" when even full memory cannot meet U (Section V-B1).
        lowest = min(e.predicted_utilization for e in pool)
        tolerance = max(lowest * 0.05, 1e-4)
        near_minimum = [
            e for e in pool if e.predicted_utilization <= lowest + tolerance
        ]
        return min(
            near_minimum, key=lambda e: (e.total_power_w, e.capacity_bytes)
        )

    # --- introspection ---------------------------------------------------------------

    @property
    def candidates_bytes(self) -> List[int]:
        return list(self._candidates_bytes)

    @property
    def period_start(self) -> float:
        return self._period_start
