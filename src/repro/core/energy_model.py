"""Per-candidate power estimation: eq. (4) for the disk plus memory statics.

For a candidate ``(m, t_o)`` with the predicted disk IO at size ``m``:

* memory static power: nap power of the enabled banks (``m`` bytes),
* disk static + transition power: eq. (4) evaluated at the chosen timeout,
* disk dynamic power: utilisation x the disk's peak dynamic power, where
  utilisation = predicted disk accesses x per-request service time / T.

Memory dynamic energy is the same for every candidate (every access goes
through memory either way), so it is omitted from the *comparison* but the
simulator charges it in the real accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.cache.predictor import CandidatePrediction
from repro.config.machine import MachineConfig
from repro.disk.service import ServiceModel
from repro.errors import FitError
from repro.stats.pareto import ParetoDistribution, fit_moments
from repro.stats.timeout_math import (
    constrained_min_timeout,
    expected_power,
    optimal_timeout,
)

#: Below this many idle intervals a Pareto fit is unreliable and the
#: manager falls back to the 2-competitive timeout.
MIN_INTERVALS_FOR_FIT = 5


@dataclass(frozen=True)
class CandidateEvaluation:
    """Outcome of evaluating one candidate memory size."""

    capacity_bytes: int
    timeout_s: Optional[float]  # None = never spin down
    memory_power_w: float
    disk_static_power_w: float
    disk_dynamic_power_w: float
    predicted_utilization: float
    meets_utilization: bool
    fit: Optional[ParetoDistribution]
    prediction: CandidatePrediction

    @property
    def total_power_w(self) -> float:
        return self.memory_power_w + self.disk_static_power_w + self.disk_dynamic_power_w

    @property
    def feasible(self) -> bool:
        return self.meets_utilization


def evaluate_candidate(
    machine: MachineConfig,
    service: ServiceModel,
    prediction: CandidatePrediction,
    period_s: float,
    avg_request_pages: float = 1.0,
    enforce_constraints: bool = True,
) -> CandidateEvaluation:
    """Estimate total power and feasibility for one candidate size.

    ``enforce_constraints=False`` reproduces the original DATE-2005 method
    (energy only): every candidate counts as feasible and the timeout is
    the pure eq. (5) optimum with no eq. (6) floor.
    """
    manager = machine.manager
    disk = machine.disk
    capacity_bytes = prediction.capacity_pages * machine.page_bytes

    memory_power = machine.memory.static_power_per_byte * capacity_bytes

    # --- disk dynamic power and the utilisation constraint -------------------
    pages = max(avg_request_pages, 1.0)
    per_request = service.service_time(max(int(round(pages)), 1))
    requests = prediction.num_disk_accesses / pages
    utilization = requests * per_request / period_s
    meets_util = (
        utilization <= manager.max_utilization or not enforce_constraints
    )
    dynamic_power = min(utilization, 1.0) * disk.dynamic_power_watts

    # --- disk static + transition power under the chosen timeout --------------
    idle = prediction.idle
    fit: Optional[ParetoDistribution] = None
    if idle.count >= MIN_INTERVALS_FOR_FIT:
        try:
            fit = fit_moments(idle.lengths)
        except FitError:
            fit = None

    if prediction.num_disk_accesses == 0:
        # A silent disk: spin down immediately, pay one round trip.
        timeout: Optional[float] = 0.0
        static_power = disk.static_power_watts * disk.break_even_time_s / period_s
        return CandidateEvaluation(
            capacity_bytes=capacity_bytes,
            timeout_s=timeout,
            memory_power_w=memory_power,
            disk_static_power_w=static_power,
            disk_dynamic_power_w=0.0,
            predicted_utilization=0.0,
            meets_utilization=True,
            fit=fit,
            prediction=prediction,
        )

    if fit is None:
        # Too few intervals to model: fall back to the 2-competitive
        # timeout; estimate the static power as if no idle interval
        # exceeds it (conservative: full idle power).
        timeout = disk.break_even_time_s
        static_power = disk.static_power_watts
    else:
        timeout = optimal_timeout(fit, disk.break_even_time_s)
        floor = 0.0
        if enforce_constraints:
            floor = constrained_min_timeout(
                fit,
                num_intervals=idle.count,
                num_disk_accesses=prediction.num_disk_accesses,
                num_cache_accesses=prediction.num_cache_accesses,
                period_s=period_s,
                transition_time_s=disk.transition_time_s,
                max_delayed_ratio=manager.max_delayed_ratio,
                long_latency_threshold_s=manager.long_latency_threshold_s,
            )
        timeout = max(timeout, floor)
        if timeout >= period_s:
            # The constraint pushed the timeout past the horizon: the
            # disk effectively never spins down this period.
            timeout = None
            static_power = disk.static_power_watts
        else:
            static_power = expected_power(
                fit,
                num_intervals=idle.count,
                timeout_s=timeout,
                period_s=period_s,
                static_power_w=disk.static_power_watts,
                break_even_s=disk.break_even_time_s,
            )
            if static_power > disk.static_power_watts:
                # Spinning down at this timeout would cost more than
                # staying up (too many short intervals): stay up.
                timeout = None
                static_power = disk.static_power_watts

    return CandidateEvaluation(
        capacity_bytes=capacity_bytes,
        timeout_s=timeout,
        memory_power_w=memory_power,
        disk_static_power_w=static_power,
        disk_dynamic_power_w=dynamic_power,
        predicted_utilization=utilization,
        meets_utilization=meets_util,
        fit=fit,
        prediction=prediction,
    )
