"""The paper's contribution: the joint power manager.

Per period (Fig. 2): collect last period's disk-cache accesses and stack
depths; predict, for every candidate memory size, the number of disk
accesses and the idle-interval distribution; fit a Pareto model per
candidate; compute the energy-optimal timeout (eq. 5) subject to the
delayed-request constraint (eq. 6); estimate total memory + disk power per
candidate (eq. 4 + memory statics); pick the feasible minimum.
"""

from repro.core.energy_model import CandidateEvaluation, evaluate_candidate
from repro.core.enumeration import candidate_sizes
from repro.core.joint import JointPowerManager, PeriodDecision

__all__ = [
    "CandidateEvaluation",
    "JointPowerManager",
    "PeriodDecision",
    "candidate_sizes",
    "evaluate_candidate",
]
