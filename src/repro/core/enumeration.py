"""Candidate memory sizes for the per-period enumeration.

The paper enumerates multiples of the enumeration unit (16 MB) up to the
installed memory, noting the count stays "within several thousand" and
costs under 100 ms in its implementation (Section IV-B).  A Python
reproduction spreads at most ``max_candidates`` sizes evenly over the same
range; the spacing rounds to whole enumeration units so every candidate is
a realisable bank configuration.
"""

from __future__ import annotations

from typing import List

from repro.config.machine import MachineConfig
from repro.errors import ConfigError


def candidate_sizes(machine: MachineConfig) -> List[int]:
    """Byte sizes the joint manager evaluates each period (ascending)."""
    unit = machine.manager.enumeration_unit_bytes
    installed = machine.memory.installed_bytes
    minimum = machine.manager.min_memory_bytes
    if minimum > installed:
        raise ConfigError("minimum memory exceeds installed memory")

    lowest_units = max(-(-minimum // unit), 1)
    highest_units = installed // unit
    if highest_units < lowest_units:
        raise ConfigError("enumeration unit larger than installed memory")

    total = highest_units - lowest_units + 1
    limit = machine.manager.max_candidates
    if total <= limit:
        steps = range(lowest_units, highest_units + 1)
    else:
        # Even spread including both endpoints.
        span = highest_units - lowest_units
        steps = sorted(
            {lowest_units + round(i * span / (limit - 1)) for i in range(limit)}
        )
    return [units * unit for units in steps]
