"""Per-run regret vs the offline optimum (ROADMAP item 4).

Given one finished :class:`~repro.sim.results.SimResult` plus the trace
and machine that produced it, this module reconstructs the run's
capacity schedule from its per-period series, replays the trace through
the offline oracles of :mod:`repro.verify.optimal`, and reports how far
the run landed from what clairvoyance allows:

* **excess misses** -- online misses minus Belady/OPT misses under the
  *same* per-period capacity schedule (so only the replacement decisions
  are judged, not the sizing policy);
* **energy ratio** -- online total energy over a provable lower bound.

The lower bound is sound against this repo's energy accounting (see
``docs/VERIFICATION.md`` for the derivation and its limits):

* memory: every bank pays at least the cheapest mode's power for the
  whole run, plus the per-access dynamic energy, which no management
  policy avoids;
* disk: ``standby`` power for the whole run, the active-over-idle
  premium for the time actually spent serving, and -- per gap between
  consecutive disk accesses -- ``static * min(max(gap - t_tr, 0),
  t_eff)`` where ``t_eff = (E_tr - standby * t_tr) / static``.  Each gap
  either keeps the disk spinning (paying static power) or contains a
  spin-down round trip (paying the lump transition energy); the
  ``t_tr`` deductions make the claim hold even though transition time
  itself carries no per-second power.

Runs must be recorded from ``t=0`` (``warmup_s=0``): a warmup discards
the early periods, and the capacity schedule can no longer be aligned
with the trace.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cache.profile import TraceProfile, get_profile
from repro.config.machine import MachineConfig
from repro.errors import SimulationError
from repro.sim.kernels import _epoch_misses
from repro.sim.prefill import warm_start_pages
from repro.sim.results import RegretSummary, SimResult
from repro.stats.intervals import extract_idle_intervals
from repro.traces.trace import Trace
from repro.verify.optimal import (
    Epoch,
    compute_next_use,
    offline_disk_energy,
    offline_spin_decisions,
    opt_replay,
)

#: Slack for matching period boundaries against each other, seconds.
_BOUNDARY_TOL = 1e-9


@dataclass(frozen=True)
class RegretReport:
    """Everything the regret analysis learned about one run."""

    label: str
    duration_s: float
    #: Misses the run actually booked (``SimResult.disk_page_accesses``).
    online_misses: int
    #: Misses re-derived from the trace profile and the recorded capacity
    #: schedule; equals ``online_misses`` for profiled-replay-capable
    #: runs and is the cross-check the regression tests pin down.
    recomputed_misses: int
    #: Belady/OPT misses under the same capacity schedule.
    opt_misses: int
    #: ``online_misses - opt_misses`` (>= 0).
    excess_misses: int
    online_energy_j: float
    energy_lower_bound_j: float
    memory_lower_bound_j: float
    disk_lower_bound_j: float
    #: ``online / lower bound`` (>= 1.0; 0 when the bound degenerates).
    energy_ratio: float
    #: Static+transition joules of the clairvoyant per-interval schedule
    #: on the run's recorded idle intervals (paper Section V framing).
    offline_disk_schedule_j: float
    #: Idle intervals the clairvoyant schedule spins down for.
    spin_down_worthy_intervals: int
    #: The reconstructed schedule, pages per period.
    capacities_pages: Tuple[int, ...]

    def summary(self) -> RegretSummary:
        """The compact form carried on :class:`SimResult`."""
        return RegretSummary(
            opt_misses=self.opt_misses,
            excess_misses=self.excess_misses,
            energy_lower_bound_j=self.energy_lower_bound_j,
            energy_ratio=self.energy_ratio,
        )

    def render(self) -> str:
        """A readable block for ``repro regret``."""
        lines = [
            f"regret report: {self.label} over {self.duration_s:.1f}s",
            f"  misses      online {self.online_misses} vs OPT "
            f"{self.opt_misses} (excess {self.excess_misses})",
            f"  energy      online {self.online_energy_j:.1f} J vs lower "
            f"bound {self.energy_lower_bound_j:.1f} J "
            f"(ratio {self.energy_ratio:.3f})",
            f"  bound split memory {self.memory_lower_bound_j:.1f} J, disk "
            f"{self.disk_lower_bound_j:.1f} J",
            f"  disk oracle {self.offline_disk_schedule_j:.1f} J static on "
            f"recorded intervals, {self.spin_down_worthy_intervals} "
            f"spin-down(s) worthwhile",
            f"  schedule    {len(self.capacities_pages)} period(s), "
            f"{min(self.capacities_pages)}-{max(self.capacities_pages)} pages",
        ]
        return "\n".join(lines)


def capacity_epochs(
    result: SimResult, trace: Trace, machine: MachineConfig
) -> Tuple[List[Epoch], int]:
    """The run's capacity schedule as trace-index epochs.

    Returns ``(epochs, n)`` where ``n`` is the number of accesses inside
    the run's duration.  The engine closes each period with the capacity
    in effect *during* it (``close_period`` runs before the manager's
    resize), so ``PeriodMetrics.memory_bytes`` is exactly the schedule
    the replay honoured; boundaries map to indices with the same
    ``side='left'`` rule the replay kernels use (an access exactly at a
    boundary belongs to the next period).
    """
    if not result.periods:
        raise SimulationError(
            "regret needs the per-period series; this result has none"
        )
    first = result.periods[0]
    if abs(first.start_s) > _BOUNDARY_TOL:
        raise SimulationError(
            "regret needs a run recorded from t=0; rerun with warmup_s=0 "
            f"(first period starts at {first.start_s}s)"
        )
    previous_end = 0.0
    for period in result.periods:
        if abs(period.start_s - previous_end) > _BOUNDARY_TOL:
            raise SimulationError(
                f"period series does not tile the run: period {period.index} "
                f"starts at {period.start_s}s, previous ended {previous_end}s"
            )
        previous_end = period.end_s
    if abs(previous_end - result.duration_s) > _BOUNDARY_TOL:
        raise SimulationError(
            f"period series ends at {previous_end}s, run lasted "
            f"{result.duration_s}s"
        )

    times = trace.times
    n = int(np.searchsorted(times, result.duration_s, side="left"))
    page_bytes = machine.page_bytes
    epochs: List[Epoch] = []
    lo = 0
    for k, period in enumerate(result.periods):
        if k + 1 == len(result.periods):
            hi = n
        else:
            hi = min(int(np.searchsorted(times, period.end_s, side="left")), n)
        epochs.append((lo, hi, int(period.memory_bytes) // page_bytes))
        lo = hi
    return epochs, n


def compute_regret(
    result: SimResult,
    trace: Trace,
    machine: MachineConfig,
    warm_start: bool = True,
    profile: Optional[TraceProfile] = None,
) -> RegretReport:
    """Regret of one finished run against the offline oracles.

    ``warm_start`` must match the flag the run itself used: the OPT
    replay starts from the same prefilled resident set, which is what
    makes ``OPT <= online`` hold access-for-access.
    """
    if trace.writes is not None and bool(trace.writes.any()):
        raise SimulationError(
            "regret is defined for read-only traces (write-back flushes "
            "are not part of the paging model the oracle bounds)"
        )
    epochs, n = capacity_epochs(result, trace, machine)
    if profile is None:
        profile = get_profile(trace, warm_start=warm_start)
    if len(profile) < n:
        raise SimulationError("profile does not cover the trace")
    depths = profile.depths

    prefill = warm_start_pages(trace) if warm_start else []
    cap0 = epochs[0][2] if epochs else 0
    initial_pages = prefill[-cap0:] if cap0 > 0 else []

    # The online side, re-derived exactly as the epoch kernel replays it:
    # resident count clamps at each boundary, misses grow it to capacity.
    resident = min(len(initial_pages), cap0)
    miss_chunks: List[np.ndarray] = []
    for lo, hi, capacity in epochs:
        resident = min(resident, capacity)
        miss_idx, resident = _epoch_misses(depths, lo, hi, resident, capacity)
        miss_chunks.append(miss_idx)
    miss_indices = (
        np.concatenate(miss_chunks) if miss_chunks else np.empty(0, dtype=np.int64)
    )
    recomputed = int(miss_indices.size)

    pages = np.ascontiguousarray(trace.pages[:n], dtype=np.int64)
    opt = opt_replay(
        pages,
        epochs,
        initial_resident=initial_pages,
        next_use=compute_next_use(pages),
    )

    online_misses = int(result.disk_page_accesses)
    duration = float(result.duration_s)
    miss_times = np.asarray(trace.times)[miss_indices].astype(np.float64)

    memory_lb = _memory_lower_bound(result, machine, duration)
    disk_lb = _disk_lower_bound(result, machine, duration, miss_times)
    lower_bound = memory_lb + disk_lb
    online_energy = float(result.total_energy_j)
    ratio = online_energy / lower_bound if lower_bound > 0 else 0.0

    idle = extract_idle_intervals(
        miss_times.tolist(),
        machine.manager.aggregation_window_s,
        period_start=0.0,
        period_end=duration,
    )
    schedule_j = offline_disk_energy(idle.lengths, machine.disk)
    worthy = int(
        np.count_nonzero(
            offline_spin_decisions(idle.lengths, machine.disk.break_even_time_s)
        )
    )

    return RegretReport(
        label=result.label,
        duration_s=duration,
        online_misses=online_misses,
        recomputed_misses=recomputed,
        opt_misses=opt.misses,
        excess_misses=online_misses - opt.misses,
        online_energy_j=online_energy,
        energy_lower_bound_j=lower_bound,
        memory_lower_bound_j=memory_lb,
        disk_lower_bound_j=disk_lb,
        energy_ratio=ratio,
        offline_disk_schedule_j=schedule_j,
        spin_down_worthy_intervals=worthy,
        capacities_pages=tuple(capacity for _, _, capacity in epochs),
    )


def attach_regret(
    result: SimResult,
    trace: Trace,
    machine: MachineConfig,
    warm_start: bool = True,
    profile: Optional[TraceProfile] = None,
) -> SimResult:
    """``result`` with its :class:`RegretSummary` filled in."""
    report = compute_regret(
        result, trace, machine, warm_start=warm_start, profile=profile
    )
    return dataclasses.replace(result, regret=report.summary())


def _memory_lower_bound(
    result: SimResult, machine: MachineConfig, duration: float
) -> float:
    """Cheapest-mode static floor plus the unavoidable dynamic energy."""
    spec = machine.memory
    min_bank_w = min(spec.bank_power(mode) for mode in spec.mode_power_watts)
    return (
        min_bank_w * spec.num_banks * duration
        + spec.dynamic_energy_per_access * result.total_accesses
    )


def _disk_lower_bound(
    result: SimResult,
    machine: MachineConfig,
    duration: float,
    miss_times: np.ndarray,
) -> float:
    """The per-gap spin-or-pay bound described in the module docstring."""
    spec = machine.disk
    standby = spec.mode_power_watts["standby"]
    idle_p = spec.mode_power_watts["idle"]
    active_p = spec.mode_power_watts["active"]
    static = spec.static_power_watts
    t_tr = spec.transition_time_s
    t_eff = max(spec.transition_energy_joules - standby * t_tr, 0.0)
    t_eff = t_eff / static if static > 0 else 0.0

    edges = np.concatenate(([0.0], np.sort(miss_times), [duration]))
    gaps = np.clip(np.diff(edges), 0.0, None)
    claim = np.minimum(np.clip(gaps - t_tr, 0.0, None), t_eff)
    premium = (active_p - idle_p) * result.disk_energy.active_s
    return standby * duration + static * float(claim.sum()) + premium
