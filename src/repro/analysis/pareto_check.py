"""Goodness of fit of the Pareto idle-time model.

The joint method's timeout analysis (eqs. 2-6) rests on the assumption
that disk idle intervals are Pareto distributed ("previous studies show
that the distributions of the disk idle intervals have heavy tails",
Section I).  This module makes the assumption checkable on any workload:

1. derive the disk idle intervals a given memory size would produce
   (via the same extended-LRU machinery the manager uses),
2. fit the paper's method-of-moments Pareto,
3. score the fit with the Kolmogorov-Smirnov statistic and, more
   importantly, with the error of the quantity the manager actually
   consumes: eq. (4)'s expected disk power at the chosen timeout versus
   the exact power computed from the sample itself.

The KS statistic on realistic traces is often large (idle processes are
not literally Pareto); what the method needs is a small *power error* --
the eq.-4 estimate drives the (memory, timeout) choice, and it stays
accurate whenever the model captures how much idle mass lies beyond the
timeout, even when the distribution's body is mis-shaped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.cache.predictor import ResizePredictor
from repro.cache.stack_distance import StackDistanceTracker
from repro.errors import FitError
from repro.stats.intervals import IdleIntervals
from repro.stats.pareto import ParetoDistribution, fit_moments
from repro.stats.timeout_math import expected_power, optimal_timeout
from repro.traces.trace import Trace


@dataclass(frozen=True)
class ParetoFitReport:
    """Fit quality of the Pareto model on one interval sample."""

    fit: ParetoDistribution
    num_intervals: int
    #: Kolmogorov-Smirnov distance between the sample and the fit.
    ks_statistic: float
    ks_pvalue: float
    #: Timeout the manager would install (eq. 5).
    timeout_s: float
    #: Error of eq. (4)'s expected disk power at that timeout against the
    #: exact power computed from the sample, as a fraction of the disk's
    #: static power (0 = perfect, 1 = off by the whole savable power).
    power_error: float

    @property
    def usable(self) -> bool:
        """Is the model good enough for the manager's purposes?

        The criterion is operational, not statistical: the power estimate
        the manager ranks candidates by is within 15 % of the disk's
        static power.
        """
        return self.power_error <= 0.15


def check_pareto_fit(
    intervals: Sequence[float], break_even_s: float = 11.74
) -> ParetoFitReport:
    """Fit and score the Pareto model on raw interval lengths."""
    lengths = np.asarray(intervals, dtype=float)
    if lengths.size < 5:
        raise FitError("need at least five intervals to judge a fit")
    fit = fit_moments(lengths)

    ks_statistic, ks_pvalue = scipy_stats.kstest(
        lengths, lambda x: np.vectorize(fit.cdf)(x)
    )

    timeout = optimal_timeout(fit, break_even_s)

    # eq. (4) vs exact, both normalised to unit static power over the
    # sample's own idle-time universe.
    period = float(lengths.sum())
    count = float(lengths.size)
    predicted = expected_power(
        fit,
        num_intervals=count,
        timeout_s=timeout,
        period_s=period,
        static_power_w=1.0,
        break_even_s=break_even_s,
    )
    off_time = float(np.maximum(lengths - timeout, 0.0).sum())
    spin_downs = float((lengths > timeout).sum())
    exact = (period - off_time) / period + break_even_s * spin_downs / period

    return ParetoFitReport(
        fit=fit,
        num_intervals=int(lengths.size),
        ks_statistic=float(ks_statistic),
        ks_pvalue=float(ks_pvalue),
        timeout_s=timeout,
        power_error=abs(predicted - exact),
    )


def idle_intervals_of_trace(
    trace: Trace,
    memory_pages: int,
    window_s: float = 0.1,
    warmup_fraction: float = 0.25,
) -> IdleIntervals:
    """Idle intervals the disk would see at ``memory_pages`` of cache.

    Runs the trace through the stack-distance instrumentation (skipping
    ``warmup_fraction`` of the timeline as cold start) exactly as the
    joint manager observes it.
    """
    if trace.num_accesses == 0:
        raise FitError("empty trace")
    if not 0.0 <= warmup_fraction < 1.0:
        raise FitError("warm-up fraction must be in [0, 1)")
    observe_from = trace.duration_s * warmup_fraction
    tracker = StackDistanceTracker()
    predictor = ResizePredictor()
    for t, page in zip(trace.times, trace.pages):
        depth = tracker.access(int(page))
        if t >= observe_from:
            predictor.record(float(t), depth)
    [prediction] = predictor.predict(
        [memory_pages],
        window_s=window_s,
        period_start=observe_from,
        period_end=trace.duration_s,
    )
    return prediction.idle


def check_trace(
    trace: Trace,
    memory_pages: int,
    break_even_s: float = 11.74,
    window_s: float = 0.1,
) -> Optional[ParetoFitReport]:
    """End-to-end: trace -> idle intervals -> fit report.

    Returns ``None`` when the workload leaves too few intervals to judge.
    """
    idle = idle_intervals_of_trace(trace, memory_pages, window_s=window_s)
    if idle.count < 5:
        return None
    return check_pareto_fit(idle.lengths, break_even_s=break_even_s)
