"""Decision anatomy: what the joint manager saw when it chose.

Every :class:`~repro.core.joint.PeriodDecision` carries the full list of
candidate evaluations.  These helpers turn one decision into a readable
table/chart -- the enumeration of paper Section IV-B made visible: for
each candidate memory size, the predicted disk IO, the fitted Pareto
parameters, the timeout that would be installed, the three power terms
and the feasibility verdict.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.joint import PeriodDecision
from repro.units import GB


def decision_rows(decision: PeriodDecision) -> List[Dict[str, object]]:
    """One row per candidate, ready for ``render_table``."""
    rows: List[Dict[str, object]] = []
    for evaluation in decision.evaluations:
        fit = evaluation.fit
        rows.append(
            {
                "memory_gb": round(evaluation.capacity_bytes / GB, 2),
                "pred_misses": evaluation.prediction.num_disk_accesses,
                "idle_intervals": evaluation.prediction.idle.count,
                "alpha": None if fit is None else round(fit.alpha, 3),
                "beta_s": None if fit is None else round(fit.beta, 3),
                "timeout_s": None
                if evaluation.timeout_s is None
                else round(evaluation.timeout_s, 1),
                "mem_W": round(evaluation.memory_power_w, 2),
                "disk_static_W": round(evaluation.disk_static_power_w, 2),
                "disk_dyn_W": round(evaluation.disk_dynamic_power_w, 2),
                "total_W": round(evaluation.total_power_w, 2),
                "util": round(evaluation.predicted_utilization, 3),
                "feasible": evaluation.feasible,
                "chosen": evaluation.capacity_bytes == decision.memory_bytes,
            }
        )
    return rows


def explain_decision(decision: PeriodDecision) -> str:
    """Full-text anatomy of one period's choice."""
    from repro.experiments.formatting import render_table

    chosen_gb = decision.memory_bytes / GB
    timeout = (
        "never spin down"
        if decision.timeout_s is None
        else f"timeout {decision.timeout_s:.1f} s"
    )
    header = (
        f"Period {decision.period_index} "
        f"[{decision.start_s:.0f}s .. {decision.end_s:.0f}s]: "
        f"observed {decision.observed_accesses} accesses; "
        f"chose {chosen_gb:.2f} GB, {timeout}."
    )
    table = render_table(
        decision_rows(decision),
        title="Candidate enumeration (paper Section IV-B):",
    )
    feasible = [e for e in decision.evaluations if e.feasible]
    if feasible:
        verdict = (
            f"{len(feasible)}/{len(decision.evaluations)} candidates meet "
            "the utilisation constraint; the cheapest feasible one wins."
        )
    else:
        verdict = (
            "No candidate meets the utilisation constraint (an unavoidable "
            "disk-traffic floor); the manager minimises power among the "
            "near-minimal-utilisation candidates."
        )
    return "\n".join([header, "", table, "", verdict])
