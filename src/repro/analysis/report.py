"""Readable plain-text report of one simulation result."""

from __future__ import annotations

from typing import List, Optional

from repro.config.machine import MachineConfig
from repro.sim.results import SimResult
from repro.units import GB


def format_report(
    result: SimResult,
    machine: MachineConfig,
    baseline: Optional[SimResult] = None,
) -> str:
    """Render a full report: energy breakdowns, performance, periods.

    ``baseline`` (typically the always-on run) adds normalised figures.
    """
    lines: List[str] = []
    lines.append(f"=== {result.label} ===")
    lines.append(f"measured window      {result.duration_s:.0f} s")
    lines.append("")

    # --- energy ----------------------------------------------------------------
    memory = result.memory_energy
    disk = result.disk_energy
    disk_parts = disk.breakdown_joules(machine.disk)
    lines.append("energy (kJ)")
    lines.append(f"  total              {result.total_energy_j / 1e3:10.2f}")
    lines.append(f"  memory             {result.memory_energy_j / 1e3:10.2f}")
    lines.append(f"    static           {memory.static_j / 1e3:10.2f}")
    lines.append(f"    dynamic          {memory.dynamic_j / 1e3:10.2f}")
    lines.append(f"    transitions      {memory.transition_j / 1e3:10.2f}")
    lines.append(f"  disk               {result.disk_energy_j / 1e3:10.2f}")
    for part in ("active", "idle", "standby", "transition"):
        lines.append(f"    {part:<16} {disk_parts[part] / 1e3:10.2f}")
    if baseline is not None and baseline.total_energy_j > 0:
        norm = result.normalized_to(baseline)
        lines.append(
            f"  vs {baseline.label}: total {norm.total_energy:.3f}, "
            f"disk {norm.disk_energy:.3f}, memory {norm.memory_energy:.3f}"
        )
    lines.append("")

    # --- disk timeline ------------------------------------------------------------
    lines.append("disk timeline (s)")
    lines.append(f"  active             {disk.active_s:10.2f}")
    lines.append(f"  idle               {disk.idle_s:10.2f}")
    lines.append(f"  standby            {disk.standby_s:10.2f}")
    lines.append(f"  transitions        {disk.transition_s:10.2f}")
    lines.append(f"  spin-down cycles   {result.spin_down_cycles:10d}")
    lines.append("")

    # --- performance ----------------------------------------------------------------
    lines.append("performance")
    lines.append(f"  cache accesses     {result.total_accesses:10d}")
    lines.append(f"  disk accesses      {result.disk_page_accesses:10d}")
    lines.append(f"  miss ratio         {result.miss_ratio:10.4f}")
    lines.append(f"  merged requests    {result.disk_requests:10d}")
    if result.disk_write_pages:
        lines.append(f"  write-back pages   {result.disk_write_pages:10d}")
    lines.append(f"  mean latency       {result.mean_latency_s * 1e3:10.3f} ms")
    lines.append(f"  utilisation        {result.utilization:10.4f}")
    lines.append(f"  long latency       {result.long_latency:10d}")
    lines.append(f"    wake-attributed  {result.wake_long_latency:10d}")
    lines.append("")

    # --- per-period story --------------------------------------------------------------
    if result.decisions:
        lines.append("joint-manager decisions")
        for decision in result.decisions:
            timeout = (
                "never"
                if decision.timeout_s is None
                else f"{decision.timeout_s:6.1f} s"
            )
            lines.append(
                f"  period {decision.period_index:>3}: "
                f"memory {decision.memory_bytes / GB:7.2f} GB, "
                f"timeout {timeout}, "
                f"predicted misses {decision.predicted_disk_accesses}"
            )
    elif result.periods:
        lines.append("per-period disk accesses")
        for period in result.periods:
            lines.append(
                f"  period {period.index:>3}: "
                f"{period.disk_page_accesses:6d} misses, "
                f"mean idle {period.mean_idle_s:7.2f} s, "
                f"long latency {period.long_latency}"
            )
    return "\n".join(lines)
