"""Post-hoc analysis: model validation and run reports.

* :mod:`repro.analysis.pareto_check` -- does the Pareto assumption
  (paper eq. 1, citing [19], [20]) actually hold for the idle intervals
  a workload produces?  Fits and scores the model with a KS test.
* :mod:`repro.analysis.report` -- a readable plain-text report of one
  simulation result (energy breakdowns, performance, per-period story).
* :mod:`repro.analysis.regret` -- how far one run landed from the
  offline optimum (Belady under the run's capacity schedule, the
  clairvoyant disk schedule, a provable energy lower bound).
"""

from repro.analysis.pareto_check import ParetoFitReport, check_pareto_fit
from repro.analysis.regret import (
    RegretReport,
    attach_regret,
    capacity_epochs,
    compute_regret,
)
from repro.analysis.report import format_report

__all__ = [
    "ParetoFitReport",
    "RegretReport",
    "attach_regret",
    "capacity_epochs",
    "check_pareto_fit",
    "compute_regret",
    "format_report",
]
