"""Performance-regression harness: benchmark suites + baseline gate.

``repro bench`` runs the suites in :mod:`repro.perf.suite`, writes one
``BENCH_<suite>.json`` document per suite, and (``--check``) compares the
machine-independent entries against the baselines committed under
``benchmarks/baselines/`` via :mod:`repro.perf.baseline`.
"""

from repro.perf.baseline import ComparisonReport, compare, load_baseline
from repro.perf.suite import (
    SUITE_NAMES,
    bench_file_name,
    run_suite,
    write_suite,
)

__all__ = [
    "ComparisonReport",
    "SUITE_NAMES",
    "bench_file_name",
    "compare",
    "load_baseline",
    "run_suite",
    "write_suite",
]
