"""The perf-regression gate: current bench documents vs committed baselines.

Only machine-independent entries gate by default: a ``ratio`` entry (for
example ``sweep_speedup``) divides two wall-clocks measured back-to-back
in the same process, so it transfers across CI runners and developer
laptops.  Raw wall-clocks and ops/s are reported for context but never
fail the build unless ``gate_all=True``.

A regression is a gated value falling below ``baseline * (1 -
tolerance)``; improvements never fail (refresh the baseline with
``repro bench --update-baselines`` when they stick).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import SimulationError

from repro.perf.suite import BENCH_SCHEMA, bench_file_name

#: Default slack before a gated entry counts as a regression.
DEFAULT_TOLERANCE = 0.30


@dataclass(frozen=True)
class ComparisonLine:
    """One entry's verdict."""

    name: str
    gated: bool
    ok: bool
    current: Optional[float]
    baseline: Optional[float]
    detail: str


@dataclass
class ComparisonReport:
    """Everything one suite comparison produced."""

    suite: str
    tolerance: float
    lines: List[ComparisonLine] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(line.ok for line in self.lines)

    @property
    def regressions(self) -> List[ComparisonLine]:
        return [line for line in self.lines if not line.ok]

    def render(self) -> str:
        rows = [
            f"baseline check [{self.suite}] "
            f"(tolerance {self.tolerance:.0%}):"
        ]
        for line in self.lines:
            status = "ok" if line.ok else "REGRESSED"
            flag = "gated" if line.gated else "info "
            rows.append(
                f"  {line.name:<22} {flag}  {status:<9} {line.detail}"
            )
        rows.append("PASS" if self.ok else "FAIL")
        return "\n".join(rows)


def baseline_path(baseline_dir: Union[str, Path], suite: str) -> Path:
    return Path(baseline_dir) / bench_file_name(suite)


def load_baseline(
    baseline_dir: Union[str, Path], suite: str
) -> Optional[Dict[str, Any]]:
    """The committed baseline document for ``suite``, or None if absent."""
    path = baseline_path(baseline_dir, suite)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return doc if isinstance(doc, dict) and "entries" in doc else None


def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    gate_all: bool = False,
) -> ComparisonReport:
    """Grade ``current`` against ``baseline``; see the module docstring."""
    if not 0 <= tolerance < 1:
        raise SimulationError(f"tolerance must be in [0, 1), got {tolerance}")
    suite = current.get("suite", "?")
    report = ComparisonReport(suite=suite, tolerance=tolerance)
    if baseline.get("suite") != suite:
        raise SimulationError(
            f"baseline is for suite {baseline.get('suite')!r}, not {suite!r}"
        )
    schema_ok = baseline.get("schema") == BENCH_SCHEMA
    if not schema_ok:
        # A stale baseline cannot gate; say so rather than fail weirdly.
        report.lines.append(
            ComparisonLine(
                name="(schema)",
                gated=False,
                ok=True,
                current=BENCH_SCHEMA,
                baseline=baseline.get("schema"),
                detail="baseline schema differs; entries reported ungated",
            )
        )
        gate_all = False

    current_entries = current.get("entries", {})
    for name, base_entry in sorted(baseline.get("entries", {}).items()):
        cur_entry = current_entries.get(name)
        if cur_entry is None:
            report.lines.append(
                ComparisonLine(
                    name=name,
                    gated=schema_ok,
                    ok=not schema_ok,
                    current=None,
                    baseline=None,
                    detail="entry missing from the current run",
                )
            )
            continue
        kind = base_entry.get("kind")
        if kind == "ratio":
            base_value = base_entry.get("value")
            cur_value = cur_entry.get("value")
            gated = schema_ok
        elif gate_all and base_entry.get("ops_per_s"):
            base_value = base_entry.get("ops_per_s")
            cur_value = cur_entry.get("ops_per_s")
            gated = True
        else:
            base_value = base_entry.get("ops_per_s") or base_entry.get("wall_s")
            cur_value = cur_entry.get("ops_per_s") or cur_entry.get("wall_s")
            gated = False
        if not isinstance(base_value, (int, float)) or not isinstance(
            cur_value, (int, float)
        ):
            report.lines.append(
                ComparisonLine(
                    name=name,
                    gated=gated,
                    ok=not gated,
                    current=None,
                    baseline=None,
                    detail="non-numeric entry",
                )
            )
            continue
        floor = base_value * (1.0 - tolerance)
        ok = (not gated) or cur_value >= floor
        report.lines.append(
            ComparisonLine(
                name=name,
                gated=gated,
                ok=ok,
                current=float(cur_value),
                baseline=float(base_value),
                detail=(
                    f"current {cur_value:,.2f} vs baseline {base_value:,.2f}"
                    + (f" (floor {floor:,.2f})" if gated else "")
                ),
            )
        )
    return report
