"""The benchmark suites behind ``repro bench``.

Two suites, each emitting one JSON document:

* ``micro`` (``BENCH_micro.json``) -- data-structure and single-replay
  timings: stack-distance tracking (per-call and batched), profile
  construction, and the scalar vs vectorized engine loops on one
  workload, including the ``replay_speedup`` ratio.
* ``sweep`` (``BENCH_sweep.json``) -- the production shape the kernels
  were built for: a grid of (memory size x disk policy) points replaying
  the *same* trace, once through the scalar loop and once through the
  fast path with a single shared :class:`TraceProfile` (its one-time
  build is charged to the vectorized side).  ``sweep_speedup`` is the
  headline number.

Every entry records wall-clock seconds; throughput entries add
``ops_per_s``.  Entries with ``"kind": "ratio"`` are ratios of
wall-clocks measured in the same process and are therefore
machine-independent -- those are what the baseline gate
(:mod:`repro.perf.baseline`) checks by default.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Union

import numpy as np

from repro.cache.profile import build_profile, clear_memo
from repro.cache.stack_distance import StackDistanceTracker
from repro.config.machine import scaled_machine
from repro.errors import SimulationError
from repro.sim.runner import run_method
from repro.traces.specweb import generate_trace
from repro.units import GB, MB

#: Bump when the document layout changes (stale baselines stop gating).
BENCH_SCHEMA = 1

SUITE_NAMES = ("micro", "sweep")

#: The sweep grid: every point replays the same trace; the profile is
#: built once and shared (exactly how campaigns use the kernels).
SWEEP_SIZES_GB = (4, 8, 16, 32)
SWEEP_DISKS = ("2T", "ON", "PT", "EA")


def bench_file_name(suite: str) -> str:
    return f"BENCH_{suite}.json"


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Minimum wall-clock over ``repeats`` runs (noise-robust)."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _workload(quick: bool):
    """The bench workload: the bench_micro.py trace, shorter on --quick."""
    machine = scaled_machine(1024)
    trace = generate_trace(
        dataset_bytes=4 * GB,
        data_rate=100 * MB,
        duration_s=600.0 if quick else 1200.0,
        page_size=machine.page_bytes,
        seed=3,
        file_scale=machine.scale,
    )
    return machine, trace


def _time_entry(wall_s: float, ops: int, **meta: Any) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "kind": "throughput",
        "wall_s": round(wall_s, 6),
        "ops": ops,
        "ops_per_s": round(ops / wall_s, 2) if wall_s > 0 else None,
    }
    entry.update(meta)
    return entry


def _ratio_entry(value: float, note: str) -> Dict[str, Any]:
    return {
        "kind": "ratio",
        "value": round(value, 4),
        "higher_is_better": True,
        "note": note,
    }


# --- the suites ---------------------------------------------------------------


def _suite_micro(quick: bool) -> Dict[str, Any]:
    repeats = 2 if quick else 3
    entries: Dict[str, Any] = {}

    rng = np.random.default_rng(1)
    pages = rng.zipf(1.3, size=5_000 if quick else 20_000)
    page_list = pages.tolist()

    def tracker_loop():
        tracker = StackDistanceTracker()
        access = tracker.access
        for page in page_list:
            access(page)

    wall = _best_of(tracker_loop, repeats)
    entries["stack_tracker"] = _time_entry(wall, len(page_list))

    def tracker_batch():
        StackDistanceTracker().access_array(pages)

    wall = _best_of(tracker_batch, repeats)
    entries["stack_tracker_batch"] = _time_entry(wall, int(pages.size))

    machine, trace = _workload(quick)
    profile_holder: List[Any] = []

    def profile_once():
        profile_holder.clear()
        profile_holder.append(build_profile(trace))

    wall = _best_of(profile_once, repeats)
    entries["profile_build"] = _time_entry(wall, trace.num_accesses)
    profile = profile_holder[0]

    scalar_wall = _best_of(
        lambda: run_method("2TFM-16GB", trace, machine, profile=None), repeats
    )
    entries["replay_scalar"] = _time_entry(scalar_wall, trace.num_accesses)

    vector_wall = _best_of(
        lambda: run_method("2TFM-16GB", trace, machine, profile=profile),
        repeats,
    )
    entries["replay_vectorized"] = _time_entry(vector_wall, trace.num_accesses)

    entries["replay_speedup"] = _ratio_entry(
        scalar_wall / vector_wall,
        "scalar / vectorized wall-clock, one replay, profile prebuilt",
    )
    return entries


def _suite_sweep(quick: bool) -> Dict[str, Any]:
    machine, trace = _workload(quick)
    methods = [
        f"{disk}FM-{size}GB" for disk in SWEEP_DISKS for size in SWEEP_SIZES_GB
    ]

    def run_all(profile_mode) -> List[float]:
        walls = []
        for method in methods:
            start = time.perf_counter()
            result = run_method(method, trace, machine, profile=profile_mode)
            walls.append(time.perf_counter() - start)
            expected = "scalar" if profile_mode is None else "vectorized"
            if result.replay_mode != expected:
                raise SimulationError(
                    f"{method}: expected a {expected} replay, got "
                    f"{result.replay_mode}"
                )
        return walls

    clear_memo()
    scalar_walls = run_all(None)
    clear_memo()  # charge the one-time profile build to the fast side
    vector_walls = run_all("auto")

    scalar_total = sum(scalar_walls)
    vector_total = sum(vector_walls)
    points = len(methods)
    entries: Dict[str, Any] = {
        "sweep_scalar": _time_entry(
            scalar_total, points, accesses=trace.num_accesses
        ),
        "sweep_vectorized": _time_entry(
            vector_total,
            points,
            accesses=trace.num_accesses,
            profile_build_wall_s=round(vector_walls[0], 6),
        ),
        "sweep_speedup": _ratio_entry(
            scalar_total / vector_total,
            f"{points}-point (size x disk policy) sweep over one trace, "
            "shared profile built inside the timed window",
        ),
    }
    return entries


_SUITES: Dict[str, Callable[[bool], Dict[str, Any]]] = {
    "micro": _suite_micro,
    "sweep": _suite_sweep,
}


# --- entry points -------------------------------------------------------------


def run_suite(suite: str, quick: bool = False) -> Dict[str, Any]:
    """Run one suite and return its JSON document."""
    if suite not in _SUITES:
        raise SimulationError(
            f"unknown bench suite {suite!r}; available: {', '.join(SUITE_NAMES)}"
        )
    start = time.perf_counter()
    entries = _SUITES[suite](quick)
    return {
        "suite": suite,
        "schema": BENCH_SCHEMA,
        "quick": bool(quick),
        "elapsed_s": round(time.perf_counter() - start, 3),
        "entries": entries,
    }


def write_suite(doc: Dict[str, Any], out_dir: Union[str, Path]) -> Path:
    """Write ``BENCH_<suite>.json`` under ``out_dir``; returns the path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / bench_file_name(doc["suite"])
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def render_suite(doc: Dict[str, Any]) -> str:
    """Human-readable one-line-per-entry summary."""
    lines = [
        f"suite {doc['suite']}"
        + (" (quick)" if doc.get("quick") else "")
        + f": {doc.get('elapsed_s', 0.0):.2f} s"
    ]
    for name, entry in sorted(doc["entries"].items()):
        if entry.get("kind") == "ratio":
            lines.append(f"  {name:<22} {entry['value']:.2f}x")
        else:
            ops = entry.get("ops_per_s")
            rate = f"{ops:,.0f} ops/s" if ops else ""
            lines.append(
                f"  {name:<22} {entry['wall_s']:.4f} s  {rate}".rstrip()
            )
    return "\n".join(lines)
