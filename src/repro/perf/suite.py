"""The benchmark suites behind ``repro bench``.

Four suites, each emitting one JSON document:

* ``micro`` (``BENCH_micro.json``) -- data-structure and single-replay
  timings: stack-distance tracking (per-call and batched), profile
  construction, and the scalar vs vectorized engine loops on one
  workload, including the ``replay_speedup`` ratio.
* ``sweep`` (``BENCH_sweep.json``) -- the production shape the kernels
  were built for: a grid of (memory size x disk policy) points replaying
  the *same* trace, once through the scalar loop and once through the
  fast path with a single shared :class:`TraceProfile` (its one-time
  build is charged to the vectorized side).  ``sweep_speedup`` is the
  headline number.
* ``joint`` (``BENCH_joint.json``) -- the joint-manager fast paths: the
  epoch-segmented replay vs the scalar loop (``joint_replay_speedup``)
  and the one-pass ``ResizePredictor.predict`` vs a kept-verbatim copy
  of the old per-candidate loop on a full candidate grid
  (``end_period_speedup``).
* ``fullres`` (``BENCH_fullres.json``) -- the paper-scale pipeline: the
  chunked generate-and-replay path vs its materialized twin (wall-clock
  parity and a tracemalloc peak-memory ratio, both gated), the write
  and disable replay kernels vs their scalar loops, and the batched
  cross-trace grid sweep (:mod:`repro.campaign.gridscan`) vs the
  per-cell reference.  The memory entries use a ``scale=1`` workload so
  the materialized arrays actually dominate; everything else runs at
  the standard bench scale.
* ``missrun`` (``BENCH_missrun.json``) -- the miss-run kernel on a
  miss-heavy workload (a dataset four times the memory, so capacity
  misses dominate): the batched miss-run replay vs the scalar loop on
  the same method and trace, with ``miss_replay_speedup`` as the gated
  ratio.  This is the workload shape the other suites deliberately
  avoid -- their hit-dominated traces measure hit-run consumption,
  which used to leave every miss on the scalar path.
* ``fleet`` (``BENCH_fleet.json``) -- the array-level joint manager on
  a skewed multi-tenant workload: the same trace replayed through a
  striped, a partitioned and a migrating :class:`FleetEngine` layout.
  The gated ``fleet_sleep_ratio`` is sleeping disks under
  partitioned+migration over striped (the suite itself asserts >= 2x,
  with migration's transfer energy charged and service quality no
  worse); ``fleet_disk_energy_ratio`` is the resulting disk-energy win.
* ``service`` (``BENCH_service.json``) -- the streaming subsystem:
  single-tenant feed throughput (accesses/s through a
  :class:`~repro.service.streaming.StreamingManager`), concurrent
  multi-tenant throughput through a
  :class:`~repro.service.sessions.SessionRegistry`, and
  ``stream_vs_offline`` -- offline epoch replay wall-clock over
  streaming wall-clock on the same trace, the "streaming costs the same
  as offline" claim as a gated ratio.

Every entry records wall-clock seconds; throughput entries add
``ops_per_s``.  Entries with ``"kind": "ratio"`` are ratios of
wall-clocks measured in the same process and are therefore
machine-independent -- those are what the baseline gate
(:mod:`repro.perf.baseline`) checks by default.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Union

import numpy as np

from repro.cache.profile import build_profile, clear_memo
from repro.cache.stack_distance import StackDistanceTracker
from repro.config.machine import scaled_machine
from repro.errors import SimulationError
from repro.sim.runner import run_method
from repro.traces.specweb import generate_trace
from repro.units import GB, MB

#: Bump when the document layout changes (stale baselines stop gating).
BENCH_SCHEMA = 1

SUITE_NAMES = (
    "micro", "sweep", "joint", "missrun", "service", "fullres", "fleet"
)

#: Concurrent tenant streams the service suite drives.
SERVICE_TENANTS = 8

#: Accesses per ``feed`` batch in the service suite (a realistic
#: telemetry-shipping cadence: a few hundred accesses per report).
SERVICE_BATCH = 512

#: The sweep grid: every point replays the same trace; the profile is
#: built once and shared (exactly how campaigns use the kernels).
SWEEP_SIZES_GB = (4, 8, 16, 32)
SWEEP_DISKS = ("2T", "ON", "PT", "EA")


def bench_file_name(suite: str) -> str:
    return f"BENCH_{suite}.json"


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Minimum wall-clock over ``repeats`` runs (noise-robust)."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _workload(quick: bool):
    """The bench workload: the bench_micro.py trace, shorter on --quick."""
    machine = scaled_machine(1024)
    trace = generate_trace(
        dataset_bytes=4 * GB,
        data_rate=100 * MB,
        duration_s=600.0 if quick else 1200.0,
        page_size=machine.page_bytes,
        seed=3,
        file_scale=machine.scale,
    )
    return machine, trace


def _time_entry(wall_s: float, ops: int, **meta: Any) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "kind": "throughput",
        "wall_s": round(wall_s, 6),
        "ops": ops,
        "ops_per_s": round(ops / wall_s, 2) if wall_s > 0 else None,
    }
    entry.update(meta)
    return entry


def _ratio_entry(value: float, note: str) -> Dict[str, Any]:
    return {
        "kind": "ratio",
        "value": round(value, 4),
        "higher_is_better": True,
        "note": note,
    }


# --- the suites ---------------------------------------------------------------


def _suite_micro(quick: bool) -> Dict[str, Any]:
    repeats = 2 if quick else 3
    entries: Dict[str, Any] = {}

    rng = np.random.default_rng(1)
    pages = rng.zipf(1.3, size=5_000 if quick else 20_000)
    page_list = pages.tolist()

    def tracker_loop():
        tracker = StackDistanceTracker()
        access = tracker.access
        for page in page_list:
            access(page)

    wall = _best_of(tracker_loop, repeats)
    entries["stack_tracker"] = _time_entry(wall, len(page_list))

    def tracker_batch():
        StackDistanceTracker().access_array(pages)

    wall = _best_of(tracker_batch, repeats)
    entries["stack_tracker_batch"] = _time_entry(wall, int(pages.size))

    machine, trace = _workload(quick)
    profile_holder: List[Any] = []

    def profile_once():
        profile_holder.clear()
        profile_holder.append(build_profile(trace))

    wall = _best_of(profile_once, repeats)
    entries["profile_build"] = _time_entry(wall, trace.num_accesses)
    profile = profile_holder[0]

    scalar_wall = _best_of(
        lambda: run_method("2TFM-16GB", trace, machine, profile=None), repeats
    )
    entries["replay_scalar"] = _time_entry(scalar_wall, trace.num_accesses)

    vector_wall = _best_of(
        lambda: run_method("2TFM-16GB", trace, machine, profile=profile),
        repeats,
    )
    entries["replay_vectorized"] = _time_entry(vector_wall, trace.num_accesses)

    entries["replay_speedup"] = _ratio_entry(
        scalar_wall / vector_wall,
        "scalar / vectorized wall-clock, one replay, profile prebuilt",
    )
    return entries


def _suite_sweep(quick: bool) -> Dict[str, Any]:
    machine, trace = _workload(quick)
    methods = [
        f"{disk}FM-{size}GB" for disk in SWEEP_DISKS for size in SWEEP_SIZES_GB
    ]

    def run_all(profile_mode) -> List[float]:
        walls = []
        for method in methods:
            start = time.perf_counter()
            result = run_method(method, trace, machine, profile=profile_mode)
            walls.append(time.perf_counter() - start)
            if profile_mode is None:
                expected = "scalar"
            elif method.startswith(("2T", "ON")):
                # Request-blind policies batch their misses too.
                expected = "missrun"
            else:
                expected = "vectorized"
            if result.replay_mode != expected:
                raise SimulationError(
                    f"{method}: expected a {expected} replay, got "
                    f"{result.replay_mode}"
                )
        return walls

    clear_memo()
    scalar_walls = run_all(None)
    clear_memo()  # charge the one-time profile build to the fast side
    vector_walls = run_all("auto")

    scalar_total = sum(scalar_walls)
    vector_total = sum(vector_walls)
    points = len(methods)
    entries: Dict[str, Any] = {
        "sweep_scalar": _time_entry(
            scalar_total, points, accesses=trace.num_accesses
        ),
        "sweep_vectorized": _time_entry(
            vector_total,
            points,
            accesses=trace.num_accesses,
            profile_build_wall_s=round(vector_walls[0], 6),
        ),
        "sweep_speedup": _ratio_entry(
            scalar_total / vector_total,
            f"{points}-point (size x disk policy) sweep over one trace, "
            "shared profile built inside the timed window",
        ),
    }
    return entries


def _reference_predict(times_list, depths_list, capacities_pages, window_s,
                       period_start, period_end):
    """The pre-optimisation ``ResizePredictor.predict`` loop, verbatim.

    The old predictor stored its samples as Python lists and converted
    them to arrays on every call, then ran one boolean mask, one
    fancy-indexed copy and one list-based idle-interval extraction *per
    candidate* -- kept here as the bench reference so
    ``end_period_speedup`` measures the one-pass rewrite against the
    real cost it replaced.
    """
    from repro.cache.counters import COLD_MISS

    times = np.asarray(times_list, dtype=np.float64)
    depths = np.asarray(depths_list, dtype=np.int64)
    predictions = []
    for capacity in capacities_pages:
        is_disk = (depths == COLD_MISS) | (depths >= capacity)
        disk_times = times[is_disk]
        gaps = []
        if disk_times.size:
            gaps.append(disk_times[0] - period_start)
            gaps.extend(np.diff(disk_times).tolist())
            gaps.append(period_end - disk_times[-1])
        else:
            gaps.append(period_end - period_start)
        lengths = np.asarray(
            [g for g in gaps if g >= window_s and g > 0.0], dtype=float
        )
        predictions.append((int(capacity), int(disk_times.size), lengths))
    return predictions


def _suite_joint(quick: bool) -> Dict[str, Any]:
    from repro.cache.predictor import ResizePredictor
    from repro.core.enumeration import candidate_sizes

    repeats = 2 if quick else 3
    machine, trace = _workload(quick)
    entries: Dict[str, Any] = {}

    # -- epoch-segmented replay vs the scalar loop (profile prebuilt) --
    clear_memo()
    profile = build_profile(trace)

    def run_joint(prof):
        result = run_method("JOINT", trace, machine, profile=prof)
        expected = "scalar" if prof is None else "epoch"
        if result.replay_mode != expected:
            raise SimulationError(
                f"JOINT: expected a {expected} replay, got {result.replay_mode}"
            )
        return result

    scalar_wall = _best_of(lambda: run_joint(None), repeats)
    entries["joint_replay_scalar"] = _time_entry(scalar_wall, trace.num_accesses)

    epoch_wall = _best_of(lambda: run_joint(profile), repeats)
    entries["joint_replay_epoch"] = _time_entry(epoch_wall, trace.num_accesses)

    entries["joint_replay_speedup"] = _ratio_entry(
        scalar_wall / epoch_wall,
        "scalar / epoch wall-clock, one JOINT replay, profile prebuilt",
    )

    # -- end_period enumeration: one-pass predict vs the old loop --
    # One period's worth of (time, depth) samples, exactly what the
    # manager holds when end_period fires, against the full candidate grid.
    period = machine.manager.period_s
    window = machine.manager.aggregation_window_s
    cut = int(np.searchsorted(trace.times, period, side="left"))
    times = trace.times[:cut].astype(np.float64)
    depths = profile.depths[:cut].astype(np.int64)
    pages = [size // machine.page_bytes for size in candidate_sizes(machine)]
    # The old predictor kept its samples as Python lists; the reference
    # starts from the same representation.
    times_list = times.tolist()
    depths_list = [int(d) for d in depths]

    predictor = ResizePredictor()
    predictor.record_array(times, depths)

    # Sanity: both implementations must agree before either is timed.
    fast = predictor.predict(pages, window, 0.0, period)
    ref = _reference_predict(times_list, depths_list, pages, window, 0.0, period)
    for got, (cap, num_disk, lengths) in zip(fast, ref):
        if (
            got.capacity_pages != cap
            or got.num_disk_accesses != num_disk
            or not np.array_equal(got.idle.lengths, lengths)
        ):
            raise SimulationError(
                f"predict mismatch vs reference at capacity {cap}"
            )

    # Both sides are sub-millisecond; amortise over inner iterations so
    # the ratio is stable against timer granularity.
    iters = 10 if quick else 30

    def ref_loop():
        for _ in range(iters):
            _reference_predict(
                times_list, depths_list, pages, window, 0.0, period
            )

    ref_wall = _best_of(ref_loop, repeats) / iters
    entries["end_period_reference"] = _time_entry(
        ref_wall, len(pages), samples=int(times.size)
    )

    def fast_loop():
        for _ in range(iters):
            predictor.predict(pages, window, 0.0, period)

    fast_wall = _best_of(fast_loop, repeats) / iters
    entries["end_period_fast"] = _time_entry(
        fast_wall, len(pages), samples=int(times.size)
    )

    entries["end_period_speedup"] = _ratio_entry(
        ref_wall / fast_wall,
        f"old per-candidate loop / one-pass predict, {len(pages)} candidates",
    )
    return entries


def _suite_missrun(quick: bool) -> Dict[str, Any]:
    repeats = 2 if quick else 3
    entries: Dict[str, Any] = {}

    # Miss-heavy workload: a uniform (popularity=1.0) scan over a
    # dataset sixteen times the 1 GB memory the method brings, so nearly
    # every access is a capacity miss and misses arrive in long
    # sequential runs.  The hit-dominated ``_workload`` trace the other
    # suites use would measure hit-run consumption instead.
    machine = scaled_machine(1024)
    trace = generate_trace(
        dataset_bytes=16 * GB,
        data_rate=100 * MB,
        duration_s=600.0 if quick else 1200.0,
        popularity=1.0,
        page_size=machine.page_bytes,
        seed=7,
        file_scale=machine.scale,
    )
    clear_memo()
    profile = build_profile(trace)

    def run_missheavy(prof, expected):
        result = run_method("2TFM-1GB", trace, machine, profile=prof)
        if result.replay_mode != expected:
            raise SimulationError(
                f"miss-run replay: expected {expected}, got "
                f"{result.replay_mode}"
            )
        return result

    miss_fraction = round(run_missheavy(profile, "missrun").miss_ratio, 4)

    scalar_wall = _best_of(lambda: run_missheavy(None, "scalar"), repeats)
    entries["miss_replay_scalar"] = _time_entry(
        scalar_wall, trace.num_accesses, miss_fraction=miss_fraction
    )

    fast_wall = _best_of(lambda: run_missheavy(profile, "missrun"), repeats)
    entries["miss_replay_fast"] = _time_entry(
        fast_wall, trace.num_accesses, miss_fraction=miss_fraction
    )

    entries["miss_replay_speedup"] = _ratio_entry(
        scalar_wall / fast_wall,
        "scalar / missrun-kernel wall-clock, miss-heavy trace "
        f"({miss_fraction:.0%} misses), profile prebuilt",
    )
    return entries


def _suite_service(quick: bool) -> Dict[str, Any]:
    import threading

    from repro.service.sessions import SessionRegistry
    from repro.service.streaming import StreamingManager

    repeats = 2 if quick else 3
    machine, trace = _workload(quick)
    times = trace.times
    pages = trace.pages
    n = trace.num_accesses
    period = machine.manager.period_s
    duration = max(int(np.ceil(trace.duration_s / period)), 1) * period
    entries: Dict[str, Any] = {}

    def stream_once():
        stream = StreamingManager("JOINT", machine)
        for lo in range(0, n, SERVICE_BATCH):
            hi = min(lo + SERVICE_BATCH, n)
            stream.feed(times[lo:hi], pages[lo:hi])
        return stream.close(float(duration))

    stream_wall = _best_of(stream_once, repeats)
    entries["stream_feed"] = _time_entry(
        stream_wall, n, batch=SERVICE_BATCH, method="JOINT"
    )

    # Offline twin, profile build inside the timed window: the streaming
    # side pays its incremental Mattson pass per feed, so the fair
    # comparison charges the offline side its one-time profile build.
    def offline_once():
        clear_memo()
        return run_method(
            "JOINT", trace, machine, duration_s=float(duration), warm_start=False
        )

    offline_wall = _best_of(offline_once, repeats)
    entries["offline_epoch"] = _time_entry(offline_wall, n)

    entries["stream_vs_offline"] = _ratio_entry(
        offline_wall / stream_wall,
        "offline epoch replay / streaming feed wall-clock, same trace, "
        f"{SERVICE_BATCH}-access batches",
    )

    # Concurrent tenants: every thread streams the same trace through
    # its own registry session (GIL-bound, so this measures the session
    # layer's locking overhead, not parallel speedup).
    def tenants_once():
        registry = SessionRegistry(machine)
        errors: List[BaseException] = []

        def tenant():
            try:
                sid = registry.open_session("JOINT", machine=machine)
                for lo in range(0, n, SERVICE_BATCH):
                    hi = min(lo + SERVICE_BATCH, n)
                    registry.feed(sid, times[lo:hi], pages[lo:hi])
                registry.close(sid, float(duration))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=tenant) for _ in range(SERVICE_TENANTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise SimulationError(f"tenant stream failed: {errors[0]}")

    tenants_wall = _best_of(tenants_once, repeats)
    entries["stream_multitenant"] = _time_entry(
        tenants_wall, n * SERVICE_TENANTS, tenants=SERVICE_TENANTS
    )
    return entries


def _memory_entry(peak_bytes: int, **meta: Any) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "kind": "memory",
        "peak_bytes": int(peak_bytes),
        "peak_mb": round(peak_bytes / (1024 * 1024), 2),
    }
    entry.update(meta)
    return entry


def _traced_peak(fn: Callable[[], Any]) -> int:
    """Peak traced allocation (bytes) while ``fn`` runs, via tracemalloc."""
    import gc
    import tracemalloc

    gc.collect()
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def _suite_fullres(quick: bool) -> Dict[str, Any]:
    from repro.campaign.gridscan import grid_scan, naive_grid_scan
    from repro.cache.profile import KERNELS_ENV, get_profile
    from repro.sim.runner import run_chunked
    from repro.traces.specweb import generate_trace_chunked
    from repro.traces.suites import build

    repeats = 2 if quick else 3
    entries: Dict[str, Any] = {}

    # The suite's workhorse: a finer machine (scale 64) and a
    # hit-dominated ~240k-access workload.  Both fast paths must run the
    # exact scalar sequence on every miss, so miss-heavy traces would
    # measure that shared cost, not the kernels; the hit runs are where
    # vectorized consumption pays.
    kernel_machine = scaled_machine(64)
    kernel_kwargs = dict(
        dataset_bytes=512 * MB,
        data_rate=100 * MB,
        duration_s=600.0 if quick else 1200.0,
        page_size=kernel_machine.page_bytes,
        seed=3,
        file_scale=kernel_machine.scale,
    )

    # -- chunked pipeline vs materialized twin: wall-clock parity ------
    # Full pipelines on both sides (generate + replay, cold start), same
    # seed, so the ratio says "chunking is free", not just "replay is".
    def materialized_pipeline():
        full = generate_trace(**kernel_kwargs)
        return run_method("2TDS-128GB", full, kernel_machine, warm_start=False)

    def chunked_pipeline():
        source = generate_trace_chunked(chunk_accesses=1 << 20, **kernel_kwargs)
        return run_chunked("2TDS-128GB", source, kernel_machine)

    pipeline_accesses = int(
        generate_trace_chunked(
            chunk_accesses=1 << 20, **kernel_kwargs
        ).num_accesses
    )
    # Both pipelines churn ~240k-access arrays; collect between the two
    # timed windows so one side's garbage doesn't bill the other.
    import gc

    gc.collect()
    materialized_wall = _best_of(materialized_pipeline, max(repeats, 3))
    entries["pipeline_materialized"] = _time_entry(
        materialized_wall, pipeline_accesses
    )
    gc.collect()
    chunked_wall = _best_of(chunked_pipeline, max(repeats, 3))
    entries["pipeline_chunked"] = _time_entry(chunked_wall, pipeline_accesses)
    entries["chunked_replay_parity"] = _ratio_entry(
        materialized_wall / chunked_wall,
        "materialized / chunked generate-and-replay wall-clock, same seed "
        "(~1.0: chunking must not cost throughput)",
    )

    # -- chunked pipeline vs materialized twin: peak memory ------------
    # A scale=1 workload, so the per-access arrays (not the simulator
    # state) dominate the materialized side's footprint.
    fine = scaled_machine(1)
    fine_kwargs = dict(
        dataset_bytes=256 * MB,
        data_rate=100 * MB,
        duration_s=30.0 if quick else 120.0,
        page_size=fine.page_bytes,
        seed=11,
        file_scale=fine.scale,
    )

    def materialized_fine():
        full = generate_trace(**fine_kwargs)
        return run_method("2TDS-128GB", full, fine, warm_start=False)

    def chunked_fine():
        source = generate_trace_chunked(chunk_accesses=1 << 16, **fine_kwargs)
        return run_chunked("2TDS-128GB", source, fine)

    fine_accesses = int(
        generate_trace_chunked(chunk_accesses=1 << 16, **fine_kwargs).num_accesses
    )
    materialized_peak = _traced_peak(materialized_fine)
    entries["pipeline_peak_materialized"] = _memory_entry(
        materialized_peak, scale=1, accesses=fine_accesses
    )
    chunked_peak = _traced_peak(chunked_fine)
    entries["pipeline_peak_chunked"] = _memory_entry(
        chunked_peak, scale=1, accesses=fine_accesses
    )
    entries["chunked_memory_ratio"] = _ratio_entry(
        materialized_peak / chunked_peak,
        "materialized / chunked pipeline peak tracemalloc bytes, scale=1 "
        "(the chunked side must stay bounded by the chunk, not the trace)",
    )

    # -- write-replay kernel vs the scalar loop ------------------------
    # Lightly written (3%): the writes kernel replays each write exactly
    # and vectorizes the read runs between them.
    writeful = generate_trace(write_fraction=0.03, **kernel_kwargs)
    clear_memo()
    write_profile = build_profile(writeful)

    def run_writes(prof):
        result = run_method("2TFM-16GB", writeful, kernel_machine, profile=prof)
        expected = "scalar" if prof is None else "writes"
        if result.replay_mode != expected:
            raise SimulationError(
                f"write replay: expected {expected}, got {result.replay_mode}"
            )
        return result

    write_scalar = _best_of(lambda: run_writes(None), repeats)
    entries["write_replay_scalar"] = _time_entry(
        write_scalar, writeful.num_accesses
    )
    write_fast = _best_of(lambda: run_writes(write_profile), repeats)
    entries["write_replay_fast"] = _time_entry(
        write_fast, writeful.num_accesses
    )
    entries["write_replay_speedup"] = _ratio_entry(
        write_scalar / write_fast,
        "scalar / writes-kernel wall-clock, 3%-write trace, "
        "profile prebuilt",
    )

    # -- disable-model replay vs the scalar loop -----------------------
    # The disable fast path needs no profile (it replays from live bank
    # state); only the $REPRO_KERNELS kill switch forces it scalar.
    import os

    readful = generate_trace(**kernel_kwargs)

    def run_disable(expected):
        result = run_method(
            "2TDS-128GB", readful, kernel_machine, warm_start=False
        )
        if result.replay_mode != expected:
            raise SimulationError(
                f"disable replay: expected {expected}, got {result.replay_mode}"
            )
        return result

    saved = os.environ.get(KERNELS_ENV)
    os.environ[KERNELS_ENV] = "0"
    try:
        disable_scalar = _best_of(lambda: run_disable("scalar"), repeats)
    finally:
        if saved is None:
            os.environ.pop(KERNELS_ENV, None)
        else:
            os.environ[KERNELS_ENV] = saved
    entries["disable_replay_scalar"] = _time_entry(
        disable_scalar, readful.num_accesses
    )
    disable_fast = _best_of(lambda: run_disable("disable"), repeats)
    entries["disable_replay_fast"] = _time_entry(
        disable_fast, readful.num_accesses
    )
    entries["disable_replay_speedup"] = _ratio_entry(
        disable_scalar / disable_fast,
        "scalar ($REPRO_KERNELS=0) / disable-kernel wall-clock, "
        "live-bank fast path",
    )

    # -- batched cross-trace grid vs the per-cell reference ------------
    grid_machine = scaled_machine(1024)
    duration = 600.0 if quick else 1200.0
    grid_traces = [
        build("paper-default", grid_machine, duration, seed=seed)
        for seed in (3, 5, 9)
    ]
    page = grid_machine.page_bytes
    sizes = [page * (1 << k) for k in range(0, 12, 2)]
    timeouts = [float(t) for t in (0.5, 2.0, 8.0, 15.2, 30.0, 120.0, 600.0)]
    cells = len(grid_traces) * len(sizes) * len(timeouts)
    # Profiles are shared state (memo / result cache) under either
    # evaluator, so warm them outside the timed window: the ratio
    # measures the per-cell sweep work the batching removes.
    clear_memo()
    for grid_trace in grid_traces:
        get_profile(grid_trace)

    naive_wall = _best_of(
        lambda: naive_grid_scan(grid_traces, grid_machine, sizes, timeouts),
        repeats,
    )
    entries["grid_naive"] = _time_entry(naive_wall, cells)

    batched_wall = _best_of(
        lambda: grid_scan(grid_traces, grid_machine, sizes, timeouts), repeats
    )
    entries["grid_batched"] = _time_entry(batched_wall, cells)
    entries["grid_speedup"] = _ratio_entry(
        naive_wall / batched_wall,
        f"per-cell reference / batched pass, {cells} "
        "(trace x size x timeout) cells, profiles memoized up front",
    )
    return entries


def _suite_fleet(quick: bool) -> Dict[str, Any]:
    from repro.fleet.engine import FleetEngine
    from repro.fleet.layout import (
        MigratingLayout,
        PartitionedLayout,
        StripedLayout,
    )
    from repro.memory.system import NapMemorySystem
    from repro.policies.pareto_timeout import ParetoTimeoutPolicy
    from repro.traces.trace import Trace

    machine = scaled_machine(1024)
    period = machine.manager.period_s
    periods = 4 if quick else 8
    duration = periods * period
    disks = 4
    span = 400  # pages; the base partition is 100 pages per disk
    # Skewed multi-tenant shape: a first-period cold scan touches the
    # whole span, then three tenants hammer narrow hot bands that start
    # scattered across the array -- one per non-zero spindle.  Striping
    # spreads every band over all four disks; migration packs the 60-page
    # hot set onto disk 0 after one popularity period.
    rng = np.random.default_rng(23)
    cold_n = 300 if quick else 600
    hot_n = 900 if quick else 2400
    bands = ((110, 130), (210, 230), (310, 330))
    cold_pages = rng.integers(0, span, size=cold_n)
    cold_times = np.sort(rng.uniform(0.0, period * 0.95, size=cold_n))
    hot_pages = np.concatenate(
        [rng.integers(lo, hi, size=hot_n // len(bands)) for lo, hi in bands]
    )
    rng.shuffle(hot_pages)  # interleave the tenants' accesses in time
    hot_times = np.sort(
        rng.uniform(period, duration * 0.95, size=hot_pages.size)
    )
    trace = Trace(
        times=np.concatenate([cold_times, hot_times]),
        pages=np.concatenate([cold_pages, hot_pages]).astype(np.int64),
        page_size=machine.page_bytes,
    )

    def run_layout(layout):
        # Memory far below the hot set (32 pages vs 60), so the hot
        # phase keeps missing and the layouts differ in which spindles
        # that wakes -- the regime where placement decides sleep.
        engine = FleetEngine(
            machine,
            NapMemorySystem(machine.memory, 128 * MB),
            layout,
            policy_factory=lambda: ParetoTimeoutPolicy(
                machine.disk.break_even_time_s,
                aggregation_window_s=machine.manager.aggregation_window_s,
            ),
        )
        start = time.perf_counter()
        result = engine.run(trace, duration_s=float(duration))
        return result, time.perf_counter() - start

    striped, striped_wall = run_layout(StripedLayout(disks, extent_pages=4))
    partitioned, part_wall = run_layout(
        PartitionedLayout(disks, pages_per_disk=span // disks)
    )
    migrating, migr_wall = run_layout(
        MigratingLayout(disks, pages_per_disk=span // disks)
    )

    # The headline claim, asserted here (not just gated): migration's
    # transfer energy is really charged, service quality is no worse,
    # and partitioned+migration still sleeps >= 2x the disks striping does.
    if migrating.pages_migrated <= 0 or migrating.migration_energy_j <= 0.0:
        raise SimulationError(
            "fleet suite: the migrating layout moved no pages "
            f"({migrating.pages_migrated} migrated, "
            f"{migrating.migration_energy_j} J)"
        )
    if migrating.long_latency > striped.long_latency:
        raise SimulationError(
            "fleet suite: migration degraded service quality "
            f"({migrating.long_latency} long latencies vs "
            f"{striped.long_latency} striped)"
        )
    sleep_ratio = migrating.sleeping_disks / max(striped.sleeping_disks, 1)
    if sleep_ratio < 2.0:
        raise SimulationError(
            "fleet suite: migration slept "
            f"{migrating.sleeping_disks}/{disks} disk(s) vs "
            f"{striped.sleeping_disks} striped -- below the 2x claim"
        )

    def layout_entry(result, wall):
        return _time_entry(
            wall,
            trace.num_accesses,
            sleeping_disks=result.sleeping_disks,
            disk_energy_j=round(result.disk_energy_j, 1),
            long_latency=result.long_latency,
        )

    return {
        "fleet_striped": layout_entry(striped, striped_wall),
        "fleet_partitioned": layout_entry(partitioned, part_wall),
        "fleet_migrating": {
            **layout_entry(migrating, migr_wall),
            "pages_migrated": migrating.pages_migrated,
            "migration_energy_j": round(migrating.migration_energy_j, 1),
        },
        "fleet_sleep_ratio": _ratio_entry(
            sleep_ratio,
            f"sleeping disks, partitioned+migration / striped, {disks}-disk "
            "array on a skewed multi-tenant trace (migration energy charged)",
        ),
        "fleet_disk_energy_ratio": _ratio_entry(
            striped.disk_energy_j / migrating.disk_energy_j,
            "striped / migrating disk energy, same trace and policy "
            "(includes the migration transfer charge)",
        ),
    }


_SUITES: Dict[str, Callable[[bool], Dict[str, Any]]] = {
    "micro": _suite_micro,
    "sweep": _suite_sweep,
    "joint": _suite_joint,
    "missrun": _suite_missrun,
    "service": _suite_service,
    "fullres": _suite_fullres,
    "fleet": _suite_fleet,
}


# --- entry points -------------------------------------------------------------


def run_suite(suite: str, quick: bool = False) -> Dict[str, Any]:
    """Run one suite and return its JSON document."""
    if suite not in _SUITES:
        raise SimulationError(
            f"unknown bench suite {suite!r}; available: {', '.join(SUITE_NAMES)}"
        )
    start = time.perf_counter()
    entries = _SUITES[suite](quick)
    return {
        "suite": suite,
        "schema": BENCH_SCHEMA,
        "quick": bool(quick),
        "elapsed_s": round(time.perf_counter() - start, 3),
        "entries": entries,
    }


def write_suite(doc: Dict[str, Any], out_dir: Union[str, Path]) -> Path:
    """Write ``BENCH_<suite>.json`` under ``out_dir``; returns the path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / bench_file_name(doc["suite"])
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def render_suite(doc: Dict[str, Any]) -> str:
    """Human-readable one-line-per-entry summary."""
    lines = [
        f"suite {doc['suite']}"
        + (" (quick)" if doc.get("quick") else "")
        + f": {doc.get('elapsed_s', 0.0):.2f} s"
    ]
    for name, entry in sorted(doc["entries"].items()):
        if entry.get("kind") == "ratio":
            lines.append(f"  {name:<22} {entry['value']:.2f}x")
        elif entry.get("kind") == "memory":
            lines.append(f"  {name:<22} {entry['peak_mb']:.1f} MB peak")
        else:
            ops = entry.get("ops_per_s")
            rate = f"{ops:,.0f} ops/s" if ops else ""
            lines.append(
                f"  {name:<22} {entry['wall_s']:.4f} s  {rate}".rstrip()
            )
    return "\n".join(lines)
