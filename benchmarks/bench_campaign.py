"""Campaign benchmark: fan-out wall-clock and cache effectiveness.

Runs a multi-experiment campaign three ways and records the telemetry
the orchestrator produces:

* cold serial -- every task executed in-process (the reference cost),
* cold parallel -- the same tasks over ``REPRO_JOBS`` workers,
* warm -- a second invocation against the same cache, which should do
  essentially no simulation work at all.

``REPRO_JOBS`` (default: the CPU count, capped at 4) picks the worker
count; single-core machines still run the parallel leg, they just can't
expect a speedup, so the speedup assertion only applies with >1 CPU.
"""

from __future__ import annotations

import json
import os

from repro.campaign.cache import ResultCache
from repro.campaign.executor import run_campaign
from repro.experiments.registry import get_plan

#: Experiments whose grids give the pool something to chew on.
NAMES = ("fig7", "fig8rate", "ablation")


def _jobs() -> int:
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(int(env), 1)
    return max(min(os.cpu_count() or 1, 4), 1)


def _tasks(profile):
    return [task for name in NAMES for task in get_plan(name, profile).tasks]


def test_campaign_fanout(benchmark, profile, tmp_path):
    tasks = _tasks(profile)
    jobs = _jobs()
    cache = ResultCache(tmp_path / "cache")

    cold_serial = run_campaign(tasks, jobs=1)
    cold_parallel = benchmark.pedantic(
        run_campaign,
        args=(tasks,),
        kwargs={"jobs": jobs, "cache": cache},
        rounds=1,
        iterations=1,
    )
    warm = run_campaign(tasks, jobs=jobs, cache=cache)

    assert cold_serial.ok and cold_parallel.ok and warm.ok
    assert cold_parallel.payloads() == cold_serial.payloads()
    assert warm.payloads() == cold_serial.payloads()
    assert warm.stats.hit_ratio >= 0.95

    telemetry = {
        "jobs": jobs,
        "tasks": len(tasks),
        "cold_serial_s": round(cold_serial.stats.elapsed_s, 3),
        "cold_parallel_s": round(cold_parallel.stats.elapsed_s, 3),
        "cold_speedup": round(cold_parallel.stats.speedup, 3),
        "worker_utilization": round(cold_parallel.stats.utilization, 3),
        "warm_s": round(warm.stats.elapsed_s, 3),
        "warm_hit_ratio": round(warm.stats.hit_ratio, 3),
    }
    print()
    print(cold_parallel.render_summary())
    print(warm.render_summary())

    out_dir = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "campaign.json"), "w") as handle:
        json.dump(telemetry, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if (os.cpu_count() or 1) > 1 and jobs > 1:
        # With real cores behind the pool the fan-out must beat serial
        # execution on aggregate task time.
        assert cold_parallel.stats.speedup > 1.0, telemetry
