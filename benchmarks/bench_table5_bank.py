"""Table V benchmark: joint-method sensitivity to the memory bank size."""

from __future__ import annotations

from repro.experiments import table5_bank


def test_table5_bank_sensitivity(benchmark, profile, publish):
    result = benchmark.pedantic(
        table5_bank.run, args=(profile,), rounds=1, iterations=1
    )
    publish(result)
    rows = sorted(result.rows, key=lambda row: row["bank_mb"])
    energies = [row["total_energy"] for row in rows]

    # Paper shape: total energy nearly constant across bank sizes.
    assert max(energies) - min(energies) < 0.15
    assert all(value < 1.0 for value in energies)

    # Paper shape: coarser banks never *reduce* the memory share --
    # the chosen size rounds up to coarser units.
    assert rows[-1]["memory_energy"] >= rows[0]["memory_energy"] - 0.02

    assert all(row["long_latency_per_s"] < 3.0 for row in rows)
