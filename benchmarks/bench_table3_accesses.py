"""Table III benchmark: memory and disk access counts per data set."""

from __future__ import annotations

from repro.experiments import table3_accesses


def test_table3_access_counts(benchmark, profile, publish):
    result = benchmark.pedantic(
        table3_accesses.run, args=(profile,), rounds=1, iterations=1
    )
    publish(result)
    rows = {row["method"]: row for row in result.rows}
    datasets = [key for key in rows["JOINT"] if key != "method"]
    biggest = datasets[-1]

    # Memory accesses depend only on the workload and dwarf disk accesses.
    ma = rows["MA (memory accesses)"]
    for dataset in datasets:
        assert ma[dataset] > rows["ALWAYS-ON"][dataset]

    # PD keeps data, so its miss stream matches the full-memory baseline.
    for dataset in datasets:
        assert rows["2TPD-128GB"][dataset] == rows["ALWAYS-ON"][dataset]

    # DS loses data: at the biggest data set it misses at least as often
    # as the baseline.
    assert rows["2TDS-128GB"][biggest] >= rows["ALWAYS-ON"][biggest]

    # Undersized FM misses more than full-size FM on the big data sets.
    fm_labels = sorted(
        (label for label in rows if label.startswith("2TFM")),
        key=lambda label: int(label.split("-")[1][:-2]),
    )
    assert rows[fm_labels[0]][biggest] >= rows[fm_labels[-1]][biggest]
