"""Fig. 5 benchmark: Pareto model, estimator recovery, eq. (5) validation."""

from __future__ import annotations

from repro.experiments import fig5_pareto


def test_fig5_pareto(benchmark, profile, publish):
    result = benchmark.pedantic(
        fig5_pareto.run, args=(profile,), rounds=1, iterations=1
    )
    publish(result)
    rows = {(row["alpha"], row["beta"]): row for row in result.rows}
    for (alpha, _beta), row in rows.items():
        # The paper's estimator recovers alpha...
        assert abs(row["alpha_mom"] - alpha) / alpha < 0.15
        # ... and eq. (5) matches the numerical optimum of eq. (4).
        assert abs(row["t_opt_eq5_s"] - row["t_opt_numeric_s"]) < 0.5
