"""Sweep-scale performance benchmark: the ``repro bench`` suites.

Runs the :mod:`repro.perf` suites exactly as ``repro bench`` does and
archives the ``BENCH_micro.json`` / ``BENCH_sweep.json`` documents under
``benchmarks/out/``.  The assertions are sanity floors, not the
regression gate -- CI's perf-smoke job compares against the committed
baselines in ``benchmarks/baselines/`` with a proper tolerance.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.perf import run_suite, write_suite
from repro.perf.suite import render_suite

OUT_DIR = Path(__file__).parent / "out"
QUICK = os.environ.get("REPRO_PROFILE", "full").strip().lower() == "quick"


@pytest.mark.parametrize("suite", ["micro", "sweep"])
def test_bench_suite(suite):
    doc = run_suite(suite, quick=QUICK)
    path = write_suite(doc, OUT_DIR)
    print()
    print(render_suite(doc))
    print(f"wrote {path}")
    if suite == "micro":
        assert doc["entries"]["replay_speedup"]["value"] > 1.0
    else:
        assert doc["entries"]["sweep_speedup"]["value"] > 1.0
