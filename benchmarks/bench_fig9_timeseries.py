"""Fig. 9 benchmark: per-period disk requests and idleness over time."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig9_timeseries


def test_fig9_timeseries(benchmark, profile, publish):
    result = benchmark.pedantic(
        fig9_timeseries.run, args=(profile,), rounds=1, iterations=1
    )
    publish(result)
    rows = result.rows

    def requests(memory_gb):
        return np.array(
            [
                row["disk_requests"]
                for row in rows
                if row["memory_gb"] == memory_gb
            ],
            dtype=float,
        )

    small, large = requests(8), requests(16)
    assert small.size and large.size

    from repro.experiments.ascii_chart import series_panel

    print()
    print(
        series_panel(
            {"8 GB": small.tolist(), "16 GB": large.tolist()},
            title="Fig. 9(a) -- disk requests per period",
        )
    )

    # Paper shape 1: more disk requests at 8 GB than at 16 GB (the
    # 32-GB data set fits neither, but 16 GB catches more reuse).
    assert small.mean() >= large.mean()

    # Paper shape 2: period-to-period variation is bounded -- the
    # last-period value is a usable prediction (paper: max ~15-25 %,
    # average under ~5 % on their trace; we allow head-room for the
    # shorter horizon).
    def avg_variation(series):
        if series.size < 2:
            return 0.0
        return float(
            np.mean(np.abs(np.diff(series)) / np.maximum(series[1:], 1e-9))
        )

    assert avg_variation(large) < 0.75
