"""Benchmarks of the offline optimality oracle.

Pins the cost of the Belady pass (heap replay plus the one-lexsort
next-use precomputation) against the brute-force twin, and the
end-to-end price of scoring a finished run's regret -- the number a
campaign pays per task when ``SimTask(regret=True)`` is on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.regret import compute_regret
from repro.config.machine import scaled_machine
from repro.sim.runner import run_method
from repro.traces.specweb import generate_trace
from repro.units import GB, MB
from repro.verify.optimal import compute_next_use, naive_opt_replay, opt_replay


@pytest.fixture(scope="module")
def machine():
    return scaled_machine(1024)


@pytest.fixture(scope="module")
def trace(machine):
    return generate_trace(
        dataset_bytes=4 * GB,
        data_rate=100 * MB,
        duration_s=1200.0,
        page_size=machine.page_bytes,
        seed=3,
        file_scale=machine.scale,
    )


@pytest.fixture(scope="module")
def zipf_pages():
    rng = np.random.default_rng(9)
    return rng.zipf(1.3, size=20_000).astype(np.int64)


def test_next_use_precompute(benchmark, zipf_pages):
    benchmark(compute_next_use, zipf_pages)


def test_opt_replay_fixed_capacity(benchmark, zipf_pages):
    n = int(zipf_pages.size)
    next_use = compute_next_use(zipf_pages)
    benchmark(opt_replay, zipf_pages, [(0, n, 256)], next_use=next_use)


def test_opt_replay_dynamic_schedule(benchmark, zipf_pages):
    n = int(zipf_pages.size)
    next_use = compute_next_use(zipf_pages)
    cuts = np.linspace(0, n, 9).astype(int)
    epochs = [
        (int(cuts[k]), int(cuts[k + 1]), 64 * (1 + k % 4))
        for k in range(len(cuts) - 1)
    ]
    benchmark(opt_replay, zipf_pages, epochs, next_use=next_use)


def test_naive_opt_replay_small(benchmark, zipf_pages):
    """The quadratic oracle on a slice: kept small on purpose (the
    differential fuzzer is its only production caller)."""
    small = zipf_pages[:600]
    n = int(small.size)
    benchmark.pedantic(
        naive_opt_replay, args=(small, [(0, n, 64)]), rounds=3, iterations=1
    )


def test_regret_scoring_end_to_end(benchmark, machine, trace):
    """compute_regret on a finished JOINT run (profile already memoized)."""
    result = run_method("JOINT", trace, machine, duration_s=1200.0)
    benchmark.pedantic(
        compute_regret,
        args=(result, trace, machine),
        rounds=3,
        iterations=1,
    )
