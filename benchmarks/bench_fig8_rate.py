"""Fig. 8(a,b) benchmark: energy and long-latency vs data rate."""

from __future__ import annotations

from repro.experiments import fig8_rate


def _series(rows, method, key):
    return [
        row[key]
        for row in sorted(rows, key=lambda r: r["rate_mb_s"])
        if row["method"] == method
    ]


def test_fig8_rate_sweep(benchmark, profile, publish):
    result = benchmark.pedantic(
        fig8_rate.run, args=(profile,), rounds=1, iterations=1
    )
    publish(result)
    rows = result.rows

    # Paper shape 1: methods whose memory covers the data set are nearly
    # flat in energy across rates (their cache absorbs everything).
    flat = _series(rows, "2TFM-128GB", "total_energy")
    assert max(flat) - min(flat) < 0.15

    # Paper shape 2: the joint method beats the oversized methods at
    # every rate (paper: 2TFM-64GB consumes 41-45% more than joint).
    joint = _series(rows, "JOINT", "total_energy")
    oversized = _series(rows, "2TFM-64GB", "total_energy")
    assert all(j < o for j, o in zip(joint, oversized))

    # Paper shape 3: every method saves energy against always-on.
    assert all(value < 1.0 for value in joint)

    # Paper shape 4: joint long-latency stays below three per second.
    assert all(
        value < 3.0 for value in _series(rows, "JOINT", "long_latency_per_s")
    )
