"""Fig. 8(c,d) benchmark: energy and long-latency vs data popularity."""

from __future__ import annotations

from repro.experiments import fig8_popularity


def _series(rows, method, key):
    return [
        row[key]
        for row in sorted(rows, key=lambda r: r["popularity"])
        if row["method"] == method
    ]


def test_fig8_popularity_sweep(benchmark, profile, publish):
    result = benchmark.pedantic(
        fig8_popularity.run, args=(profile,), rounds=1, iterations=1
    )
    publish(result)
    rows = result.rows

    # Paper shape 1: whole-data-set methods are flat across popularity.
    flat = _series(rows, "2TFM-128GB", "total_energy")
    assert max(flat) - min(flat) < 0.15

    # Paper shape 2: at dense popularity (0.05-0.2) the joint method
    # saves substantially against 32-GB-plus configurations (paper:
    # 13-21 % more savings than 2TFM-32GB / 2TPD).
    joint = _series(rows, "JOINT", "total_energy")
    fm32 = _series(rows, "2TFM-32GB", "total_energy")
    pops = sorted({row["popularity"] for row in rows})
    for pop, j, f in zip(pops, joint, fm32):
        if pop <= 0.2:
            assert j < f, f"joint should win at dense popularity {pop}"

    # Paper shape 3: joint long-latency low at dense popularity
    # ("almost no requests with long latency" at 0.05-0.2).
    for pop, rate in zip(pops, _series(rows, "JOINT", "long_latency_per_s")):
        if pop <= 0.2:
            assert rate < 3.0
