"""Capstone: the joint method across every named workload suite.

One row per canonical workload (``repro.traces.suites``): the paper's
default point, small/dense/sparse/fast/slow variants, the diurnal and
bursty non-stationary loads, the write-heavy mix and the self-similar
stream.  Asserts the paper's headline promise in its general form --
"the joint method saves significant amounts of energy with acceptable
performance degradation **consistently across workloads with different
characteristics**" (paper abstract / Section VI).
"""

from __future__ import annotations

from repro.experiments.formatting import render_table
from repro.sim.compare import compare_methods
from repro.traces import suites
from repro.units import GB


def test_joint_across_all_suites(benchmark, profile, publish):
    del publish  # this benchmark renders its own table
    machine = profile.machine()

    def run_all():
        rows = []
        for name in suites.suite_names():
            trace = suites.build(
                name, machine, profile.duration_s, seed=profile.seed
            )
            comparison = compare_methods(
                trace,
                machine,
                methods=["JOINT", "ALWAYS-ON"],
                duration_s=profile.duration_s,
                warmup_s=profile.warmup_s,
            )
            joint = comparison["JOINT"]
            norm = joint.normalized_to(comparison.baseline)
            rows.append(
                {
                    "suite": name,
                    "total_energy": round(norm.total_energy, 4),
                    "disk_energy": round(norm.disk_energy, 4),
                    "memory_energy": round(norm.memory_energy, 4),
                    "final_memory_gb": round(
                        joint.decisions[-1].memory_bytes / GB, 2
                    ),
                    "utilization": round(joint.utilization, 4),
                    "long_latency_per_s": round(joint.long_latency_per_s, 4),
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(
        render_table(
            rows,
            title=(
                "JOINT across the workload suites "
                "(energies normalised to ALWAYS-ON)"
            ),
        )
    )

    for row in rows:
        # The headline claim: consistent savings...
        assert row["total_energy"] < 0.75, row["suite"]
        # ... with acceptable performance degradation everywhere.
        assert row["long_latency_per_s"] < 3.0, row["suite"]

    # And the manager genuinely adapts: the chosen memory differs across
    # workload characters (it is not one magic size).
    sizes = {row["final_memory_gb"] for row in rows}
    assert len(sizes) >= 3
