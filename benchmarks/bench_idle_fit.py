"""Idle-distribution extension benchmark."""

from __future__ import annotations

from repro.experiments import idle_fit


def test_idle_interval_distribution(benchmark, profile, publish):
    result = benchmark.pedantic(
        idle_fit.run, args=(profile,), rounds=1, iterations=1
    )
    publish(result)
    rows = result.rows
    memories = sorted({row["memory_gb"] for row in rows})

    for memory in memories:
        bins = [row for row in rows if row["memory_gb"] == memory]
        total = sum(row["intervals"] for row in bins)
        assert total > 0, memory
        # Heavy tail: intervals are count-concentrated at the short end...
        assert bins[0]["intervals"] >= bins[-1]["intervals"]
        # ... while the idle *time* mass sits well beyond the shortest bin.
        long_share = sum(row["share_of_idle_time"] for row in bins[3:])
        assert long_share > 0.3, memory

    # Fit scores were produced for every size.
    assert result.notes.count("alpha=") == len(memories)
