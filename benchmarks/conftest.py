"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures and prints
the rows (also saved under ``benchmarks/out/``).  The workload profile is
selected by ``REPRO_PROFILE``:

* ``full`` (default) -- granularity 1024, 10-min periods, the paper's
  parameter values; a full run takes a few minutes.
* ``quick`` -- a reduced profile for smoke runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.base import ExperimentConfig, config_from_env
from repro.experiments.base import ExperimentResult

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def profile() -> ExperimentConfig:
    return config_from_env()


@pytest.fixture(scope="session")
def publish():
    """Print an experiment result and archive it under benchmarks/out/."""

    def _publish(result: ExperimentResult) -> ExperimentResult:
        text = result.render()
        print()
        print(text)
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{result.name}.txt").write_text(text + "\n")
        return result

    return _publish
