"""The disk's bandwidth table (paper Section V-A).

"The disk's bandwidth varies with request sizes.  We use DiskSim to
obtain a bandwidth table indexed by request sizes."  This benchmark
regenerates that artefact from both service models -- the calibrated
analytic one the experiments use and the geometry-backed positioned one
-- and asserts their agreement on the drive-level anchors.
"""

from __future__ import annotations

import numpy as np

from repro.config.machine import scaled_machine
from repro.disk.positioned import PositionedServiceModel
from repro.disk.service import ServiceModel
from repro.experiments.formatting import render_table
from repro.units import MB

REQUEST_PAGES = (1, 2, 4, 8, 16, 32, 64)


def _positioned_rate(model, num_pages, starts):
    """Average random-request effective rate under the geometry model.

    The same start positions are used for every request size so the
    size-to-size comparison is free of placement noise.
    """
    rates = []
    for start in starts:
        service = model.service_time(start, num_pages)
        rates.append(num_pages * model.page_bytes / service)
    return float(np.mean(rates))


def test_bandwidth_table(benchmark, publish):
    del publish  # this artefact renders its own table below
    machine = scaled_machine(1024)
    analytic = ServiceModel(machine.disk, machine.page_bytes)
    positioned = PositionedServiceModel(machine.disk, machine.page_bytes)
    rng = np.random.default_rng(77)
    pages_total = positioned.geometry.capacity_bytes // positioned.page_bytes
    starts = rng.integers(0, pages_total - max(REQUEST_PAGES), size=160)

    def build():
        rows = []
        for pages in REQUEST_PAGES:
            rows.append(
                {
                    "request_pages": pages,
                    "request_MB": pages * machine.page_bytes / MB,
                    "analytic_MB_s": round(
                        analytic.effective_rate(pages) / MB, 2
                    ),
                    "positioned_MB_s": round(
                        _positioned_rate(positioned, pages, starts) / MB, 2
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(
        render_table(
            rows, title="Bandwidth table indexed by request size (Section V-A)"
        )
    )

    # Anchors: the analytic model is calibrated to the drive's 10.4 MB/s
    # for one page; both models grow monotonically with request size.
    assert rows[0]["analytic_MB_s"] == round(
        machine.disk.average_data_rate / MB, 2
    )
    analytic_rates = [row["analytic_MB_s"] for row in rows]
    positioned_rates = [row["positioned_MB_s"] for row in rows]
    assert all(a < b for a, b in zip(analytic_rates, analytic_rates[1:]))
    assert all(a < b for a, b in zip(positioned_rates, positioned_rates[1:]))
    # The geometry model reflects the real platter: far faster than the
    # conservatively calibrated analytic model on small random requests,
    # converging to the same streaming regime at large ones.
    assert positioned_rates[0] > 3 * analytic_rates[0]
    largest_gap = abs(positioned_rates[-1] - analytic_rates[-1])
    assert largest_gap / analytic_rates[-1] < 0.2
