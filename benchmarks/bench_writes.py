"""Write-traffic extension benchmark."""

from __future__ import annotations

from repro.experiments import writes


def _series(rows, method, key):
    return [
        row[key]
        for row in sorted(rows, key=lambda r: r["write_fraction"])
        if row["method"] == method
    ]


def test_write_fraction_sweep(benchmark, profile, publish):
    result = benchmark.pedantic(writes.run, args=(profile,), rounds=1, iterations=1)
    publish(result)
    rows = result.rows

    # Write-back volume grows with the write fraction, for every method.
    for method in ("JOINT", "2TFM-16GB", "ALWAYS-ON"):
        volumes = _series(rows, method, "writeback_pages")
        assert volumes[0] == 0
        assert all(a <= b for a, b in zip(volumes, volumes[1:])), method

    # Savings never improve as writes grow (the flusher erodes idleness).
    for method in ("JOINT", "2TFM-16GB"):
        energies = _series(rows, method, "total_energy")
        assert energies[-1] >= energies[0] - 0.05, method

    # Every row still beats or ties the always-on baseline.
    for row in rows:
        if row["method"] != "ALWAYS-ON":
            assert row["total_energy"] <= 1.02, row
