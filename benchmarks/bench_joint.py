"""Joint-manager fast-path benchmarks.

Times the epoch-segmented replay against the scalar loop and the
one-pass ``ResizePredictor.predict`` against the full candidate grid,
then runs the ``joint`` perf suite and archives its ``BENCH_joint.json``
under ``benchmarks/out/`` (the same document ``repro bench`` gates
against the committed baseline).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.cache.predictor import ResizePredictor
from repro.cache.profile import build_profile
from repro.config.machine import scaled_machine
from repro.core.enumeration import candidate_sizes
from repro.perf.suite import run_suite, write_suite
from repro.sim.runner import run_method
from repro.traces.specweb import generate_trace
from repro.units import GB, MB

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="module")
def machine():
    return scaled_machine(1024)


@pytest.fixture(scope="module")
def trace(machine):
    return generate_trace(
        dataset_bytes=4 * GB,
        data_rate=100 * MB,
        duration_s=1200.0,
        page_size=machine.page_bytes,
        seed=3,
        file_scale=machine.scale,
    )


def test_joint_replay_scalar(benchmark, machine, trace):
    benchmark.pedantic(
        run_method,
        args=("JOINT", trace, machine),
        kwargs=dict(duration_s=1200.0, profile=None),
        rounds=3,
        iterations=1,
    )


def test_joint_replay_epoch(benchmark, machine, trace):
    """The epoch-segmented fast path with a prebuilt profile."""
    profile = build_profile(trace)

    def run():
        result = run_method(
            "JOINT", trace, machine, duration_s=1200.0, profile=profile
        )
        assert result.replay_mode == "epoch"
        return result

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_end_period_candidate_grid(benchmark, machine, trace):
    """One-pass predict over the full grid on one period's samples."""
    profile = build_profile(trace)
    period = machine.manager.period_s
    window = machine.manager.aggregation_window_s
    cut = int(np.searchsorted(trace.times, period, side="left"))

    predictor = ResizePredictor()
    predictor.record_array(
        trace.times[:cut].astype(np.float64),
        profile.depths[:cut].astype(np.int64),
    )
    pages = [size // machine.page_bytes for size in candidate_sizes(machine)]

    benchmark(predictor.predict, pages, window, 0.0, period)


def test_joint_suite_document(benchmark):
    """The gated suite itself; archives BENCH_joint.json for inspection."""
    quick = os.environ.get("REPRO_PROFILE", "full").strip().lower() == "quick"
    doc = benchmark.pedantic(
        run_suite, args=("joint",), kwargs=dict(quick=quick),
        rounds=1, iterations=1,
    )
    OUT_DIR.mkdir(exist_ok=True)
    path = write_suite(doc, OUT_DIR)
    print(f"\nwrote {path}")
    assert doc["entries"]["joint_replay_speedup"]["value"] > 1.0
    assert doc["entries"]["end_period_speedup"]["value"] > 1.0
