"""Ablation benchmark: the joint method vs its dismantled variants."""

from __future__ import annotations

from repro.experiments import ablation


def _by(rows, dataset_gb, variant):
    for row in rows:
        if row["dataset_gb"] == dataset_gb and row["variant"] == variant:
            return row
    raise KeyError((dataset_gb, variant))


def test_ablation_variants(benchmark, profile, publish):
    result = benchmark.pedantic(
        ablation.run, args=(profile,), rounds=1, iterations=1
    )
    publish(result)
    rows = result.rows
    datasets = sorted({row["dataset_gb"] for row in rows})

    for dataset in datasets:
        joint = _by(rows, dataset, "JOINT")
        timeout_only = _by(rows, dataset, "JOINT-TO")
        resize_only = _by(rows, dataset, "JOINT-MEM")
        unconstrained = _by(rows, dataset, "JOINT-NC")

        # Timeout-only pays the full 128-GB memory bill.
        assert timeout_only["memory_energy"] > 0.9
        # The full method beats (or ties) both single-knob variants.
        assert joint["total_energy"] <= timeout_only["total_energy"] + 0.02
        assert joint["total_energy"] <= resize_only["total_energy"] + 0.02
        # The constraints never worsen the metrics they protect...
        assert joint["long_latency_per_s"] <= (
            unconstrained["long_latency_per_s"] + 0.5
        )
        assert joint["utilization"] <= unconstrained["utilization"] + 0.05
        # ... and when the unconstrained manager falls into the paper's
        # Section IV-D pathology (shrink -> thrash), the constrained one
        # must not follow it there.
        if unconstrained["utilization"] > 1.0:
            assert joint["utilization"] < 0.5
            assert joint["total_energy"] < unconstrained["total_energy"]
