"""Fig. 7 benchmark: the full method comparison across data-set sizes.

Regenerates the six panels (total/disk/memory energy normalised to
always-on, latency, utilisation, long-latency counts) for the joint
method, the 14 comparison methods and the baseline, at 4-64 GB.
"""

from __future__ import annotations

from repro.experiments import fig7_dataset


def _by(rows, dataset_gb, method):
    for row in rows:
        if row["dataset_gb"] == dataset_gb and row["method"] == method:
            return row
    raise KeyError((dataset_gb, method))


def test_fig7_dataset_sweep(benchmark, profile, publish):
    result = benchmark.pedantic(
        fig7_dataset.run, args=(profile,), rounds=1, iterations=1
    )
    publish(result)
    rows = result.rows
    datasets = sorted({row["dataset_gb"] for row in rows})
    small = datasets[0]

    from repro.experiments.ascii_chart import bar_chart

    for dataset in datasets:
        values = {
            row["method"]: row["total_energy"]
            for row in rows
            if row["dataset_gb"] == dataset
        }
        print()
        print(
            bar_chart(
                values,
                title=(
                    f"Fig. 7(a) at {dataset:g} GB -- total energy "
                    "(| = always-on)"
                ),
                reference=1.0,
            )
        )

    # Paper shape 1: at the smallest data set the joint method beats the
    # always-on baseline and the oversized FM configurations.
    joint_small = _by(rows, small, "JOINT")
    assert joint_small["total_energy"] < 1.0
    assert (
        joint_small["total_energy"] < _by(rows, small, "2TFM-32GB")["total_energy"]
    )
    assert (
        joint_small["total_energy"] < _by(rows, small, "2TFM-128GB")["total_energy"]
    )

    # Paper shape 2: PD methods pay >30 % memory energy at every point.
    for dataset in datasets:
        assert _by(rows, dataset, "2TPD-128GB")["memory_energy"] > 0.30

    # Paper shape 3: no managed method costs more than always-on (the
    # 128-GB FM methods tie it -- their memory energy is identical and
    # the disk is all that differs, paper Section V-B1).
    for dataset in datasets:
        for row in rows:
            if row["dataset_gb"] == dataset and row["method"] != "ALWAYS-ON":
                assert row["total_energy"] <= 1.0 + 1e-6, row["method"]

    # Paper shape 4: the joint method keeps long-latency rates low
    # (paper: under ~3 per second everywhere).
    for dataset in datasets:
        assert _by(rows, dataset, "JOINT")["long_latency_per_s"] < 3.0
