"""Micro-benchmarks of the core data structures and the engine.

These are conventional pytest-benchmark timings (many rounds) of the
hot paths: stack-distance tracking, LRU operation, Pareto fitting, trace
generation and engine throughput.  They guard against performance
regressions that would make the full experiments impractical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.lru import LRUCache
from repro.cache.profile import build_profile
from repro.cache.stack_distance import StackDistanceTracker
from repro.config.machine import scaled_machine
from repro.sim.runner import run_method
from repro.stats.pareto import ParetoDistribution, fit_moments
from repro.traces.specweb import generate_trace
from repro.units import GB, MB


@pytest.fixture(scope="module")
def machine():
    return scaled_machine(1024)


@pytest.fixture(scope="module")
def trace(machine):
    return generate_trace(
        dataset_bytes=4 * GB,
        data_rate=100 * MB,
        duration_s=1200.0,
        page_size=machine.page_bytes,
        seed=3,
        file_scale=machine.scale,
    )


def test_stack_distance_throughput(benchmark):
    rng = np.random.default_rng(1)
    pages = rng.zipf(1.3, size=20_000).tolist()

    def work():
        tracker = StackDistanceTracker()
        for page in pages:
            tracker.access(page)

    benchmark(work)


def test_stack_distance_batch_throughput(benchmark):
    """The live-count tracker's array entry point (profile construction)."""
    rng = np.random.default_rng(1)
    pages = rng.zipf(1.3, size=20_000)

    def work():
        StackDistanceTracker().access_array(pages)

    benchmark(work)


def test_profile_build(benchmark, trace):
    benchmark.pedantic(build_profile, args=(trace,), rounds=3, iterations=1)


def test_lru_cache_throughput(benchmark):
    rng = np.random.default_rng(2)
    pages = rng.integers(0, 4096, size=20_000).tolist()

    def work():
        cache = LRUCache(1024)
        for page in pages:
            cache.access(page)

    benchmark(work)


def test_pareto_fit_throughput(benchmark):
    samples = ParetoDistribution(alpha=2.0, beta=1.0).sample(
        10_000, np.random.default_rng(3)
    )
    benchmark(fit_moments, samples)


def test_trace_generation(benchmark, machine):
    benchmark.pedantic(
        generate_trace,
        kwargs=dict(
            dataset_bytes=4 * GB,
            data_rate=100 * MB,
            duration_s=600.0,
            page_size=machine.page_bytes,
            seed=4,
            file_scale=machine.scale,
        ),
        rounds=3,
        iterations=1,
    )


def test_engine_throughput_fixed_method(benchmark, machine, trace):
    benchmark.pedantic(
        run_method,
        args=("2TFM-16GB", trace, machine),
        kwargs=dict(duration_s=1200.0),
        rounds=3,
        iterations=1,
    )


def test_engine_throughput_vectorized(benchmark, machine, trace):
    """The fast path with a prebuilt profile (kernels only, no build)."""
    profile = build_profile(trace)
    benchmark.pedantic(
        run_method,
        args=("2TFM-16GB", trace, machine),
        kwargs=dict(duration_s=1200.0, profile=profile),
        rounds=3,
        iterations=1,
    )


def test_engine_throughput_joint(benchmark, machine, trace):
    benchmark.pedantic(
        run_method,
        args=("JOINT", trace, machine),
        kwargs=dict(duration_s=1200.0),
        rounds=3,
        iterations=1,
    )
