"""Streaming-service benchmarks.

Times the incremental :class:`StreamingManager` feed path against the
offline epoch replay of the same trace, drives a concurrent multi-tenant
:class:`SessionRegistry`, then runs the ``service`` perf suite and
archives its ``BENCH_service.json`` under ``benchmarks/out/`` (the same
document ``repro bench`` gates against the committed baseline).
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

import pytest

from repro.config.machine import scaled_machine
from repro.perf.suite import (
    SERVICE_BATCH,
    SERVICE_TENANTS,
    run_suite,
    write_suite,
)
from repro.service.sessions import SessionRegistry
from repro.service.streaming import StreamingManager
from repro.sim.prefill import warm_start_pages
from repro.sim.runner import run_method
from repro.traces.specweb import generate_trace
from repro.units import GB, MB

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="module")
def machine():
    return scaled_machine(1024)


@pytest.fixture(scope="module")
def trace(machine):
    return generate_trace(
        dataset_bytes=4 * GB,
        data_rate=100 * MB,
        duration_s=1200.0,
        page_size=machine.page_bytes,
        seed=3,
        file_scale=machine.scale,
    )


def _stream_trace(machine, trace, duration_s, prefill=None):
    stream = StreamingManager("JOINT", machine, prefill=prefill)
    n = trace.num_accesses
    for lo in range(0, n, SERVICE_BATCH):
        hi = min(lo + SERVICE_BATCH, n)
        stream.feed(trace.times[lo:hi], trace.pages[lo:hi])
    return stream.close(duration_s)


def test_stream_feed(benchmark, machine, trace):
    """Single tenant, SERVICE_BATCH-access feeds, bit-exact vs offline."""
    offline = run_method("JOINT", trace, machine, duration_s=1200.0)
    prefill = warm_start_pages(trace)

    def run():
        result = _stream_trace(machine, trace, 1200.0, prefill=prefill)
        assert result.replay_mode == "stream-epoch"
        assert result.total_energy_j == offline.total_energy_j
        return result

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_offline_replay(benchmark, machine, trace):
    """The offline twin of test_stream_feed (same trace, one shot)."""
    benchmark.pedantic(
        run_method,
        args=("JOINT", trace, machine),
        kwargs=dict(duration_s=1200.0),
        rounds=3,
        iterations=1,
    )


def test_multitenant_registry(benchmark, machine, trace):
    """SERVICE_TENANTS concurrent streams through one registry."""
    n = trace.num_accesses

    def run():
        registry = SessionRegistry(machine)
        errors = []

        def tenant():
            try:
                sid = registry.open_session("JOINT", machine=machine)
                for lo in range(0, n, SERVICE_BATCH):
                    hi = min(lo + SERVICE_BATCH, n)
                    registry.feed(sid, trace.times[lo:hi], trace.pages[lo:hi])
                registry.close(sid, 1200.0)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=tenant) for _ in range(SERVICE_TENANTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]
        assert registry.stats()["closed_sessions"] == SERVICE_TENANTS

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_service_suite_document(benchmark):
    """The gated suite itself; archives BENCH_service.json for inspection."""
    quick = os.environ.get("REPRO_PROFILE", "full").strip().lower() == "quick"
    doc = benchmark.pedantic(
        run_suite, args=("service",), kwargs=dict(quick=quick),
        rounds=1, iterations=1,
    )
    OUT_DIR.mkdir(exist_ok=True)
    path = write_suite(doc, OUT_DIR)
    print(f"\nwrote {path}")
    # Streaming should cost about the same as offline replay; anything
    # below half speed means the incremental path has regressed badly.
    assert doc["entries"]["stream_vs_offline"]["value"] > 0.5
