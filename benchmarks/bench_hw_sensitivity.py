"""Hardware-sensitivity extension benchmark."""

from __future__ import annotations

from repro.experiments import hw_sensitivity


def test_hw_sensitivity(benchmark, profile, publish):
    result = benchmark.pedantic(
        hw_sensitivity.run, args=(profile,), rounds=1, iterations=1
    )
    publish(result)
    rows = {row["variant"]: row for row in result.rows}

    paper = rows["paper"]
    cheap = rows["cheap-memory"]
    pricey = rows["pricey-memory"]
    hungry = rows["hungry-disk"]
    laptop = rows["laptop-disk"]

    # The break-even memory size moves as derived in docs/THEORY.md S0.
    assert cheap["break_even_mem_gb"] > paper["break_even_mem_gb"]
    assert pricey["break_even_mem_gb"] < paper["break_even_mem_gb"]
    assert hungry["break_even_mem_gb"] > paper["break_even_mem_gb"]

    # The manager follows it: much cheaper memory buys strictly more
    # cache; pricier memory never buys more (the decision is otherwise
    # knee-dominated and robust to ~2x constant changes -- see the
    # experiment docstring).
    assert cheap["mean_memory_gb"] > paper["mean_memory_gb"]
    assert pricey["mean_memory_gb"] <= paper["mean_memory_gb"] + 0.5
    assert hungry["mean_memory_gb"] >= paper["mean_memory_gb"]

    # The laptop drive: shorter break-even time, smaller powers, and the
    # manager banks the difference.
    assert laptop["break_even_time_s"] < paper["break_even_time_s"]
    assert laptop["total_energy"] < paper["total_energy"]
