"""Table IV benchmark: joint-method sensitivity to the period length."""

from __future__ import annotations

from repro.experiments import table4_period


def test_table4_period_sensitivity(benchmark, profile, publish):
    result = benchmark.pedantic(
        table4_period.run, args=(profile,), rounds=1, iterations=1
    )
    publish(result)
    energies = [row["total_energy"] for row in result.rows]

    # Paper shape: the joint method's energy varies only slightly with
    # the period length (the LRU list is not reset between periods).
    assert max(energies) - min(energies) < 0.15
    assert all(value < 1.0 for value in energies)

    # Long-latency rates stay low at every period length.
    assert all(row["long_latency_per_s"] < 3.0 for row in result.rows)
