"""Shared fixtures: small machines and workloads for fast tests."""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.config.machine import MachineConfig, paper_machine
from repro.traces.specweb import generate_trace
from repro.units import GB, MB

# Hypothesis profiles: "ci" is the smoke profile the GitHub workflow runs
# (fewer examples, no flaky deadlines on shared runners); "dev" digs deeper.
settings.register_profile(
    "ci",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", max_examples=200, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(scope="session")
def paper_cfg() -> MachineConfig:
    """The unscaled, paper-exact machine."""
    return paper_machine()


@pytest.fixture(scope="session")
def machine() -> MachineConfig:
    """Granularity-1024 machine (4-MB pages) used by most tests."""
    return paper_machine().scaled(1024)


@pytest.fixture(scope="session")
def fast_machine() -> MachineConfig:
    """A machine with short periods for quick end-to-end tests."""
    base = paper_machine().scaled(1024)
    manager = dataclasses.replace(base.manager, period_s=120.0)
    return MachineConfig(
        memory=base.memory, disk=base.disk, manager=manager, scale=base.scale
    )


@pytest.fixture(scope="session")
def small_trace(machine):
    """A 4-GB, 100-MB/s, 10-minute trace at the test machine's granularity."""
    return generate_trace(
        dataset_bytes=4 * GB,
        data_rate=100 * MB,
        duration_s=600.0,
        page_size=machine.page_bytes,
        seed=1234,
        file_scale=machine.scale,
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(98765)
