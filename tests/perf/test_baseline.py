"""The perf-regression gate: what fails, what merely informs."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.perf.baseline import compare, load_baseline
from repro.perf.suite import BENCH_SCHEMA, bench_file_name


def doc(suite="micro", schema=BENCH_SCHEMA, **entries):
    return {"suite": suite, "schema": schema, "quick": True, "entries": entries}


def ratio(value):
    return {"kind": "ratio", "value": value, "higher_is_better": True}


def throughput(ops_per_s, wall_s=1.0):
    return {"kind": "throughput", "ops_per_s": ops_per_s, "wall_s": wall_s}


def memory(peak_bytes):
    return {
        "kind": "memory",
        "peak_bytes": peak_bytes,
        "peak_mb": peak_bytes / (1024 * 1024),
    }


class TestCompare:
    def test_equal_docs_pass(self):
        base = doc(speedup=ratio(4.0), tracker=throughput(1000.0))
        assert compare(base, base).ok

    def test_ratio_regression_fails(self):
        current = doc(speedup=ratio(2.0))
        baseline = doc(speedup=ratio(4.0))
        report = compare(current, baseline, tolerance=0.30)
        assert not report.ok
        assert [line.name for line in report.regressions] == ["speedup"]

    def test_ratio_within_tolerance_passes(self):
        current = doc(speedup=ratio(3.0))
        baseline = doc(speedup=ratio(4.0))
        assert compare(current, baseline, tolerance=0.30).ok

    def test_improvement_passes(self):
        assert compare(doc(speedup=ratio(9.0)), doc(speedup=ratio(4.0))).ok

    def test_throughput_is_informational_by_default(self):
        current = doc(tracker=throughput(10.0))
        baseline = doc(tracker=throughput(1000.0))
        report = compare(current, baseline)
        assert report.ok
        assert not report.lines[0].gated

    def test_gate_all_gates_throughput(self):
        current = doc(tracker=throughput(10.0))
        baseline = doc(tracker=throughput(1000.0))
        assert not compare(current, baseline, gate_all=True).ok

    def test_missing_entry_fails(self):
        report = compare(doc(), doc(speedup=ratio(4.0)))
        assert not report.ok

    def test_memory_entries_inform_but_never_gate(self):
        current = doc(peak=memory(900 * 1024 * 1024))
        baseline = doc(peak=memory(10 * 1024 * 1024))
        report = compare(current, baseline)
        assert report.ok
        assert not report.lines[0].gated

    def test_fullres_suite_registered(self):
        from repro.perf.suite import SUITE_NAMES, _SUITES, render_suite

        assert "fullres" in SUITE_NAMES
        assert set(SUITE_NAMES) == set(_SUITES)
        rendered = render_suite(
            doc(suite="fullres", peak=memory(32 * 1024 * 1024))
        )
        assert "32.0 MB peak" in rendered

    def test_schema_mismatch_reports_ungated(self):
        current = doc(speedup=ratio(1.0))
        baseline = doc(schema=BENCH_SCHEMA + 1, speedup=ratio(4.0))
        report = compare(current, baseline)
        assert report.ok
        assert any(line.name == "(schema)" for line in report.lines)

    def test_suite_mismatch_raises(self):
        with pytest.raises(SimulationError):
            compare(doc(suite="micro"), doc(suite="sweep"))

    def test_bad_tolerance_raises(self):
        with pytest.raises(SimulationError):
            compare(doc(), doc(), tolerance=1.5)


class TestLoadBaseline:
    def test_missing_file_is_none(self, tmp_path):
        assert load_baseline(tmp_path, "micro") is None

    def test_round_trip(self, tmp_path):
        path = tmp_path / bench_file_name("micro")
        path.write_text('{"suite": "micro", "entries": {}}')
        assert load_baseline(tmp_path, "micro") == {
            "suite": "micro",
            "entries": {},
        }

    def test_corrupt_file_is_none(self, tmp_path):
        (tmp_path / bench_file_name("micro")).write_text("{nope")
        assert load_baseline(tmp_path, "micro") is None
