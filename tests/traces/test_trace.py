"""Trace container and derived statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.trace import Trace


def make_trace(times, pages, **kwargs):
    return Trace(
        times=np.asarray(times, dtype=float),
        pages=np.asarray(pages, dtype=np.int64),
        **kwargs,
    )


class TestBasics:
    def test_shape_properties(self):
        trace = make_trace([0.0, 1.0, 2.0], [5, 6, 5], page_size=4096)
        assert len(trace) == 3
        assert trace.duration_s == 2.0
        assert trace.bytes_accessed == 3 * 4096
        assert trace.data_rate == pytest.approx(3 * 4096 / 2.0)
        assert trace.unique_pages == 2
        assert trace.footprint_bytes == 2 * 4096

    def test_empty_trace(self):
        trace = make_trace([], [])
        assert len(trace) == 0
        assert trace.duration_s == 0.0
        assert trace.data_rate == 0.0
        assert trace.unique_pages == 0

    def test_validation(self):
        with pytest.raises(TraceError):
            make_trace([1.0, 0.5], [1, 2])  # unsorted
        with pytest.raises(TraceError):
            make_trace([0.0], [-1])  # negative page
        with pytest.raises(TraceError):
            make_trace([0.0], [1], page_size=0)
        with pytest.raises(TraceError):
            make_trace([0.0, 1.0], [1, 2], files=np.array([1]))

    def test_files_alignment(self):
        trace = make_trace([0.0, 1.0], [1, 2], files=np.array([0, 0]))
        assert trace.files is not None
        assert trace.files.tolist() == [0, 0]


class TestSlicing:
    def test_slice_time_window(self):
        trace = make_trace([0.0, 1.0, 2.0, 3.0], [1, 2, 3, 4])
        window = trace.slice_time(1.0, 3.0)
        assert window.times.tolist() == [1.0, 2.0]
        assert window.pages.tolist() == [2, 3]

    def test_slice_preserves_files(self):
        trace = make_trace([0.0, 1.0], [1, 2], files=np.array([7, 8]))
        window = trace.slice_time(0.5, 2.0)
        assert window.files.tolist() == [8]

    def test_slice_rejects_inverted(self):
        trace = make_trace([0.0], [1])
        with pytest.raises(TraceError):
            trace.slice_time(2.0, 1.0)


class TestPopularity:
    def test_single_hot_page(self):
        # One page receives 95% of accesses: popularity ~ 1/unique pages.
        pages = [0] * 95 + list(range(1, 6))
        trace = make_trace(np.arange(100.0), pages)
        assert trace.measured_popularity() == pytest.approx(1 / 6, abs=0.01)

    def test_uniform_accesses(self):
        pages = list(range(10)) * 10
        trace = make_trace(np.arange(100.0), sorted(pages))
        assert trace.measured_popularity() == pytest.approx(0.9, abs=0.01)

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            make_trace([], []).measured_popularity()


class TestMeta:
    def test_with_meta_merges(self):
        trace = make_trace([0.0], [1], meta={"a": 1})
        updated = trace.with_meta(b=2)
        assert updated.meta == {"a": 1, "b": 2}
        assert trace.meta == {"a": 1}
