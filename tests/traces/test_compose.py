"""Trace composition operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.compose import concatenate, interleave
from repro.traces.trace import Trace


def make_trace(times, pages, writes=None, page_size=4096):
    return Trace(
        times=np.asarray(times, float),
        pages=np.asarray(pages, dtype=np.int64),
        page_size=page_size,
        writes=None if writes is None else np.asarray(writes, bool),
    )


@pytest.fixture()
def first():
    return make_trace([0.0, 1.0, 2.0], [0, 1, 0])


@pytest.fixture()
def second():
    return make_trace([0.0, 0.5], [5, 6])


class TestConcatenate:
    def test_second_starts_after_first(self, first, second):
        combined = concatenate([first, second], gap_s=10.0)
        assert combined.num_accesses == 5
        assert combined.times[3] == pytest.approx(12.0)
        assert np.all(np.diff(combined.times) >= 0)

    def test_pages_unchanged(self, first, second):
        combined = concatenate([first, second])
        assert combined.pages.tolist() == [0, 1, 0, 5, 6]

    def test_writes_propagate(self, first):
        written = make_trace([0.0, 1.0], [9, 9], writes=[True, False])
        combined = concatenate([first, written])
        assert combined.writes.tolist() == [False] * 3 + [True, False]

    def test_all_reads_stay_unmarked(self, first, second):
        assert concatenate([first, second]).writes is None

    def test_validation(self, first):
        with pytest.raises(TraceError):
            concatenate([])
        with pytest.raises(TraceError):
            concatenate([first], gap_s=-1.0)
        other_size = make_trace([0.0], [1], page_size=8192)
        with pytest.raises(TraceError):
            concatenate([first, other_size])


class TestInterleave:
    def test_timeline_merged_in_order(self, first, second):
        merged = interleave([first, second])
        assert merged.num_accesses == 5
        assert np.all(np.diff(merged.times) >= 0)
        assert merged.times[0] == 0.0

    def test_tenant_footprints_disjoint(self, first, second):
        merged = interleave([first, second])
        tenant_a = {0, 1}
        tenant_b = {p for p in merged.pages.tolist() if p not in tenant_a}
        assert tenant_a & tenant_b == set()
        # Second tenant shifted past the first's max page (1) + 1.
        assert min(tenant_b) >= 2

    def test_shared_pages_mode(self, first, second):
        merged = interleave([first, second], shared_pages=True)
        assert set(merged.pages.tolist()) == {0, 1, 5, 6}

    def test_multi_tenant_cache_contention(self, fast_machine):
        """Two tenants interleaved need more cache than either alone --
        the composed workload exercises real contention."""
        from repro.sim.runner import run_method
        from repro.traces.specweb import generate_trace
        from repro.units import GB, MB

        def tenant(seed):
            return generate_trace(
                dataset_bytes=2 * GB,
                data_rate=20 * MB,
                duration_s=480.0,
                popularity=0.5,  # hot set ~1 GB per tenant
                page_size=fast_machine.page_bytes,
                file_scale=fast_machine.scale,
                seed=seed,
            )

        merged = interleave([tenant(1), tenant(2)])
        # A 1-GB cache holds one tenant's hot set but not both.
        solo = run_method("ONFM-1GB", tenant(1), fast_machine, 480.0)
        contended = run_method("ONFM-1GB", merged, fast_machine, 480.0)
        assert contended.miss_ratio > solo.miss_ratio

    def test_validation(self, first):
        with pytest.raises(TraceError):
            interleave([])
        empty = Trace(times=np.array([]), pages=np.array([], dtype=np.int64))
        with pytest.raises(TraceError):
            interleave([first, empty])
