"""SPECWeb99-class trace generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.fileset import specweb_fileset
from repro.traces.specweb import SpecWebGenerator, generate_trace
from repro.units import GB, KB, MB


class TestGenerateTrace:
    def test_hits_target_rate(self):
        trace = generate_trace(
            dataset_bytes=64 * MB,
            data_rate=5 * MB,
            duration_s=300.0,
            seed=1,
        )
        assert trace.data_rate == pytest.approx(5 * MB, rel=0.15)

    def test_timestamps_sorted_and_bounded(self):
        trace = generate_trace(
            dataset_bytes=32 * MB, data_rate=2 * MB, duration_s=120.0, seed=2
        )
        assert np.all(np.diff(trace.times) >= 0)
        assert trace.times[0] >= 0.0

    def test_pages_within_dataset(self):
        trace = generate_trace(
            dataset_bytes=32 * MB, data_rate=2 * MB, duration_s=60.0, seed=3
        )
        footprint_limit = (32 * MB * 1.3) // (4 * KB)
        assert trace.pages.max() < footprint_limit

    def test_deterministic_for_seed(self):
        a = generate_trace(16 * MB, 1 * MB, 60.0, seed=7)
        b = generate_trace(16 * MB, 1 * MB, 60.0, seed=7)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.pages, b.pages)

    def test_different_seeds_differ(self):
        a = generate_trace(16 * MB, 1 * MB, 60.0, seed=7)
        b = generate_trace(16 * MB, 1 * MB, 60.0, seed=8)
        assert not np.array_equal(a.pages, b.pages)

    def test_measured_popularity_tracks_target(self):
        dense = generate_trace(
            64 * MB, 4 * MB, 600.0, popularity=0.1, seed=5
        )
        sparse = generate_trace(
            64 * MB, 4 * MB, 600.0, popularity=0.5, seed=5
        )
        assert dense.measured_popularity() < sparse.measured_popularity()

    def test_meta_records_parameters(self):
        trace = generate_trace(16 * MB, 1 * MB, 60.0, popularity=0.2, seed=9)
        assert trace.meta["generator"] == "specweb"
        assert trace.meta["popularity"] == 0.2

    def test_scaled_generation(self):
        trace = generate_trace(
            dataset_bytes=1 * GB,
            data_rate=20 * MB,
            duration_s=300.0,
            page_size=4 * KB * 256,
            file_scale=256,
            seed=11,
        )
        assert trace.page_size == 4 * KB * 256
        assert trace.data_rate == pytest.approx(20 * MB, rel=0.2)


class TestGeneratorValidation:
    def test_rejects_bad_parameters(self, rng):
        fs = specweb_fileset(4 * MB, rng=rng)
        with pytest.raises(TraceError):
            SpecWebGenerator(fileset=fs, data_rate=0.0)
        with pytest.raises(TraceError):
            SpecWebGenerator(fileset=fs, data_rate=1 * MB, popularity=0.0)
        with pytest.raises(TraceError):
            SpecWebGenerator(fileset=fs, data_rate=1 * MB, connection_rate=0.0)
        generator = SpecWebGenerator(fileset=fs, data_rate=1 * MB, seed=1)
        with pytest.raises(TraceError):
            generator.generate(0.0)

    def test_file_requests_expand_to_whole_files(self, rng):
        fs = specweb_fileset(4 * MB, rng=rng)
        generator = SpecWebGenerator(fileset=fs, data_rate=1 * MB, seed=1)
        trace = generator.generate(120.0)
        assert trace.files is not None
        # Every access's page must belong to its recorded file.
        for t, page, file_id in list(
            zip(trace.times, trace.pages, trace.files)
        )[:200]:
            first = fs.first_page[file_id]
            assert first <= page < first + fs.num_pages[file_id]
