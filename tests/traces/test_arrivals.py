"""Arrival processes: Poisson vs self-similar burstiness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.arrivals import (
    bmodel_arrivals,
    gap_tail_weight,
    poisson_arrivals,
)
from repro.traces.fileset import specweb_fileset
from repro.traces.specweb import SpecWebGenerator
from repro.units import MB


class TestPoisson:
    def test_rate_and_bounds(self, rng):
        arrivals = poisson_arrivals(10.0, 1000.0, rng)
        assert arrivals.size == pytest.approx(10_000, rel=0.1)
        assert arrivals.min() >= 0 and arrivals.max() < 1000.0
        assert np.all(np.diff(arrivals) >= 0)

    def test_validation(self, rng):
        with pytest.raises(TraceError):
            poisson_arrivals(0.0, 10.0, rng)
        with pytest.raises(TraceError):
            poisson_arrivals(1.0, 0.0, rng)


class TestBModel:
    def test_rate_and_bounds(self, rng):
        arrivals = bmodel_arrivals(10.0, 1000.0, rng=rng)
        assert arrivals.size == pytest.approx(10_000, rel=0.05)
        assert arrivals.min() >= 0 and arrivals.max() < 1000.0
        assert np.all(np.diff(arrivals) >= 0)

    def test_bias_half_is_smooth(self, rng):
        smooth = bmodel_arrivals(10.0, 1000.0, bias=0.5, rng=rng)
        bursty = bmodel_arrivals(
            10.0, 1000.0, bias=0.85, rng=np.random.default_rng(2)
        )
        assert gap_tail_weight(bursty) > 3 * gap_tail_weight(smooth)

    def test_heavier_tail_than_poisson(self, rng):
        poisson = poisson_arrivals(10.0, 2000.0, np.random.default_rng(1))
        bursty = bmodel_arrivals(
            10.0, 2000.0, bias=0.8, rng=np.random.default_rng(2)
        )
        assert gap_tail_weight(bursty) > 2 * gap_tail_weight(poisson)

    def test_validation(self, rng):
        with pytest.raises(TraceError):
            bmodel_arrivals(10.0, 100.0, bias=0.4, rng=rng)
        with pytest.raises(TraceError):
            bmodel_arrivals(10.0, 100.0, bias=1.0, rng=rng)
        with pytest.raises(TraceError):
            bmodel_arrivals(10.0, 100.0, levels=0, rng=rng)
        with pytest.raises(TraceError):
            bmodel_arrivals(0.001, 1.0, rng=rng)


class TestGeneratorIntegration:
    def test_selfsimilar_trace_is_burstier(self, rng):
        fileset = specweb_fileset(64 * MB, rng=np.random.default_rng(5))

        def build(process):
            generator = SpecWebGenerator(
                fileset=fileset,
                data_rate=2 * MB,
                arrival_process=process,
                burst_bias=0.8,
                seed=9,
            )
            return generator.generate(2000.0)

        poisson = build("poisson")
        bursty = build("selfsimilar")
        assert bursty.meta["arrival_process"] == "selfsimilar"
        # Comparable volume, far heavier idle tail.
        assert bursty.num_accesses == pytest.approx(
            poisson.num_accesses, rel=0.25
        )
        assert gap_tail_weight(bursty.times) > 1.5 * gap_tail_weight(
            poisson.times
        )

    def test_unknown_process_rejected(self, rng):
        fileset = specweb_fileset(16 * MB, rng=rng)
        with pytest.raises(TraceError):
            SpecWebGenerator(
                fileset=fileset, data_rate=1 * MB, arrival_process="fractal"
            )


class TestParetoFitOnBurstyTraffic:
    """The paper's Pareto assumption targets bursty measured traffic.

    At a web-serving rate (1 MB/s over this small set), smooth Poisson
    arrivals leave almost no idle interval longer than the aggregation
    window -- there is nothing for a spin-down policy to model.  The
    self-similar stream at the same rate produces thousands of usable
    intervals, a heavy-tail exponent (alpha ~ 1.5), and a fit whose
    eq.-4 power error is small at a timeout in the break-even range --
    exactly the regime the paper's analysis assumes.
    """

    @staticmethod
    def _idle(process):
        from repro.stats.intervals import extract_idle_intervals

        fileset = specweb_fileset(64 * MB, rng=np.random.default_rng(5))
        generator = SpecWebGenerator(
            fileset=fileset,
            data_rate=1 * MB,
            arrival_process=process,
            burst_bias=0.75,
            seed=9,
        )
        trace = generator.generate(4000.0)
        return extract_idle_intervals(trace.times, window_s=0.1)

    def test_poisson_leaves_no_idleness_to_model(self):
        assert self._idle("poisson").count < 100

    def test_selfsimilar_idleness_fits_pareto_usably(self):
        from repro.analysis.pareto_check import check_pareto_fit

        idle = self._idle("selfsimilar")
        assert idle.count > 1000
        report = check_pareto_fit(idle.lengths)
        assert 1.1 < report.fit.alpha < 2.5  # genuine heavy tail
        assert 10.0 < report.timeout_s < 40.0  # break-even territory
        assert report.usable
