"""Zipf sampler and popularity calibration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.traces.zipf import ZipfSampler, calibrate_exponent, popularity_ratio


class TestSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(100, 1.0)
        assert sampler.probabilities.sum() == pytest.approx(1.0)

    def test_probabilities_decreasing(self):
        sampler = ZipfSampler(50, 0.8)
        probs = sampler.probabilities
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_exponent_zero_is_uniform(self):
        sampler = ZipfSampler(10, 0.0)
        assert np.allclose(sampler.probabilities, 0.1)

    def test_samples_in_range(self, rng):
        sampler = ZipfSampler(20, 1.2)
        samples = sampler.sample(5000, rng)
        assert samples.min() >= 0
        assert samples.max() < 20

    def test_sample_frequencies_match_probabilities(self, rng):
        sampler = ZipfSampler(5, 1.0)
        samples = sampler.sample(200_000, rng)
        freq = np.bincount(samples, minlength=5) / samples.size
        assert np.allclose(freq, sampler.probabilities, atol=0.01)

    def test_higher_exponent_concentrates_head(self, rng):
        flat = ZipfSampler(100, 0.5).sample(20_000, rng)
        steep = ZipfSampler(100, 2.0).sample(20_000, rng)
        assert (steep == 0).mean() > (flat == 0).mean()

    def test_validation(self):
        with pytest.raises(TraceError):
            ZipfSampler(0, 1.0)
        with pytest.raises(TraceError):
            ZipfSampler(10, -1.0)
        with pytest.raises(TraceError):
            ZipfSampler(10, 1.0).sample(-1)


class TestPopularityRatio:
    def test_uniform_distribution_ratio(self):
        # Uniform: 90% of accesses need 90% of the files.
        probs = np.full(100, 0.01)
        sizes = np.full(100, 10.0)
        assert popularity_ratio(probs, sizes) == pytest.approx(0.9, abs=0.02)

    def test_concentrated_distribution(self):
        # One file takes 95% of accesses: the ratio is its size share.
        probs = np.array([0.95, 0.025, 0.025])
        sizes = np.array([10.0, 45.0, 45.0])
        assert popularity_ratio(probs, sizes) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(TraceError):
            popularity_ratio([0.5], [1.0, 2.0])
        with pytest.raises(TraceError):
            popularity_ratio([], [])
        with pytest.raises(TraceError):
            popularity_ratio([1.0], [1.0], mass_fraction=0.0)
        with pytest.raises(TraceError):
            popularity_ratio([1.0], [0.0])


class TestCalibration:
    @pytest.mark.parametrize("target", [0.1, 0.2, 0.4, 0.6])
    def test_hits_target(self, rng, target):
        sizes = rng.integers(1, 100, size=2000).astype(float)
        exponent = calibrate_exponent(sizes, target)
        sampler = ZipfSampler(sizes.size, exponent)
        assert popularity_ratio(sampler.probabilities, sizes) == pytest.approx(
            target, abs=0.02
        )

    def test_denser_target_needs_larger_exponent(self, rng):
        sizes = rng.integers(1, 100, size=1000).astype(float)
        dense = calibrate_exponent(sizes, 0.05)
        sparse = calibrate_exponent(sizes, 0.5)
        assert dense > sparse

    def test_unreachably_sparse_returns_uniform(self, rng):
        sizes = rng.integers(1, 100, size=100).astype(float)
        assert calibrate_exponent(sizes, 1.0) == 0.0

    def test_unreachably_dense_rejected(self):
        # Two equal files cannot concentrate 90% of mass in 1% of bytes.
        with pytest.raises(TraceError):
            calibrate_exponent([10.0, 10.0], 0.01)

    def test_validation(self):
        with pytest.raises(TraceError):
            calibrate_exponent([], 0.1)
        with pytest.raises(TraceError):
            calibrate_exponent([1.0], 0.0)

    @given(target=st.floats(min_value=0.05, max_value=0.8))
    @settings(max_examples=20, deadline=None)
    def test_calibration_roundtrip_property(self, target):
        rng = np.random.default_rng(11)
        sizes = rng.integers(1, 50, size=800).astype(float)
        exponent = calibrate_exponent(sizes, target)
        sampler = ZipfSampler(sizes.size, exponent)
        measured = popularity_ratio(sampler.probabilities, sizes)
        assert measured == pytest.approx(target, abs=0.05)
