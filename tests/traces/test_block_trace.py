"""Block-trace import."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.block_trace import from_requests, load_block_csv


class TestFromRequests:
    def test_single_page_request(self):
        trace = from_requests([1.0], [8192], [100], page_size=4096)
        assert trace.pages.tolist() == [2]
        assert trace.times.tolist() == [1.0]

    def test_spanning_request(self):
        # Bytes [4000, 12000) with 4096-byte pages touch pages 0, 1, 2.
        trace = from_requests([0.0], [4000], [8000], page_size=4096)
        assert trace.pages.tolist() == [0, 1, 2]

    def test_page_aligned_request(self):
        trace = from_requests([0.0], [4096], [8192], page_size=4096)
        assert trace.pages.tolist() == [1, 2]

    def test_intra_request_spacing(self):
        trace = from_requests(
            [0.0], [0], [3 * 4096], page_size=4096, intra_request_gap_s=0.01
        )
        assert np.allclose(np.diff(trace.times), 0.01)

    def test_requests_interleave_in_time_order(self):
        trace = from_requests(
            [0.0, 0.001],
            [0, 40960],
            [3 * 4096, 4096],
            page_size=4096,
            intra_request_gap_s=0.01,
        )
        assert np.all(np.diff(trace.times) >= 0)
        assert set(trace.pages.tolist()) == {0, 1, 2, 10}

    def test_files_column_tracks_request(self):
        trace = from_requests([0.0, 1.0], [0, 8192], [4096, 4096])
        assert trace.files.tolist() == [0, 1]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(times=[0.0], offsets=[0], sizes=[0]),
            dict(times=[0.0], offsets=[-1], sizes=[10]),
            dict(times=[], offsets=[], sizes=[]),
            dict(times=[0.0, 1.0], offsets=[0], sizes=[10]),
            dict(times=[0.0], offsets=[0], sizes=[10], page_size=0),
            dict(times=[0.0], offsets=[0], sizes=[10], intra_request_gap_s=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(TraceError):
            from_requests(**kwargs)


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "io.csv"
        path.write_text("time,offset,size\n0.5,4096,4096\n1.5,0,8192\n")
        trace = load_block_csv(path, page_size=4096)
        assert trace.pages.tolist() == [1, 0, 1]
        assert trace.meta["requests"] == 2

    def test_unsorted_input_is_sorted(self, tmp_path):
        path = tmp_path / "io.csv"
        path.write_text("time,offset,size\n2.0,0,100\n1.0,4096,100\n")
        trace = load_block_csv(path, page_size=4096)
        assert trace.times.tolist() == [1.0, 2.0]

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_block_csv(tmp_path / "none.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceError):
            load_block_csv(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("time,offset,size\n")
        with pytest.raises(TraceError):
            load_block_csv(path)

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,offset,size\n1.0,2\n")
        with pytest.raises(TraceError):
            load_block_csv(path)

    def test_imported_trace_runs_through_engine(self, tmp_path, fast_machine):
        from repro.sim.runner import run_method

        rows = ["time,offset,size"]
        rng = np.random.default_rng(5)
        page = fast_machine.page_bytes
        for i in range(200):
            offset = int(rng.integers(0, 100)) * page
            rows.append(f"{i * 2.0},{offset},{page}")
        path = tmp_path / "real.csv"
        path.write_text("\n".join(rows) + "\n")
        trace = load_block_csv(path, page_size=page)
        result = run_method(
            "2TFM-16GB", trace, fast_machine, duration_s=480.0, audit=True
        )
        assert result.total_accesses == 200


class TestChunkedCsv:
    def _write_fuzzed_csv(self, path, seed, rows=400, page=4096):
        """Bursty, tie-heavy request log: the stable-sort stress shape."""
        rng = np.random.default_rng(seed)
        times = np.round(np.cumsum(rng.exponential(0.02, size=rows)), 3)
        # Repeated timestamps (ties) and out-of-order lines both occur.
        times[rng.random(rows) < 0.3] = np.round(times.mean(), 3)
        order = rng.permutation(rows)
        lines = ["time,offset,size"]
        for i in order:
            offset = int(rng.integers(0, 64)) * page
            size = int(rng.integers(1, 5 * page))
            lines.append(f"{times[i]},{offset},{size}")
        path.write_text("\n".join(lines) + "\n")

    @pytest.mark.parametrize("chunk_accesses", [1, 7, 64, 10**6])
    def test_bit_identical_to_materialized(self, tmp_path, chunk_accesses):
        from repro.traces.block_trace import load_block_csv_chunked

        path = tmp_path / "fuzz.csv"
        self._write_fuzzed_csv(path, seed=9)
        expected = load_block_csv(path, page_size=4096)
        chunked = load_block_csv_chunked(
            path, page_size=4096, chunk_accesses=chunk_accesses
        )
        actual = chunked.materialize()
        assert np.array_equal(actual.times, expected.times)
        assert np.array_equal(actual.pages, expected.pages)
        assert np.array_equal(actual.files, expected.files)
        assert actual.times.dtype == expected.times.dtype
        assert actual.pages.dtype == expected.pages.dtype
        assert chunked.num_accesses == expected.num_accesses
        assert chunked.duration_s == expected.duration_s
        assert chunked.meta == expected.meta

    def test_chunks_are_bounded(self, tmp_path):
        from repro.traces.block_trace import load_block_csv_chunked

        path = tmp_path / "fuzz.csv"
        self._write_fuzzed_csv(path, seed=11)
        chunked = load_block_csv_chunked(
            path, page_size=4096, chunk_accesses=32
        )
        sizes = [len(chunk) for chunk in chunked.chunks()]
        assert sum(sizes) == chunked.num_accesses
        # Every chunk except the last is exactly the requested size.
        assert all(s == 32 for s in sizes[:-1])
        assert 0 < sizes[-1] <= 32

    def test_validation(self, tmp_path):
        from repro.traces.block_trace import load_block_csv_chunked

        path = tmp_path / "one.csv"
        path.write_text("time,offset,size\n0.0,0,4096\n")
        with pytest.raises(TraceError):
            load_block_csv_chunked(path, chunk_accesses=0)
        with pytest.raises(TraceError):
            load_block_csv_chunked(tmp_path / "none.csv")

    def test_replays_identically_to_materialized(self, tmp_path, fast_machine):
        from repro.sim.runner import run_chunked, run_method
        from repro.traces.block_trace import load_block_csv_chunked

        page = fast_machine.page_bytes
        rng = np.random.default_rng(5)
        rows = ["time,offset,size"]
        for i in range(200):
            offset = int(rng.integers(0, 100)) * page
            rows.append(f"{i * 2.0},{offset},{int(rng.integers(1, 3)) * page}")
        path = tmp_path / "real.csv"
        path.write_text("\n".join(rows) + "\n")
        offline = run_method(
            "2TFM-16GB",
            load_block_csv(path, page_size=page),
            fast_machine,
            duration_s=480.0,
            warm_start=False,
        )
        chunked = run_chunked(
            "2TFM-16GB",
            load_block_csv_chunked(path, page_size=page, chunk_accesses=37),
            fast_machine,
            duration_s=480.0,
        )
        assert chunked.total_accesses == offline.total_accesses
        assert chunked.disk_energy_j == offline.disk_energy_j
        assert chunked.memory_energy_j == offline.memory_energy_j
