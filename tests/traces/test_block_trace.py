"""Block-trace import."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.block_trace import from_requests, load_block_csv


class TestFromRequests:
    def test_single_page_request(self):
        trace = from_requests([1.0], [8192], [100], page_size=4096)
        assert trace.pages.tolist() == [2]
        assert trace.times.tolist() == [1.0]

    def test_spanning_request(self):
        # Bytes [4000, 12000) with 4096-byte pages touch pages 0, 1, 2.
        trace = from_requests([0.0], [4000], [8000], page_size=4096)
        assert trace.pages.tolist() == [0, 1, 2]

    def test_page_aligned_request(self):
        trace = from_requests([0.0], [4096], [8192], page_size=4096)
        assert trace.pages.tolist() == [1, 2]

    def test_intra_request_spacing(self):
        trace = from_requests(
            [0.0], [0], [3 * 4096], page_size=4096, intra_request_gap_s=0.01
        )
        assert np.allclose(np.diff(trace.times), 0.01)

    def test_requests_interleave_in_time_order(self):
        trace = from_requests(
            [0.0, 0.001],
            [0, 40960],
            [3 * 4096, 4096],
            page_size=4096,
            intra_request_gap_s=0.01,
        )
        assert np.all(np.diff(trace.times) >= 0)
        assert set(trace.pages.tolist()) == {0, 1, 2, 10}

    def test_files_column_tracks_request(self):
        trace = from_requests([0.0, 1.0], [0, 8192], [4096, 4096])
        assert trace.files.tolist() == [0, 1]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(times=[0.0], offsets=[0], sizes=[0]),
            dict(times=[0.0], offsets=[-1], sizes=[10]),
            dict(times=[], offsets=[], sizes=[]),
            dict(times=[0.0, 1.0], offsets=[0], sizes=[10]),
            dict(times=[0.0], offsets=[0], sizes=[10], page_size=0),
            dict(times=[0.0], offsets=[0], sizes=[10], intra_request_gap_s=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(TraceError):
            from_requests(**kwargs)


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "io.csv"
        path.write_text("time,offset,size\n0.5,4096,4096\n1.5,0,8192\n")
        trace = load_block_csv(path, page_size=4096)
        assert trace.pages.tolist() == [1, 0, 1]
        assert trace.meta["requests"] == 2

    def test_unsorted_input_is_sorted(self, tmp_path):
        path = tmp_path / "io.csv"
        path.write_text("time,offset,size\n2.0,0,100\n1.0,4096,100\n")
        trace = load_block_csv(path, page_size=4096)
        assert trace.times.tolist() == [1.0, 2.0]

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_block_csv(tmp_path / "none.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceError):
            load_block_csv(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("time,offset,size\n")
        with pytest.raises(TraceError):
            load_block_csv(path)

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,offset,size\n1.0,2\n")
        with pytest.raises(TraceError):
            load_block_csv(path)

    def test_imported_trace_runs_through_engine(self, tmp_path, fast_machine):
        from repro.sim.runner import run_method

        rows = ["time,offset,size"]
        rng = np.random.default_rng(5)
        page = fast_machine.page_bytes
        for i in range(200):
            offset = int(rng.integers(0, 100)) * page
            rows.append(f"{i * 2.0},{offset},{page}")
        path = tmp_path / "real.csv"
        path.write_text("\n".join(rows) + "\n")
        trace = load_block_csv(path, page_size=page)
        result = run_method(
            "2TFM-16GB", trace, fast_machine, duration_s=480.0, audit=True
        )
        assert result.total_accesses == 200
